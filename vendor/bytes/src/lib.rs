//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the minimal slice of `bytes` it actually uses: an immutable,
//! reference-counted byte buffer whose clones share one allocation.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer (clones share the allocation).
#[derive(Clone)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer holds no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the raw bytes.
    #[inline]
    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }

    /// Copy the bytes out into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0[..] == other.0[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0[..].cmp(&other.0[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
        assert_eq!(a, b);
    }
}
