//! Offline stand-in for `crossbeam-channel`.
//!
//! Declared in a few dev-dependency tables but unused; re-exports
//! `std::sync::mpsc` under the crossbeam names so basic usage would work.

pub use std::sync::mpsc::{channel as unbounded, Receiver, RecvError, SendError, Sender};
