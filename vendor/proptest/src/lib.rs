//! Offline stand-in for `proptest`.
//!
//! Supports the API surface this workspace uses: the `proptest!` macro,
//! range / tuple / `Just` strategies, `prop_map`, `prop_oneof!`,
//! `proptest::collection::vec`, `ProptestConfig` and the `prop_assert*`
//! macros. Inputs are generated from a deterministic SplitMix64 stream
//! (per-test reproducibility); there is no shrinking — a failing case
//! panics with the generated inputs Debug-printed by the assert message.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all strategies.
    pub struct TestRng(u64);

    impl TestRng {
        /// A fixed-seed rng: runs are reproducible offline.
        pub fn deterministic() -> Self {
            TestRng(0x9E37_79B9_7F4A_7C15)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Test-campaign configuration (`cases` is the only knob used here).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each `proptest!` test runs.
        pub cases: u32,
        /// Accepted for compatibility; this harness never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }
}

pub use test_runner::{ProptestConfig, TestRng};

/// A generator of random test inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase, for heterogeneous unions (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy, for boxing.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width u64 range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 T0)
    (0 T0, 1 T1)
    (0 T0, 1 T1, 2 T2)
    (0 T0, 1 T1, 2 T2, 3 T3)
    (0 T0, 1 T1, 2 T2, 3 T3, 4 T4)
    (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Run a block of property tests: each `fn name(pat in strategy, ..)` is
/// expanded into a `#[test]` that evaluates its body over `cases`
/// deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic();
            for __case in 0..__config.cases {
                let ( $($pat,)+ ) =
                    ( $($crate::Strategy::generate(&($strat), &mut __rng),)+ );
                $body
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::Union(vec![ $($crate::Strategy::boxed($strat)),+ ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, v in collection::vec(0u32..4, 2..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            (0u32..4).prop_map(|n| n as u64),
            Just(99u64),
        ]) {
            prop_assert!(x < 4 || x == 99);
        }
    }
}
