//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! self-contained serialization framework exposing the serde API surface it
//! actually uses: the `Serialize`/`Deserialize` traits, derive macros, the
//! `Serializer`/`Deserializer`/`Visitor` shapes needed by manual impls, and
//! a self-describing [`value::Value`] tree that `serde_json` and `bincode`
//! (also vendored) render.
//!
//! Unlike real serde there is no zero-copy streaming: every serializer
//! lowers through the `Value` tree. That is plenty for checkpoint images,
//! wire frames and results files at test scale.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
