//! Deserialization half: `Deserialize`/`Deserializer`/`Visitor` and impls
//! for std types.

use crate::value::{from_value, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt::{self, Display};
use std::hash::Hash;
use std::marker::PhantomData;

/// Errors a [`Deserializer`] may produce.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A deserialization front-end over the self-describing [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    /// Surrender the underlying value tree.
    fn into_value(self) -> Result<Value, Self::Error>;

    /// Drive a visitor expecting an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.into_value()? {
            Value::Bytes(b) => visitor.visit_byte_buf(b),
            Value::Seq(items) => visitor.visit_seq(ValueSeqAccess {
                items: items.into_iter(),
                _err: PhantomData,
            }),
            other => Err(Self::Error::custom(format_args!(
                "expected bytes, found {other:?}"
            ))),
        }
    }

    /// Drive a visitor expecting a sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.into_value()? {
            Value::Seq(items) => visitor.visit_seq(ValueSeqAccess {
                items: items.into_iter(),
                _err: PhantomData,
            }),
            Value::Bytes(b) => visitor.visit_byte_buf(b),
            other => Err(Self::Error::custom(format_args!(
                "expected a sequence, found {other:?}"
            ))),
        }
    }
}

/// Sequential access to the elements of a serialized sequence.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

struct ValueSeqAccess<E> {
    items: std::vec::IntoIter<Value>,
    _err: PhantomData<E>,
}

impl<'de, E: Error> SeqAccess<'de> for ValueSeqAccess<E> {
    type Error = E;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, E> {
        match self.items.next() {
            Some(v) => from_value(v).map(Some),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.items.len())
    }
}

/// What a manual `Deserialize` impl expects to see (the serde visitor
/// pattern, reduced to the callbacks this workspace uses).
pub trait Visitor<'de>: Sized {
    type Value;

    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result;

    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(E::custom(Expected(&self)))
    }

    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom("unexpected sequence"))
    }
}

struct Expected<V>(V);

impl<'de, V: Visitor<'de>> Display for Expected<&V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid type, expected ")?;
        self.0.expecting(f)
    }
}

/// A value reconstructible from the vendored data model.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// `Deserialize` that can be driven without borrowing input — all of our
/// tree-based deserialization qualifies.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

fn value_as_u64<E: Error>(v: Value) -> Result<u64, E> {
    match v {
        Value::U64(n) => Ok(n),
        Value::I64(n) if n >= 0 => Ok(n as u64),
        other => Err(E::custom(format_args!(
            "expected an unsigned integer, found {other:?}"
        ))),
    }
}

fn value_as_i64<E: Error>(v: Value) -> Result<i64, E> {
    match v {
        Value::I64(n) => Ok(n),
        Value::U64(n) => i64::try_from(n)
            .map_err(|_| E::custom(format_args!("integer {n} out of i64 range"))),
        other => Err(E::custom(format_args!(
            "expected an integer, found {other:?}"
        ))),
    }
}

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let n = value_as_u64::<D::Error>(d.into_value()?)?;
                <$t>::try_from(n).map_err(|_| {
                    D::Error::custom(format_args!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let n = value_as_i64::<D::Error>(d.into_value()?)?;
                <$t>::try_from(n).map_err(|_| {
                    D::Error::custom(format_args!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

deserialize_uint!(u8, u16, u32, u64, usize);
deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            other => Err(D::Error::custom(format_args!(
                "expected a float, found {other:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        from_value::<f64, D::Error>(d.into_value()?).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format_args!(
                "expected a bool, found {other:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Char(c) => Ok(c),
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(D::Error::custom(format_args!(
                "expected a char, found {other:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Str(s) => Ok(s),
            Value::Char(c) => Ok(c.to_string()),
            other => Err(D::Error::custom(format_args!(
                "expected a string, found {other:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Unit => Ok(()),
            other => Err(D::Error::custom(format_args!(
                "expected unit, found {other:?}"
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::None | Value::Unit => Ok(None),
            Value::Some(inner) => from_value(*inner).map(Some),
            // Back-ends without an explicit option form hand us the bare
            // value.
            other => from_value(other).map(Some),
        }
    }
}

fn value_into_seq<E: Error>(v: Value) -> Result<Vec<Value>, E> {
    match v {
        Value::Seq(items) => Ok(items),
        Value::Bytes(b) => Ok(b.into_iter().map(|x| Value::U64(x as u64)).collect()),
        other => Err(E::custom(format_args!(
            "expected a sequence, found {other:?}"
        ))),
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        value_into_seq::<D::Error>(d.into_value()?)?
            .into_iter()
            .map(from_value)
            .collect()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(VecDeque::from)
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

impl<'de, T: Deserialize<'de> + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

fn value_into_map<E: Error>(v: Value) -> Result<Vec<(Value, Value)>, E> {
    match v {
        Value::Map(pairs) => Ok(pairs),
        Value::Struct(_, fields) => Ok(fields
            .into_iter()
            .map(|(k, val)| (Value::Str(k), val))
            .collect()),
        other => Err(E::custom(format_args!("expected a map, found {other:?}"))),
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        value_into_map::<D::Error>(d.into_value()?)?
            .into_iter()
            .map(|(k, v)| Ok((from_value(k)?, from_value(v)?)))
            .collect()
    }
}

impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        value_into_map::<D::Error>(d.into_value()?)?
            .into_iter()
            .map(|(k, v)| Ok((from_value(k)?, from_value(v)?)))
            .collect()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = Vec::<T>::deserialize(d)?;
        let n = v.len();
        v.try_into()
            .map_err(|_| D::Error::custom(format_args!("expected {N} elements, found {n}")))
    }
}

macro_rules! deserialize_tuple {
    ($(($len:expr; $($t:ident),+))+) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let items = value_into_seq::<D::Error>(d.into_value()?)?;
                if items.len() != $len {
                    return Err(D::Error::custom(format_args!(
                        "expected a tuple of {} elements, found {}",
                        $len,
                        items.len()
                    )));
                }
                let mut it = items.into_iter();
                Ok(($({
                    let v: $t = from_value(it.next().unwrap())?;
                    v
                },)+))
            }
        }
    )+};
}

deserialize_tuple! {
    (1; T0)
    (2; T0, T1)
    (3; T0, T1, T2)
    (4; T0, T1, T2, T3)
    (5; T0, T1, T2, T3, T4)
    (6; T0, T1, T2, T3, T4, T5)
}
