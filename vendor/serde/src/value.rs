//! The self-describing value tree every vendored serializer lowers through.

use crate::de::{self, Deserialize};
use crate::ser::Serialize;

/// A serialized value: the common intermediate form between `Serialize`
/// impls and concrete back-ends (`serde_json`, `bincode`).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `()` and unit structs.
    Unit,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Char(char),
    Str(String),
    Bytes(Vec<u8>),
    /// `Option::None`.
    None,
    /// `Option::Some`.
    Some(Box<Value>),
    /// Sequences, tuples and tuple structs.
    Seq(Vec<Value>),
    /// Maps, as ordered key/value pairs.
    Map(Vec<(Value, Value)>),
    /// A struct with named fields: `(type_name, fields)`.
    Struct(String, Vec<(String, Value)>),
    /// An enum variant: `(variant_index, variant_name, data)`.
    Variant(u32, String, Box<VariantData>),
}

/// The payload shape of a serialized enum variant.
#[derive(Clone, Debug, PartialEq)]
pub enum VariantData {
    Unit,
    Newtype(Value),
    Tuple(Vec<Value>),
    Struct(Vec<(String, Value)>),
}

/// Serialize `v` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    match v.serialize(ValueBuilder) {
        Ok(value) => value,
        Err(never) => match never {},
    }
}

/// Deserialize a `T` out of a [`Value`] tree, reporting failures as `E`.
pub fn from_value<'de, T: Deserialize<'de>, E: de::Error>(v: Value) -> Result<T, E> {
    T::deserialize(ValueReader {
        value: v,
        _err: std::marker::PhantomData,
    })
}

// ---------------------------------------------------------------------
// The Serializer that builds Value trees.
// ---------------------------------------------------------------------

/// Uninhabited error type: building a `Value` cannot fail.
#[derive(Debug)]
pub enum Never {}

impl std::fmt::Display for Never {
    fn fmt(&self, _f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {}
    }
}

impl std::error::Error for Never {}

impl crate::ser::Error for Never {
    fn custom<T: std::fmt::Display>(_msg: T) -> Self {
        unreachable!("Value construction is infallible")
    }
}

/// The [`crate::Serializer`] whose output is the [`Value`] tree itself.
pub struct ValueBuilder;

impl crate::ser::Serializer for ValueBuilder {
    type Ok = Value;
    type Error = Never;

    fn serialize_value(self, value: Value) -> Result<Value, Never> {
        Ok(value)
    }
}

// ---------------------------------------------------------------------
// The Deserializer that reads Value trees back.
// ---------------------------------------------------------------------

/// The [`crate::Deserializer`] over an owned [`Value`] tree, generic in the
/// caller's error type.
pub struct ValueReader<E> {
    value: Value,
    _err: std::marker::PhantomData<E>,
}

impl<'de, E: de::Error> crate::de::Deserializer<'de> for ValueReader<E> {
    type Error = E;

    fn into_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

// ---------------------------------------------------------------------
// Helpers used by the derive-generated code.
// ---------------------------------------------------------------------

/// Unpack a `Value::Struct`, tolerating the bare `Map` form and the
/// positional `Seq` form compact back-ends emit (zipped against the
/// declaration-order field `names` the derive supplies).
pub fn into_struct_fields<E: de::Error>(
    v: Value,
    type_name: &str,
    names: &[&str],
) -> Result<Vec<(String, Value)>, E> {
    match v {
        Value::Struct(_, fields) => Ok(fields),
        Value::Map(pairs) => pairs
            .into_iter()
            .map(|(k, val)| match k {
                Value::Str(s) => Ok((s, val)),
                other => Err(E::custom(format_args!(
                    "struct {type_name}: non-string field key {other:?}"
                ))),
            })
            .collect(),
        Value::Seq(items) if items.len() == names.len() => Ok(names
            .iter()
            .map(|n| n.to_string())
            .zip(items)
            .collect()),
        other => Err(E::custom(format_args!(
            "expected struct {type_name}, found {other:?}"
        ))),
    }
}

/// Remove and deserialize field `name` from a struct's field list.
pub fn take_field<'de, T: Deserialize<'de>, E: de::Error>(
    fields: &mut Vec<(String, Value)>,
    name: &str,
) -> Result<T, E> {
    match fields.iter().position(|(k, _)| k == name) {
        Some(i) => from_value(fields.swap_remove(i).1),
        None => Err(E::custom(format_args!("missing field `{name}`"))),
    }
}

/// Unpack a `Value::Seq` of exactly `len` elements (tuples, tuple structs).
pub fn into_seq<E: de::Error>(v: Value, len: usize) -> Result<std::vec::IntoIter<Value>, E> {
    match v {
        Value::Seq(items) if items.len() == len => Ok(items.into_iter()),
        Value::Seq(items) => Err(E::custom(format_args!(
            "expected a sequence of {len} elements, found {}",
            items.len()
        ))),
        other => Err(E::custom(format_args!(
            "expected a sequence, found {other:?}"
        ))),
    }
}

/// Deserialize the next element of an exploded sequence.
pub fn seq_next<'de, T: Deserialize<'de>, E: de::Error>(
    it: &mut std::vec::IntoIter<Value>,
) -> Result<T, E> {
    match it.next() {
        Some(v) => from_value(v),
        None => Err(E::custom("sequence exhausted")),
    }
}

/// Unpack a `Value::Variant` into `(variant_name, data)`.
pub fn into_variant<E: de::Error>(v: Value, type_name: &str) -> Result<(String, VariantData), E> {
    match v {
        Value::Variant(_, name, data) => Ok((name, *data)),
        // A bare string is accepted as a unit variant (the JSON form).
        Value::Str(name) => Ok((name, VariantData::Unit)),
        other => Err(E::custom(format_args!(
            "expected enum {type_name}, found {other:?}"
        ))),
    }
}

/// Expect a unit variant payload.
pub fn variant_unit<E: de::Error>(data: VariantData) -> Result<(), E> {
    match data {
        VariantData::Unit => Ok(()),
        other => Err(E::custom(format_args!(
            "expected unit variant, found {other:?}"
        ))),
    }
}

/// Expect a newtype variant payload.
pub fn variant_newtype<E: de::Error>(data: VariantData) -> Result<Value, E> {
    match data {
        VariantData::Newtype(v) => Ok(v),
        VariantData::Tuple(mut items) if items.len() == 1 => Ok(items.remove(0)),
        other => Err(E::custom(format_args!(
            "expected newtype variant, found {other:?}"
        ))),
    }
}

/// Expect a tuple variant payload of exactly `len` elements.
pub fn variant_tuple<E: de::Error>(
    data: VariantData,
    len: usize,
) -> Result<std::vec::IntoIter<Value>, E> {
    match data {
        VariantData::Tuple(items) if items.len() == len => Ok(items.into_iter()),
        VariantData::Newtype(v) if len == 1 => Ok(vec![v].into_iter()),
        other => Err(E::custom(format_args!(
            "expected tuple variant of {len} elements, found {other:?}"
        ))),
    }
}

/// Expect a struct variant payload, tolerating the positional tuple form
/// compact back-ends emit.
pub fn variant_struct<E: de::Error>(
    data: VariantData,
    names: &[&str],
) -> Result<Vec<(String, Value)>, E> {
    match data {
        VariantData::Struct(fields) => Ok(fields),
        VariantData::Tuple(items) if items.len() == names.len() => Ok(names
            .iter()
            .map(|n| n.to_string())
            .zip(items)
            .collect()),
        other => Err(E::custom(format_args!(
            "expected struct variant, found {other:?}"
        ))),
    }
}
