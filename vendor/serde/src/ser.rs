//! Serialization half: the `Serialize`/`Serializer` traits and impls for
//! std types.

use crate::value::{to_value, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt::Display;
use std::hash::Hash;

/// Errors a [`Serializer`] may produce.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A serialization back-end. Every back-end consumes the self-describing
/// [`Value`] tree; the individual `serialize_*` entry points exist so
/// manual `Serialize` impls read like they do against real serde.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    /// Consume a fully-built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::U64(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::I64(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::F64(v))
    }

    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_owned()))
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bytes(v.to_vec()))
    }

    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Unit)
    }

    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::None)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Some(Box::new(to_value(v))))
    }
}

/// A value serializable into the vendored data model.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

macro_rules! serialize_as_u64 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}

macro_rules! serialize_as_i64 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::I64(*self as i64))
            }
        }
    )*};
}

serialize_as_u64!(u8, u16, u32, u64, usize);
serialize_as_i64!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match u64::try_from(*self) {
            Ok(v) => serializer.serialize_value(Value::U64(v)),
            Err(_) => Err(S::Error::custom("u128 beyond u64 range is unsupported")),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self as f64))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Char(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn seq_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    Value::Seq(items.map(|v| to_value(v)).collect())
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(seq_value(self.iter()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(seq_value(self.iter()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(seq_value(self.iter()))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(seq_value(self.iter()))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(seq_value(self.iter()))
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(seq_value(self.iter()))
    }
}

fn map_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    pairs: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Map(pairs.map(|(k, v)| (to_value(k), to_value(v))).collect())
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(map_value(self.iter()))
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(map_value(self.iter()))
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Seq(vec![$(to_value(&self.$n)),+]))
            }
        }
    )+};
}

serialize_tuple! {
    (0 T0)
    (0 T0, 1 T1)
    (0 T0, 1 T1, 2 T2)
    (0 T0, 1 T1, 2 T2, 3 T3)
    (0 T0, 1 T1, 2 T2, 3 T3, 4 T4)
    (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5)
}
