//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the non-poisoning `lock()/read()/write()` API the workspace
//! uses. Poisoned std locks are unwrapped into the inner guard — a panic
//! while holding a lock here is already fatal to the test run.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive (non-poisoning `lock()` API).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock (non-poisoning `read()/write()` API).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`] guards.
pub struct Condvar(sync::Condvar);

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // parking_lot waits on a &mut guard; std consumes and returns it.
        // Temporarily move the guard out through a raw replace.
        take_guard(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Run `f` on the owned guard, writing the returned guard back in place.
fn take_guard<T, F>(slot: &mut MutexGuard<'_, T>, f: F)
where
    F: for<'a> FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
{
    // SAFETY: `slot` is forgotten before being overwritten, so the guard is
    // never dropped (unlocked) twice; `f` returns a guard for the same
    // mutex and lifetime, restoring the invariant before `slot` is used.
    unsafe {
        let guard = std::ptr::read(slot);
        let new = f(guard);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn condvar_wait_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
