//! Offline stand-in for `bincode`: a self-describing binary encoding of
//! the vendored serde value tree.
//!
//! Not wire-compatible with real bincode — both ends of every encode /
//! decode in this workspace go through this crate, so only round-trip
//! fidelity matters (checkpoint images, MPI wire frames, test fixtures).

use serde::value::{from_value, to_value, Value, VariantData};
use serde::{Deserialize, Serialize};
use std::fmt::{self, Display};

/// A bincode error.
#[derive(Debug)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bincode error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Encode `value` into bytes.
pub fn serialize<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    encode(&to_value(value), &mut out);
    Ok(out)
}

/// Decode a `T` from bytes produced by [`serialize`].
pub fn deserialize<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T> {
    let mut input = bytes;
    let v = decode(&mut input)?;
    if !input.is_empty() {
        return Err(Error(format!("{} trailing bytes", input.len())));
    }
    from_value(v)
}

/// Size in bytes of the encoding of `value`.
pub fn serialized_size<T: Serialize + ?Sized>(value: &T) -> Result<u64> {
    serialize(value).map(|v| v.len() as u64)
}

// ---------------------------------------------------------------------
// Encoding: tag byte + LEB128-style varints for lengths and integers.
// ---------------------------------------------------------------------

mod tag {
    pub const UNIT: u8 = 0;
    pub const FALSE: u8 = 1;
    pub const TRUE: u8 = 2;
    pub const U64: u8 = 3;
    pub const I64: u8 = 4;
    pub const F64: u8 = 5;
    pub const CHAR: u8 = 6;
    pub const STR: u8 = 7;
    pub const BYTES: u8 = 8;
    pub const NONE: u8 = 9;
    pub const SOME: u8 = 10;
    pub const SEQ: u8 = 11;
    pub const MAP: u8 = 12;
    pub const STRUCT: u8 = 13;
    pub const VARIANT_UNIT: u8 = 14;
    pub const VARIANT_NEWTYPE: u8 = 15;
    pub const VARIANT_TUPLE: u8 = 16;
    pub const VARIANT_STRUCT: u8 = 17;
}

fn put_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(s: &str, out: &mut Vec<u8>) {
    put_varint(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn encode(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Unit => out.push(tag::UNIT),
        Value::Bool(false) => out.push(tag::FALSE),
        Value::Bool(true) => out.push(tag::TRUE),
        Value::U64(n) => {
            out.push(tag::U64);
            put_varint(*n, out);
        }
        Value::I64(n) => {
            // Zigzag so small negatives stay small.
            out.push(tag::I64);
            put_varint(((n << 1) ^ (n >> 63)) as u64, out);
        }
        Value::F64(x) => {
            out.push(tag::F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Char(c) => {
            out.push(tag::CHAR);
            put_varint(*c as u64, out);
        }
        Value::Str(s) => {
            out.push(tag::STR);
            put_str(s, out);
        }
        Value::Bytes(b) => {
            out.push(tag::BYTES);
            put_varint(b.len() as u64, out);
            out.extend_from_slice(b);
        }
        Value::None => out.push(tag::NONE),
        Value::Some(inner) => {
            out.push(tag::SOME);
            encode(inner, out);
        }
        Value::Seq(items) => {
            out.push(tag::SEQ);
            put_varint(items.len() as u64, out);
            for item in items {
                encode(item, out);
            }
        }
        Value::Map(pairs) => {
            out.push(tag::MAP);
            put_varint(pairs.len() as u64, out);
            for (k, val) in pairs {
                encode(k, out);
                encode(val, out);
            }
        }
        // Structs encode positionally (declaration order), like real
        // bincode: the decoder zips values against the derive-supplied
        // field names. Keeps records near the paper's ~20-byte events.
        Value::Struct(_, fields) => {
            out.push(tag::SEQ);
            put_varint(fields.len() as u64, out);
            for (_, val) in fields {
                encode(val, out);
            }
        }
        Value::Variant(idx, name, data) => {
            out.push(match &**data {
                VariantData::Unit => tag::VARIANT_UNIT,
                VariantData::Newtype(_) => tag::VARIANT_NEWTYPE,
                // Struct variants also encode positionally.
                VariantData::Tuple(_) | VariantData::Struct(_) => tag::VARIANT_TUPLE,
            });
            put_varint(*idx as u64, out);
            put_str(name, out);
            match &**data {
                VariantData::Unit => {}
                VariantData::Newtype(v) => encode(v, out),
                VariantData::Tuple(items) => {
                    put_varint(items.len() as u64, out);
                    for item in items {
                        encode(item, out);
                    }
                }
                VariantData::Struct(fields) => {
                    put_varint(fields.len() as u64, out);
                    for (_, val) in fields {
                        encode(val, out);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn take_byte(input: &mut &[u8]) -> Result<u8> {
    match input.split_first() {
        Some((&b, rest)) => {
            *input = rest;
            Ok(b)
        }
        None => Err(Error("unexpected end of input".into())),
    }
}

fn take_varint(input: &mut &[u8]) -> Result<u64> {
    let mut n = 0u64;
    let mut shift = 0u32;
    loop {
        let b = take_byte(input)?;
        n |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(n);
        }
        shift += 7;
        if shift >= 64 {
            return Err(Error("varint overflow".into()));
        }
    }
}

fn take_str(input: &mut &[u8]) -> Result<String> {
    let len = take_varint(input)? as usize;
    if input.len() < len {
        return Err(Error("string length beyond input".into()));
    }
    let (s, rest) = input.split_at(len);
    *input = rest;
    String::from_utf8(s.to_vec()).map_err(|e| Error(e.to_string()))
}

fn decode(input: &mut &[u8]) -> Result<Value> {
    Ok(match take_byte(input)? {
        tag::UNIT => Value::Unit,
        tag::FALSE => Value::Bool(false),
        tag::TRUE => Value::Bool(true),
        tag::U64 => Value::U64(take_varint(input)?),
        tag::I64 => {
            let z = take_varint(input)?;
            Value::I64(((z >> 1) as i64) ^ -((z & 1) as i64))
        }
        tag::F64 => {
            if input.len() < 8 {
                return Err(Error("truncated f64".into()));
            }
            let (bits, rest) = input.split_at(8);
            *input = rest;
            Value::F64(f64::from_bits(u64::from_le_bytes(bits.try_into().unwrap())))
        }
        tag::CHAR => {
            let n = take_varint(input)? as u32;
            Value::Char(char::from_u32(n).ok_or_else(|| Error("invalid char".into()))?)
        }
        tag::STR => Value::Str(take_str(input)?),
        tag::BYTES => {
            let len = take_varint(input)? as usize;
            if input.len() < len {
                return Err(Error("byte length beyond input".into()));
            }
            let (b, rest) = input.split_at(len);
            *input = rest;
            Value::Bytes(b.to_vec())
        }
        tag::NONE => Value::None,
        tag::SOME => Value::Some(Box::new(decode(input)?)),
        tag::SEQ => {
            let len = take_varint(input)? as usize;
            let mut items = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                items.push(decode(input)?);
            }
            Value::Seq(items)
        }
        tag::MAP => {
            let len = take_varint(input)? as usize;
            let mut pairs = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                let k = decode(input)?;
                let v = decode(input)?;
                pairs.push((k, v));
            }
            Value::Map(pairs)
        }
        tag::STRUCT => {
            let name = take_str(input)?;
            let len = take_varint(input)? as usize;
            let mut fields = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                let k = take_str(input)?;
                let v = decode(input)?;
                fields.push((k, v));
            }
            Value::Struct(name, fields)
        }
        t @ (tag::VARIANT_UNIT
        | tag::VARIANT_NEWTYPE
        | tag::VARIANT_TUPLE
        | tag::VARIANT_STRUCT) => {
            let idx = take_varint(input)? as u32;
            let name = take_str(input)?;
            let data = match t {
                tag::VARIANT_UNIT => VariantData::Unit,
                tag::VARIANT_NEWTYPE => VariantData::Newtype(decode(input)?),
                tag::VARIANT_TUPLE => {
                    let len = take_varint(input)? as usize;
                    let mut items = Vec::with_capacity(len.min(1 << 16));
                    for _ in 0..len {
                        items.push(decode(input)?);
                    }
                    VariantData::Tuple(items)
                }
                _ => {
                    let len = take_varint(input)? as usize;
                    let mut fields = Vec::with_capacity(len.min(1 << 16));
                    for _ in 0..len {
                        let k = take_str(input)?;
                        let v = decode(input)?;
                        fields.push((k, v));
                    }
                    VariantData::Struct(fields)
                }
            };
            Value::Variant(idx, name, Box::new(data))
        }
        other => return Err(Error(format!("unknown tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v = (42u64, -7i64, 1.5f64, String::from("hi"), vec![1u8, 2, 3]);
        let enc = serialize(&v).unwrap();
        let dec: (u64, i64, f64, String, Vec<u8>) = deserialize(&enc).unwrap();
        assert_eq!(v, dec);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut enc = serialize(&1u64).unwrap();
        enc.push(0);
        assert!(deserialize::<u64>(&enc).is_err());
    }
}
