//! Offline stand-in for `criterion`.
//!
//! Exposes the API the workspace benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, `benchmark_group`,
//! `Bencher::iter`/`iter_batched`, `black_box`, `BatchSize`). Each bench
//! routine runs a small fixed number of iterations and reports the mean
//! wall time — a smoke-test harness, not a statistics engine, so bench
//! binaries stay fast under `cargo test`/`cargo bench` without network
//! access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (ignored by this harness).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Per-iteration timing loop handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep bench binaries fast when run by `cargo test`.
        Criterion { iters: 3 }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.as_nanos() as f64 / self.iters.max(1) as f64;
        println!("bench {name:<40} {:>12.0} ns/iter (n={})", mean, self.iters);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.run_one(&full, f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
