//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! non-generic structs and enums this workspace defines, parsing the item
//! with raw `proc_macro` tokens (the container has no syn/quote). The
//! generated impls lower through `serde::value::Value`, the vendored
//! self-describing data model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("::core::compile_error!({msg:?});"),
    };
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive produced invalid code: {e}\n{code}"))
}

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    /// Tuple struct of `n >= 1` fields (1 = newtype, serialized
    /// transparently like real serde).
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------
// Parsing (raw token trees; no external parser crates available)
// ---------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.i += 1; // '#'
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    self.i += 1;
                }
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.i += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.i += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let keyword = c.expect_ident()?;
    let name = c.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => match c.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                let kind = if arity == 0 {
                    Kind::UnitStruct
                } else {
                    Kind::TupleStruct(arity)
                };
                Ok(Item { name, kind })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                kind: Kind::UnitStruct,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match c.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: Kind::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Field names of a `{ .. }` struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(body);
    let mut names = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_visibility();
        match c.bump() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            _ => break,
        }
        // ':'
        if c.bump().is_none() {
            break;
        }
        // Skip the type: consume until a comma outside angle brackets.
        let mut depth: i32 = 0;
        loop {
            match c.bump() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = (depth - 1).max(0),
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
                None => break,
            }
        }
    }
    names
}

/// Number of fields in a `( .. )` struct body.
fn tuple_arity(body: TokenStream) -> usize {
    let mut depth: i32 = 0;
    let mut fields = 0usize;
    let mut pending = false;
    for t in body {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    pending = true;
                }
                '>' => {
                    depth = (depth - 1).max(0);
                    pending = true;
                }
                ',' if depth == 0 => {
                    if pending {
                        fields += 1;
                    }
                    pending = false;
                }
                _ => pending = true,
            },
            _ => pending = true,
        }
    }
    if pending {
        fields += 1;
    }
    fields
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        let name = match c.bump() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found {other}")),
            None => break,
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                c.i += 1;
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.i += 1;
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        loop {
            match c.bump() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => continue,
                None => break,
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "__serializer.serialize_value(::serde::value::Value::Unit)".to_owned(),
        Kind::TupleStruct(1) => {
            "__serializer.serialize_value(::serde::value::to_value(&self.0))".to_owned()
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::value::to_value(&self.{i})"))
                .collect();
            format!(
                "__serializer.serialize_value(::serde::value::Value::Seq(::std::vec![{}]))",
                items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::value::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "__serializer.serialize_value(::serde::value::Value::Struct(\
                 ::std::string::String::from({name:?}), ::std::vec![{}]))",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                let (pattern, data) = match &v.shape {
                    Shape::Unit => (
                        format!("{name}::{vname}"),
                        "::serde::value::VariantData::Unit".to_owned(),
                    ),
                    Shape::Tuple(1) => (
                        format!("{name}::{vname}(__f0)"),
                        "::serde::value::VariantData::Newtype(::serde::value::to_value(__f0))"
                            .to_owned(),
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::value::to_value({b})"))
                            .collect();
                        (
                            format!("{name}::{vname}({})", binds.join(", ")),
                            format!(
                                "::serde::value::VariantData::Tuple(::std::vec![{}])",
                                vals.join(", ")
                            ),
                        )
                    }
                    Shape::Named(fields) => {
                        let vals: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::value::to_value({f}))"
                                )
                            })
                            .collect();
                        (
                            format!("{name}::{vname} {{ {} }}", fields.join(", ")),
                            format!(
                                "::serde::value::VariantData::Struct(::std::vec![{}])",
                                vals.join(", ")
                            ),
                        )
                    }
                };
                arms.push_str(&format!(
                    "{pattern} => __serializer.serialize_value(\
                     ::serde::value::Value::Variant({idx}u32, \
                     ::std::string::String::from({vname:?}), \
                     ::std::boxed::Box::new({data}))),\n"
                ));
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => {
            format!("let _ = __v; ::core::result::Result::Ok({name})")
        }
        Kind::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::value::from_value(__v)?))"
        ),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|_| "::serde::value::seq_next(&mut __it)?".to_owned())
                .collect();
            format!(
                "let mut __it = ::serde::value::into_seq::<__D::Error>(__v, {n})?;\n\
                 ::core::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::value::take_field(&mut __fields, {f:?})?"))
                .collect();
            let names: Vec<String> = fields.iter().map(|f| format!("{f:?}")).collect();
            format!(
                "let mut __fields = \
                 ::serde::value::into_struct_fields::<__D::Error>(__v, {name:?}, &[{}])?;\n\
                 ::core::result::Result::Ok({name} {{ {} }})",
                names.join(", "),
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let arm = match &v.shape {
                    Shape::Unit => format!(
                        "{vname:?} => {{\n\
                         ::serde::value::variant_unit::<__D::Error>(__data)?;\n\
                         ::core::result::Result::Ok({name}::{vname})\n}}"
                    ),
                    Shape::Tuple(1) => format!(
                        "{vname:?} => ::core::result::Result::Ok({name}::{vname}(\
                         ::serde::value::from_value(\
                         ::serde::value::variant_newtype::<__D::Error>(__data)?)?))"
                    ),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|_| "::serde::value::seq_next(&mut __it)?".to_owned())
                            .collect();
                        format!(
                            "{vname:?} => {{\n\
                             let mut __it = \
                             ::serde::value::variant_tuple::<__D::Error>(__data, {n})?;\n\
                             ::core::result::Result::Ok({name}::{vname}({}))\n}}",
                            elems.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("{f}: ::serde::value::take_field(&mut __fields, {f:?})?")
                            })
                            .collect();
                        let names: Vec<String> =
                            fields.iter().map(|f| format!("{f:?}")).collect();
                        format!(
                            "{vname:?} => {{\n\
                             let mut __fields = \
                             ::serde::value::variant_struct::<__D::Error>(__data, &[{}])?;\n\
                             ::core::result::Result::Ok({name}::{vname} {{ {} }})\n}}",
                            names.join(", "),
                            inits.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
                arms.push_str(",\n");
            }
            format!(
                "let (__name, __data) = \
                 ::serde::value::into_variant::<__D::Error>(__v, {name:?})?;\n\
                 match __name.as_str() {{\n{arms}\
                 __other => ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 #[allow(unused_variables)]\n\
                 let __v = ::serde::Deserializer::into_value(__deserializer)?;\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
