//! Offline stand-in for `serde_json`: renders the vendored serde value
//! tree as JSON. Write-only — the workspace only emits results files.

use serde::value::{to_value, Value, VariantData};
use serde::Serialize;
use std::fmt::{self, Display, Write as _};

/// A JSON serialization error.
#[derive(Debug)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&to_value(value), None, 0, &mut out)?;
    Ok(out)
}

/// Serialize `value` as human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&to_value(value), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Serialize `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn newline(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) -> Result<()> {
    match v {
        Value::Unit | Value::None => out.push_str("null"),
        Value::Some(inner) => render(inner, indent, level, out)?,
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                let s = format!("{x}");
                out.push_str(&s);
                // Keep integral floats recognizably floating-point.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Char(c) => render_str(&c.to_string(), out),
        Value::Str(s) => render_str(s, out),
        Value::Bytes(b) => {
            let items: Vec<Value> = b.iter().map(|&x| Value::U64(x as u64)).collect();
            render_seq(&items, indent, level, out)?;
        }
        Value::Seq(items) => render_seq(items, indent, level, out)?,
        Value::Map(pairs) => {
            let rendered: Vec<(String, &Value)> = pairs
                .iter()
                .map(|(k, v)| key_string(k).map(|s| (s, v)))
                .collect::<Result<Vec<_>>>()?;
            render_obj(&rendered, indent, level, out)?;
        }
        Value::Struct(_, fields) => {
            let rendered: Vec<(String, &Value)> =
                fields.iter().map(|(k, v)| (k.clone(), v)).collect();
            render_obj(&rendered, indent, level, out)?;
        }
        Value::Variant(_, name, data) => match &**data {
            VariantData::Unit => render_str(name, out),
            VariantData::Newtype(inner) => {
                render_obj(&[(name.clone(), inner)], indent, level, out)?
            }
            VariantData::Tuple(items) => {
                let inner = Value::Seq(items.clone());
                out.push('{');
                newline(indent, level + 1, out);
                render_str(name, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(&inner, indent, level + 1, out)?;
                newline(indent, level, out);
                out.push('}');
            }
            VariantData::Struct(fields) => {
                let inner = Value::Struct(name.clone(), fields.clone());
                render_obj(&[(name.clone(), &inner)], indent, level, out)?;
            }
        },
    }
    Ok(())
}

fn key_string(k: &Value) -> std::result::Result<String, Error> {
    match k {
        Value::Str(s) => Ok(s.clone()),
        Value::Char(c) => Ok(c.to_string()),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        // Transparent newtype keys (e.g. Rank) arrive as their inner value;
        // anything structured is not a JSON object key.
        other => Err(Error(format!("unsupported JSON map key: {other:?}"))),
    }
}

fn render_seq(
    items: &[Value],
    indent: Option<usize>,
    level: usize,
    out: &mut String,
) -> Result<()> {
    if items.is_empty() {
        out.push_str("[]");
        return Ok(());
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline(indent, level + 1, out);
        render(item, indent, level + 1, out)?;
    }
    newline(indent, level, out);
    out.push(']');
    Ok(())
}

fn render_obj(
    fields: &[(String, &Value)],
    indent: Option<usize>,
    level: usize,
    out: &mut String,
) -> Result<()> {
    if fields.is_empty() {
        out.push_str("{}");
        return Ok(());
    }
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline(indent, level + 1, out);
        render_str(k, out);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        render(v, indent, level + 1, out)?;
    }
    newline(indent, level, out);
    out.push('}');
    Ok(())
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }
}
