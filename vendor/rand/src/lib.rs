//! Offline stand-in for `rand`.
//!
//! The workspace declares `rand` in a few dev-dependency tables but does
//! not call it; tests that need randomness use small local generators so
//! runs stay deterministic. This crate exists only to satisfy dependency
//! resolution without network access. A tiny SplitMix64 [`Rng`] is
//! provided in case future code wants it.

/// A minimal SplitMix64 generator.
pub struct Rng(u64);

impl Rng {
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
