//! `mpirun` — the user-facing launcher of §4.7: "the user just runs a
//! parallel program using the standard mpirun command".
//!
//! ```text
//! mpirun -np 4 ring                            # 4 ranks, demo app "ring"
//! mpirun -np 8 --protocol v1 cg                # MPICH-V1 baseline
//! mpirun -np 4 --pgfile cluster.pg stencil     # explicit program file
//! mpirun -np 4 --kill 2@10ms --kill 0@25ms cg  # fault injection
//! mpirun -np 4 --no-checkpoints ring           # logging only
//! mpirun -np 4 --backend socket ring           # real OS processes + TCP
//! ```
//!
//! Two deployment backends share every flag:
//! - `inproc` (default): the in-process fabric — threads in one
//!   process, the benchmarking substrate;
//! - `socket`: every rank, event-logger replica and the checkpoint
//!   server is a **real OS process** speaking length-prefixed frames
//!   over TCP, watched by a socket fail-stop detector; `--kill` become
//!   real `SIGKILL`s and recovery runs across process boundaries.
//!
//! Demo applications (deterministic, resumable, self-verifying):
//! `ring [iters]`, `allreduce [iters]`, `cg [n]`, `stencil [n] [steps]`.

use mpich_v::core::{Payload, Rank};
use mpich_v::mpi::{MpiResult, ReduceOp, Source, Tag};
use mpich_v::runtime::proc::{maybe_run_child, run_proc, ProcOptions};
use mpich_v::runtime::progfile;
use mpich_v::runtime::{Cluster, ClusterConfig, MpiApp, NodeMpi, RuntimeProtocol, SchedulerConfig};
use mpich_v::workloads as mvr_workloads;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: mpirun -np <N> [--protocol v2|v1|p4] [--backend inproc|socket] \
         [--pgfile <file>] [--kill <rank>@<ms>ms]... [--el-kill <flat>@<ms>ms]... \
         [--cs-kill <ms>ms]... [--el-replicas <R>] [--no-checkpoints] \
         [--timeout <secs>] [--obs-dir <dir>] [--health <addr>] \
         [--fail-after <ms>] [--drift <rank>@<ppb>]... \
         [--rotate-records <N>] [--rotate-bytes <N>] <app> [args...]\n\
         apps: ring [iters] | allreduce [iters] | cg [n] | stencil [n] [steps]"
    );
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    InProcess,
    Socket,
}

struct Options {
    np: u32,
    protocol: RuntimeProtocol,
    backend: Backend,
    pgfile: Option<String>,
    kills: Vec<(Rank, Duration)>,
    el_kills: Vec<(u32, Duration)>,
    cs_kills: Vec<Duration>,
    el_replicas: u32,
    checkpoints: bool,
    timeout: Duration,
    obs_dir: Option<String>,
    health: Option<String>,
    fail_after: Option<Duration>,
    drifts: Vec<(Rank, i64)>,
    rotate_records: u64,
    rotate_bytes: u64,
    app: String,
    app_args: Vec<u64>,
}

fn parse_at_ms(spec: &str) -> Option<(u32, Duration)> {
    let (idx, when) = spec.split_once('@')?;
    let idx: u32 = idx.parse().ok()?;
    let ms: u64 = when.trim_end_matches("ms").parse().ok()?;
    Some((idx, Duration::from_millis(ms)))
}

fn parse_args() -> Options {
    let mut opt = Options {
        np: 4,
        protocol: RuntimeProtocol::V2,
        backend: Backend::InProcess,
        pgfile: None,
        kills: Vec::new(),
        el_kills: Vec::new(),
        cs_kills: Vec::new(),
        el_replicas: 1,
        checkpoints: true,
        timeout: Duration::from_secs(120),
        obs_dir: None,
        health: None,
        fail_after: None,
        drifts: Vec::new(),
        rotate_records: 0,
        rotate_bytes: 0,
        app: String::new(),
        app_args: Vec::new(),
    };

    let mut app = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-np" | "--np" => {
                opt.np = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--protocol" => {
                opt.protocol = match args.next().as_deref() {
                    Some("v2") => RuntimeProtocol::V2,
                    Some("v1") => RuntimeProtocol::V1,
                    Some("p4") => RuntimeProtocol::P4,
                    _ => usage(),
                };
            }
            "--backend" => {
                opt.backend = match args.next().as_deref() {
                    Some("inproc") | Some("in-process") => Backend::InProcess,
                    Some("socket") | Some("tcp") => Backend::Socket,
                    _ => usage(),
                };
            }
            "--pgfile" => opt.pgfile = Some(args.next().unwrap_or_else(|| usage())),
            "--kill" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let (rank, at) = parse_at_ms(&spec).unwrap_or_else(|| usage());
                opt.kills.push((Rank(rank), at));
            }
            "--el-kill" => {
                let spec = args.next().unwrap_or_else(|| usage());
                opt.el_kills
                    .push(parse_at_ms(&spec).unwrap_or_else(|| usage()));
            }
            "--cs-kill" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let ms: u64 = spec
                    .trim_end_matches("ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                opt.cs_kills.push(Duration::from_millis(ms));
            }
            "--el-replicas" => {
                opt.el_replicas = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--no-checkpoints" => opt.checkpoints = false,
            "--timeout" => {
                opt.timeout = Duration::from_secs(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--obs-dir" => opt.obs_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--health" => opt.health = Some(args.next().unwrap_or_else(|| usage())),
            "--fail-after" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.trim_end_matches("ms").parse().ok())
                    .unwrap_or_else(|| usage());
                opt.fail_after = Some(Duration::from_millis(ms));
            }
            "--drift" => {
                // rank@ppb: inject a clock-drift rate (parts per
                // billion, may be negative) into one rank's recorder.
                let spec = args.next().unwrap_or_else(|| usage());
                let (rank, ppb) = spec.split_once('@').unwrap_or_else(|| usage());
                let rank: u32 = rank.parse().unwrap_or_else(|_| usage());
                let ppb: i64 = ppb.parse().unwrap_or_else(|_| usage());
                opt.drifts.push((Rank(rank), ppb));
            }
            "--rotate-records" => {
                opt.rotate_records = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--rotate-bytes" => {
                opt.rotate_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => usage(),
            other => {
                app = Some(other.to_string());
                opt.app_args = args.by_ref().filter_map(|v| v.parse().ok()).collect();
                break;
            }
        }
    }
    opt.app = app.unwrap_or_else(|| usage());
    opt
}

// ---------------------------------------------------------------------
// Demo applications
// ---------------------------------------------------------------------

fn ring(iters: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let me = mpi.rank().0;
        let n = mpi.size();
        let next = Rank((me + 1) % n);
        let prev = Rank((me + n - 1) % n);
        let (mut i, mut acc): (u32, u64) = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).unwrap(),
            None => (0, 0),
        };
        while i < iters {
            let token = ((i as u64) << 32) | me as u64;
            let (_, _, body) = mpi.sendrecv(
                next,
                7,
                &token.to_le_bytes(),
                Source::Rank(prev),
                Tag::Value(7),
            )?;
            acc = acc
                .wrapping_mul(31)
                .wrapping_add(u64::from_le_bytes(body.as_slice().try_into().unwrap()));
            i += 1;
            mpi.checkpoint_site(&bincode::serialize(&(i, acc)).unwrap())?;
        }
        Ok(Payload::from_vec(acc.to_le_bytes().to_vec()))
    }
}

fn allreduce_app(iters: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let (mut i, mut acc): (u32, u64) = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).unwrap(),
            None => (0, 0),
        };
        while i < iters {
            let sum = mpi.allreduce(ReduceOp::Sum, &[mpi.rank().0 as u64 + i as u64])?;
            acc = acc.wrapping_mul(1099511628211).wrapping_add(sum[0]);
            i += 1;
            mpi.checkpoint_site(&bincode::serialize(&(i, acc)).unwrap())?;
        }
        Ok(Payload::from_vec(acc.to_le_bytes().to_vec()))
    }
}

/// Resolve an application spec (`"ring 40"`) to a runnable app. Used by
/// the launcher itself and — via the child hook — by every re-executed
/// rank process, so both backends run the very same application object.
fn make_app(spec: &str) -> Option<Arc<dyn MpiApp>> {
    let mut parts = spec.split_whitespace();
    let name = parts.next()?;
    let args: Vec<u64> = parts.filter_map(|v| v.parse().ok()).collect();
    let arg0 = args.first().copied();
    let arg1 = args.get(1).copied();
    match name {
        "ring" => Some(Arc::new(ring(arg0.unwrap_or(500) as u32))),
        "allreduce" => Some(Arc::new(allreduce_app(arg0.unwrap_or(300) as u32))),
        "cg" => {
            let ccfg = mvr_workloads_cg_config(arg0.unwrap_or(768) as usize);
            Some(Arc::new(
                move |mpi: &mut NodeMpi, restored: Option<Payload>| {
                    let st = restored.map(|p| bincode::deserialize(p.as_slice()).unwrap());
                    let r = mvr_workloads::cg(mpi, &ccfg, st)?;
                    Ok(Payload::from_vec(bincode::serialize(&r).unwrap()))
                },
            ))
        }
        "stencil" => {
            let scfg = mvr_workloads::StencilConfig {
                n: arg0.unwrap_or(4000) as usize,
                steps: arg1.unwrap_or(300) as u32,
            };
            Some(Arc::new(
                move |mpi: &mut NodeMpi, restored: Option<Payload>| {
                    let st = restored.map(|p| bincode::deserialize(p.as_slice()).unwrap());
                    let total = mvr_workloads::stencil(mpi, &scfg, st)?;
                    Ok(Payload::from_vec(total.to_le_bytes().to_vec()))
                },
            ))
        }
        _ => None,
    }
}

fn main() {
    // Child hook first: `--backend socket` re-executes this binary per
    // deployment node with MVR_PROC_ROLE set; those invocations run the
    // role and never return.
    maybe_run_child(&make_app);

    let opt = parse_args();

    // Resolve the deployment description.
    let pf = match &opt.pgfile {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("mpirun: cannot read {path}: {e}");
                std::process::exit(1);
            });
            match progfile::parse(&text) {
                Ok(pf) => pf,
                Err(e) => {
                    eprintln!("mpirun: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => progfile::default_for(opt.np),
    };
    let world = if opt.pgfile.is_some() {
        pf.world()
    } else {
        opt.np
    };

    let checkpointing = if opt.checkpoints && opt.protocol == RuntimeProtocol::V2 {
        Some(
            pf.scheduler
                .clone()
                .map(|(_, c)| c)
                .unwrap_or_else(SchedulerConfig::default),
        )
    } else {
        None
    };
    let el_shards = pf.event_loggers.len().max(1) as u32;

    println!(
        "mpirun: {} ranks, protocol {:?}, backend {}, {} event logger shard(s) x{}, checkpoints {}",
        world,
        opt.protocol,
        match opt.backend {
            Backend::InProcess => "inproc",
            Backend::Socket => "socket",
        },
        el_shards,
        opt.el_replicas,
        if checkpointing.is_some() { "on" } else { "off" }
    );

    let spec = std::iter::once(opt.app.clone())
        .chain(opt.app_args.iter().map(|v| v.to_string()))
        .collect::<Vec<_>>()
        .join(" ");
    let Some(app) = make_app(&spec) else {
        eprintln!("mpirun: unknown app '{}'", opt.app);
        usage();
    };

    match opt.backend {
        Backend::InProcess => run_inproc(&opt, world, el_shards, checkpointing, app),
        Backend::Socket => run_socket(&opt, &pf, world, el_shards, checkpointing, &spec),
    }
}

fn run_inproc(
    opt: &Options,
    world: u32,
    el_shards: u32,
    checkpointing: Option<SchedulerConfig>,
    app: Arc<dyn MpiApp>,
) {
    if !opt.el_kills.is_empty() || !opt.cs_kills.is_empty() {
        eprintln!("mpirun: --el-kill/--cs-kill need --backend socket");
        std::process::exit(2);
    }
    let cfg = ClusterConfig {
        world,
        protocol: opt.protocol,
        el_shards,
        el_replicas: opt.el_replicas,
        checkpointing,
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, app);

    // Fault injection.
    let handle = cluster.fault_handle();
    let kills = opt.kills.clone();
    let killer = std::thread::spawn(move || {
        for (rank, at) in kills {
            std::thread::sleep(at);
            println!("mpirun: injecting crash of rank {rank}");
            handle.kill(rank);
        }
    });

    match cluster.wait(opt.timeout) {
        Ok(results) => {
            killer.join().ok();
            print_results(&results);
            println!("mpirun: run completed");
        }
        Err(e) => {
            killer.join().ok();
            eprintln!("mpirun: {e}");
            std::process::exit(1);
        }
    }
}

fn run_socket(
    opt: &Options,
    pf: &progfile::ProgramFile,
    world: u32,
    el_shards: u32,
    checkpointing: Option<SchedulerConfig>,
    spec: &str,
) {
    if opt.protocol != RuntimeProtocol::V2 {
        eprintln!("mpirun: --backend socket supports protocol v2 only");
        std::process::exit(2);
    }
    let mut popts = ProcOptions::new(world, spec);
    popts.el_shards = el_shards;
    popts.el_replicas = opt.el_replicas;
    popts.checkpointing = checkpointing;
    popts.timeout = opt.timeout;
    popts.kills = opt.kills.clone();
    popts.el_kills = opt.el_kills.clone();
    popts.cs_kills = opt.cs_kills.clone();
    popts.obs_dir = opt.obs_dir.clone().map(Into::into);
    popts.health_addr = opt.health.clone();
    popts.fail_after = opt.fail_after;
    popts.epoch_drift = opt.drifts.clone();
    popts.rotate_records = opt.rotate_records;
    popts.rotate_bytes = opt.rotate_bytes;
    popts.binds = pf.bind_map(opt.el_replicas);

    match run_proc(popts) {
        Ok(report) => {
            print_results(&report.results);
            for (peer, cause) in &report.detections {
                println!("mpirun: detected loss of {peer} ({cause})");
            }
            if let Some(merge) = &report.merge {
                println!("mpirun: {}", merge.summary());
            } else if let Some(dump) = &report.merged_dump {
                println!("mpirun: merged flight-recorder dump at {}", dump.display());
            }
            println!(
                "mpirun: run completed ({} rank restarts, {} service restarts)",
                report.restarts, report.service_restarts
            );
            if !report.violations.is_empty() {
                for (node, detail) in &report.violations {
                    eprintln!("mpirun: VIOLATION on {node}: {detail}");
                }
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("mpirun: {e}");
            std::process::exit(1);
        }
    }
}

fn print_results(results: &[Payload]) {
    for (r, p) in results.iter().enumerate() {
        println!(
            "rank {r}: {} result bytes ({})",
            p.len(),
            hex8(p.as_slice())
        );
    }
}

fn hex8(bytes: &[u8]) -> String {
    bytes
        .iter()
        .take(8)
        .map(|b| format!("{b:02x}"))
        .collect::<String>()
}

fn mvr_workloads_cg_config(n: usize) -> mvr_workloads::CgConfig {
    mvr_workloads::CgConfig {
        n,
        max_iter: (2 * n) as u32,
        tol: 1e-10,
    }
}
