//! `mpirun` — the user-facing launcher of §4.7: "the user just runs a
//! parallel program using the standard mpirun command".
//!
//! ```text
//! mpirun -np 4 ring                            # 4 ranks, demo app "ring"
//! mpirun -np 8 --protocol v1 cg                # MPICH-V1 baseline
//! mpirun -np 4 --pgfile cluster.pg stencil     # explicit program file
//! mpirun -np 4 --kill 2@10ms --kill 0@25ms cg  # fault injection
//! mpirun -np 4 --no-checkpoints ring           # logging only
//! ```
//!
//! Demo applications (deterministic, resumable, self-verifying):
//! `ring [iters]`, `allreduce [iters]`, `cg [n]`, `stencil [n] [steps]`.

use mpich_v::core::{Payload, Rank};
use mpich_v::mpi::{MpiResult, ReduceOp, Source, Tag};
use mpich_v::runtime::progfile;
use mpich_v::runtime::{Cluster, ClusterConfig, NodeMpi, RuntimeProtocol, SchedulerConfig};
use mpich_v::workloads as mvr_workloads;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: mpirun -np <N> [--protocol v2|v1|p4] [--pgfile <file>] \
         [--kill <rank>@<ms>ms]... [--no-checkpoints] [--timeout <secs>] \
         <app> [args...]\n\
         apps: ring [iters] | allreduce [iters] | cg [n] | stencil [n] [steps]"
    );
    std::process::exit(2);
}

struct Options {
    np: u32,
    protocol: RuntimeProtocol,
    pgfile: Option<String>,
    kills: Vec<(Rank, Duration)>,
    checkpoints: bool,
    timeout: Duration,
    app: String,
    app_args: Vec<u64>,
}

fn parse_args() -> Options {
    let mut np = 4u32;
    let mut protocol = RuntimeProtocol::V2;
    let mut pgfile = None;
    let mut kills = Vec::new();
    let mut checkpoints = true;
    let mut timeout = Duration::from_secs(120);
    let mut app = None;
    let mut app_args = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-np" | "--np" => {
                np = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--protocol" => {
                protocol = match args.next().as_deref() {
                    Some("v2") => RuntimeProtocol::V2,
                    Some("v1") => RuntimeProtocol::V1,
                    Some("p4") => RuntimeProtocol::P4,
                    _ => usage(),
                };
            }
            "--pgfile" => pgfile = Some(args.next().unwrap_or_else(|| usage())),
            "--kill" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let (rank, when) = spec.split_once('@').unwrap_or_else(|| usage());
                let rank: u32 = rank.parse().unwrap_or_else(|_| usage());
                let ms: u64 = when
                    .trim_end_matches("ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                kills.push((Rank(rank), Duration::from_millis(ms)));
            }
            "--no-checkpoints" => checkpoints = false,
            "--timeout" => {
                timeout = Duration::from_secs(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => usage(),
            other => {
                app = Some(other.to_string());
                app_args = args.by_ref().filter_map(|v| v.parse().ok()).collect();
                break;
            }
        }
    }
    Options {
        np,
        protocol,
        pgfile,
        kills,
        checkpoints,
        timeout,
        app: app.unwrap_or_else(|| usage()),
        app_args,
    }
}

// ---------------------------------------------------------------------
// Demo applications
// ---------------------------------------------------------------------

fn ring(iters: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let me = mpi.rank().0;
        let n = mpi.size();
        let next = Rank((me + 1) % n);
        let prev = Rank((me + n - 1) % n);
        let (mut i, mut acc): (u32, u64) = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).unwrap(),
            None => (0, 0),
        };
        while i < iters {
            let token = ((i as u64) << 32) | me as u64;
            let (_, _, body) = mpi.sendrecv(
                next,
                7,
                &token.to_le_bytes(),
                Source::Rank(prev),
                Tag::Value(7),
            )?;
            acc = acc
                .wrapping_mul(31)
                .wrapping_add(u64::from_le_bytes(body.as_slice().try_into().unwrap()));
            i += 1;
            mpi.checkpoint_site(&bincode::serialize(&(i, acc)).unwrap())?;
        }
        Ok(Payload::from_vec(acc.to_le_bytes().to_vec()))
    }
}

fn allreduce_app(iters: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let (mut i, mut acc): (u32, u64) = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).unwrap(),
            None => (0, 0),
        };
        while i < iters {
            let sum = mpi.allreduce(ReduceOp::Sum, &[mpi.rank().0 as u64 + i as u64])?;
            acc = acc.wrapping_mul(1099511628211).wrapping_add(sum[0]);
            i += 1;
            mpi.checkpoint_site(&bincode::serialize(&(i, acc)).unwrap())?;
        }
        Ok(Payload::from_vec(acc.to_le_bytes().to_vec()))
    }
}

fn main() {
    let opt = parse_args();

    // Resolve the deployment description.
    let pf = match &opt.pgfile {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("mpirun: cannot read {path}: {e}");
                std::process::exit(1);
            });
            match progfile::parse(&text) {
                Ok(pf) => pf,
                Err(e) => {
                    eprintln!("mpirun: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => progfile::default_for(opt.np),
    };
    let world = if opt.pgfile.is_some() {
        pf.world()
    } else {
        opt.np
    };

    let checkpointing = if opt.checkpoints && opt.protocol == RuntimeProtocol::V2 {
        Some(
            pf.scheduler
                .clone()
                .map(|(_, c)| c)
                .unwrap_or_else(SchedulerConfig::default),
        )
    } else {
        None
    };
    let cfg = ClusterConfig {
        world,
        protocol: opt.protocol,
        el_shards: pf.event_loggers.len().max(1) as u32,
        checkpointing,
        ..Default::default()
    };

    println!(
        "mpirun: {} ranks, protocol {:?}, {} event logger(s), checkpoints {}",
        world,
        opt.protocol,
        cfg.el_shards,
        if cfg.checkpointing.is_some() {
            "on"
        } else {
            "off"
        }
    );

    // Launch the requested demo application.
    let arg0 = opt.app_args.first().copied();
    let arg1 = opt.app_args.get(1).copied();
    let cluster = match opt.app.as_str() {
        "ring" => Cluster::launch(cfg, ring(arg0.unwrap_or(500) as u32)),
        "allreduce" => Cluster::launch(cfg, allreduce_app(arg0.unwrap_or(300) as u32)),
        "cg" => {
            let ccfg = mvr_workloads_cg_config(arg0.unwrap_or(768) as usize);
            Cluster::launch(cfg, move |mpi: &mut NodeMpi, restored: Option<Payload>| {
                let st = restored.map(|p| bincode::deserialize(p.as_slice()).unwrap());
                let r = mvr_workloads::cg(mpi, &ccfg, st)?;
                Ok(Payload::from_vec(bincode::serialize(&r).unwrap()))
            })
        }
        "stencil" => {
            let scfg = mvr_workloads::StencilConfig {
                n: arg0.unwrap_or(4000) as usize,
                steps: arg1.unwrap_or(300) as u32,
            };
            Cluster::launch(cfg, move |mpi: &mut NodeMpi, restored: Option<Payload>| {
                let st = restored.map(|p| bincode::deserialize(p.as_slice()).unwrap());
                let total = mvr_workloads::stencil(mpi, &scfg, st)?;
                Ok(Payload::from_vec(total.to_le_bytes().to_vec()))
            })
        }
        other => {
            eprintln!("mpirun: unknown app '{other}'");
            usage();
        }
    };

    // Fault injection.
    let handle = cluster.fault_handle();
    let kills = opt.kills.clone();
    let killer = std::thread::spawn(move || {
        for (rank, at) in kills {
            std::thread::sleep(at);
            println!("mpirun: injecting crash of rank {rank}");
            handle.kill(rank);
        }
    });

    match cluster.wait(opt.timeout) {
        Ok(results) => {
            killer.join().ok();
            for (r, p) in results.iter().enumerate() {
                println!(
                    "rank {r}: {} result bytes ({})",
                    p.len(),
                    hex8(p.as_slice())
                );
            }
            println!("mpirun: run completed");
        }
        Err(e) => {
            killer.join().ok();
            eprintln!("mpirun: {e}");
            std::process::exit(1);
        }
    }
}

fn hex8(bytes: &[u8]) -> String {
    bytes
        .iter()
        .take(8)
        .map(|b| format!("{b:02x}"))
        .collect::<String>()
}

fn mvr_workloads_cg_config(n: usize) -> mvr_workloads::CgConfig {
    mvr_workloads::CgConfig {
        n,
        max_iter: (2 * n) as u32,
        tol: 1e-10,
    }
}
