//! # mpich-v — a Rust reproduction of MPICH-V2
//!
//! Full reproduction of *"MPICH-V2: a Fault Tolerant MPI for Volatile
//! Nodes based on Pessimistic Sender Based Message Logging"* (SC 2003):
//! the pessimistic sender-based message-logging protocol, a live
//! fault-tolerant message-passing runtime, the MPICH-V1 / MPICH-P4
//! comparison stacks, and a calibrated cluster simulator regenerating
//! every figure and table of the paper's evaluation.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`core`] — the protocol engine (sans-IO);
//! * [`net`] — the in-process fabric with fail-stop kills;
//! * [`eventlog`] / [`ckpt`] — the reliable
//!   services;
//! * [`mpi`] — the MPI-like library (p2p + collectives);
//! * [`obs`] — flight recorders, dumps, skew-corrected merge, the
//!   online invariant monitor and the live telemetry plane;
//! * [`runtime`] — daemons, dispatcher, `Cluster` API;
//! * [`simnet`] — the calibrated discrete-event simulator;
//! * [`workloads`] — microbenchmarks, NAS trace models and
//!   real kernels.
//!
//! ## Quickstart
//!
//! ```
//! use mpich_v::prelude::*;
//! use std::time::Duration;
//!
//! // Four volatile MPI processes with automatic fault tolerance.
//! let results = run_cluster(
//!     ClusterConfig { world: 4, ..Default::default() },
//!     |mpi: &mut NodeMpi, _restored: Option<Payload>| {
//!         let sum = mpi.allreduce(ReduceOp::Sum, &[mpi.rank().0 as u64])?;
//!         Ok(Payload::from_vec(sum[0].to_le_bytes().to_vec()))
//!     },
//!     Duration::from_secs(30),
//! )
//! .unwrap();
//! assert_eq!(results.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use mvr_ckpt as ckpt;
pub use mvr_core as core;
pub use mvr_eventlog as eventlog;
pub use mvr_mpi as mpi;
pub use mvr_net as net;
pub use mvr_obs as obs;
pub use mvr_runtime as runtime;
pub use mvr_simnet as simnet;
pub use mvr_workloads as workloads;

/// The commonly-needed names in one import.
pub mod prelude {
    pub use mvr_core::{Payload, Rank};
    pub use mvr_mpi::{MpiError, MpiResult, ReduceOp, Source, Tag};
    pub use mvr_runtime::{
        run_cluster, Cluster, ClusterConfig, FaultHandle, NodeMpi, RuntimeProtocol, SchedulerConfig,
    };
    pub use mvr_simnet::{simulate, ClusterConfig as SimClusterConfig, Protocol};
}
