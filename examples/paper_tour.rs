//! A five-minute tour of the paper's evaluation on the calibrated
//! simulator: the headline numbers of Figures 5, 6, 9, 10 and 11,
//! annotated with the values the paper reports.
//!
//! Run with: `cargo run --release --example paper_tour`
//! (The full sweeps live in `crates/bench/src/bin/` — one binary per
//! table/figure.)

use mpich_v::simnet::{
    simulate, simulate_replay, simulate_with_faults, ClusterConfig, FaultPlan, Protocol, SEC,
};
use mpich_v::workloads::nas::{traces, Class, NasBenchmark};
use mpich_v::workloads::{pattern9, pingpong, token_ring};

fn one_way_us(proto: Protocol, bytes: u64) -> f64 {
    let rep = simulate(ClusterConfig::paper_cluster(proto, 2), pingpong(50, bytes));
    rep.makespan as f64 / 100.0 / 1_000.0
}

fn bandwidth_mbs(proto: Protocol, bytes: u64) -> f64 {
    let rep = simulate(ClusterConfig::paper_cluster(proto, 2), pingpong(10, bytes));
    bytes as f64 / (rep.makespan as f64 / 20.0 / SEC as f64) / 1e6
}

fn main() {
    println!("MPICH-V2 reproduction — paper tour\n");

    println!("— Figure 5/6 anchors (ping-pong):");
    println!(
        "  0-byte latency: P4 {:.0} µs (paper 77), V1 {:.0} (between), V2 {:.0} (paper 237)",
        one_way_us(Protocol::P4, 0),
        one_way_us(Protocol::V1, 0),
        one_way_us(Protocol::V2, 0)
    );
    println!(
        "  4 MB bandwidth: P4 {:.1} MB/s (paper 11.3), V1 {:.1} (half), V2 {:.1} (paper 10.7)",
        bandwidth_mbs(Protocol::P4, 4 << 20),
        bandwidth_mbs(Protocol::V1, 4 << 20),
        bandwidth_mbs(Protocol::V2, 4 << 20)
    );

    println!("\n— Figure 9 (bidirectional Isend/Irecv/Waitall, 64 kB):");
    let p4 = simulate(
        ClusterConfig::paper_cluster(Protocol::P4, 2),
        pattern9(5, 64 << 10),
    );
    let v2 = simulate(
        ClusterConfig::paper_cluster(Protocol::V2, 2),
        pattern9(5, 64 << 10),
    );
    println!(
        "  V2 is {:.2}x faster than P4 (paper: ~2x — the full-duplex daemon)",
        p4.makespan as f64 / v2.makespan as f64
    );

    println!("\n— Figure 10 (token-ring re-execution, 16 kB):");
    let ring = token_ring(8, 20, 16 << 10);
    let reference = simulate(ClusterConfig::paper_cluster(Protocol::V2, 8), ring.clone()).seconds();
    let one = simulate_replay(
        ClusterConfig::paper_cluster(Protocol::V2, 8),
        ring.clone(),
        &[3],
    )
    .seconds();
    let all = simulate_replay(
        ClusterConfig::paper_cluster(Protocol::V2, 8),
        ring,
        &[0, 1, 2, 3, 4, 5, 6, 7],
    )
    .seconds();
    println!(
        "  reference {reference:.3} s; 1-restart {one:.3} s ({:.0}% — paper: ~half);",
        100.0 * one / reference
    );
    println!(
        "  8-restart {all:.3} s ({:.0}% — paper: close to but below the reference)",
        100.0 * all / reference
    );

    println!("\n— Figure 11 (BT-A on 4 nodes, continuous checkpointing):");
    let t = traces(NasBenchmark::BT, Class::A, 4);
    let cfg = ClusterConfig::paper_cluster(Protocol::V2, 4);
    let base = simulate(cfg.clone(), t.clone()).seconds();
    let faults: Vec<(u64, usize)> = (0..9)
        .map(|i| (((1.0 + i as f64 * base * 0.15) * 1e9) as u64, i % 4))
        .collect();
    let rep = simulate_with_faults(
        cfg,
        t,
        &FaultPlan {
            faults,
            continuous_checkpointing: true,
            seed: 42,
        },
    );
    println!(
        "  9 faults: {:.1} s vs {:.1} s reference = {:.2}x (paper: < 2x)",
        rep.seconds(),
        base,
        rep.seconds() / base
    );

    println!("\nFull sweeps: cargo run --release -p mvr-bench --bin fig5_bandwidth  (…fig6, fig7, fig8, fig9, fig10, fig11, table1, sched_ablation)");
}
