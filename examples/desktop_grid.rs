//! Desktop-grid churn: the paper's motivating deployment — "campus/
//! industry wide desktop Grids with volatile nodes" where machines
//! "join/leave the system independently and unpredictably".
//!
//! A long heat-diffusion simulation runs on 5 nodes while a churn thread
//! keeps killing random ranks. The conserved quantity (total heat with
//! reflecting boundaries) verifies that every recovery was exact.
//!
//! Run with: `cargo run --release --example desktop_grid`

use mpich_v::prelude::*;
use mpich_v::workloads::{stencil, StencilConfig, StencilState};
use std::time::Duration;

fn main() {
    let world = 5u32;
    let scfg = StencilConfig {
        n: 5000,
        steps: 600,
    };

    let app = move |mpi: &mut NodeMpi, restored: Option<Payload>| {
        let state: Option<StencilState> =
            restored.map(|p| bincode::deserialize(p.as_slice()).expect("valid state"));
        let total = stencil(mpi, &scfg, state)?;
        Ok(Payload::from_vec(total.to_le_bytes().to_vec()))
    };

    let cluster = mpich_v::runtime::Cluster::launch(
        ClusterConfig {
            world,
            checkpointing: Some(SchedulerConfig::default()),
            ..Default::default()
        },
        app,
    );
    let faults = cluster.fault_handle();

    // Churn: kill a pseudo-random rank every few milliseconds, six times.
    let churn = std::thread::spawn(move || {
        let mut x = 0x9E3779B97F4A7C15u64;
        for k in 0..6 {
            std::thread::sleep(Duration::from_millis(8 + (k * 5) as u64));
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let victim = (x % world as u64) as u32;
            println!("[churn] node {victim} leaves the grid");
            faults.kill(Rank(victim));
        }
    });

    let results = cluster
        .wait(Duration::from_secs(120))
        .expect("survives the churn");
    churn.join().unwrap();

    // Expected total: the deterministic initial condition is conserved.
    let per_rank_expected: f64 = (0..scfg.n).map(|i| ((i % 17) as f64) / 17.0 + 1.0).sum();
    for (r, p) in results.iter().enumerate() {
        let got = f64::from_le_bytes(p.as_slice().try_into().unwrap());
        assert!(
            (got - per_rank_expected).abs() / per_rank_expected < 1e-9,
            "rank {r}: heat not conserved: {got} vs {per_rank_expected}"
        );
    }
    println!(
        "{} steps × {} cells survived 6 node departures; total heat conserved at {:.6}",
        scfg.steps, scfg.n, per_rank_expected
    );
}
