//! A real numeric workload on volatile nodes: a distributed
//! conjugate-gradient solve that survives repeated crashes of the rank
//! holding the nondeterministic state, thanks to uncoordinated
//! checkpointing + pessimistic sender-based message logging.
//!
//! Run with: `cargo run --release --example volatile_cg`

use mpich_v::prelude::*;
use mpich_v::workloads::{cg, CgConfig, CgState};
use std::time::Duration;

fn main() {
    let world = 4u32;
    let cfg = CgConfig {
        n: 768,
        max_iter: 1500,
        tol: 1e-10,
    };

    let app = move |mpi: &mut NodeMpi, restored: Option<Payload>| {
        let state: Option<CgState> =
            restored.map(|p| bincode::deserialize(p.as_slice()).expect("valid CG state"));
        if let Some(s) = &state {
            println!("[rank {}] resuming CG at iteration {}", mpi.rank(), s.iter);
        }
        let result = cg(mpi, &cfg, state)?;
        Ok(Payload::from_vec(
            bincode::serialize(&result).expect("serializable"),
        ))
    };

    let cluster = mpich_v::runtime::Cluster::launch(
        ClusterConfig {
            world,
            checkpointing: Some(SchedulerConfig::default()),
            ..Default::default()
        },
        app,
    );
    let faults = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        for (delay_ms, victim) in [(10u64, 1u32), (20, 3), (15, 1)] {
            std::thread::sleep(Duration::from_millis(delay_ms));
            println!("[dispatcher] crashing rank {victim} ...");
            faults.kill(Rank(victim));
        }
    });

    let results = cluster
        .wait(Duration::from_secs(120))
        .expect("CG completes despite crashes");
    killer.join().unwrap();

    let first: mpich_v::workloads::CgResult = bincode::deserialize(results[0].as_slice()).unwrap();
    println!(
        "CG finished: {} iterations, residual {:.3e}, checksum {:.6}",
        first.iterations, first.residual, first.checksum
    );
    assert!(first.residual < 1e-10, "CG should converge at this size");
    for p in &results {
        let r: mpich_v::workloads::CgResult = bincode::deserialize(p.as_slice()).unwrap();
        assert!((r.checksum - first.checksum).abs() < 1e-9, "ranks disagree");
    }
    println!("all ranks agree — execution is equivalent to a fault-free one");
}
