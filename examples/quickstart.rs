//! Quickstart: a fault-tolerant MPI job on volatile nodes.
//!
//! Launches four MPI processes under the MPICH-V2 runtime, computes an
//! allreduce-based checksum in a loop — and kills a node mid-run to show
//! that the run completes with the exact fault-free result anyway.
//!
//! Run with: `cargo run --release --example quickstart`

use mpich_v::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Duration;

#[derive(Serialize, Deserialize)]
struct State {
    iter: u32,
    acc: u64,
}

fn main() {
    let world = 4u32;
    let iters = 400u32;

    let app = move |mpi: &mut NodeMpi, restored: Option<Payload>| {
        let mut st: State = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).expect("valid state"),
            None => State { iter: 0, acc: 0 },
        };
        if restored.is_some() {
            println!("[rank {}] resumed at iteration {}", mpi.rank(), st.iter);
        }
        while st.iter < iters {
            let mine = vec![(mpi.rank().0 as u64 + 1) * (st.iter as u64 + 1)];
            let sum = mpi.allreduce(ReduceOp::Sum, &mine)?;
            st.acc = st.acc.wrapping_mul(1099511628211).wrapping_add(sum[0]);
            st.iter += 1;
            // Cooperative checkpoint site: a daemon-ordered checkpoint is
            // taken here if one is pending.
            mpi.checkpoint_site(&bincode::serialize(&st).expect("serializable"))?;
        }
        Ok(Payload::from_vec(st.acc.to_le_bytes().to_vec()))
    };

    // Enable the checkpoint subsystem (round-robin scheduler).
    let cfg = ClusterConfig {
        world,
        checkpointing: Some(SchedulerConfig::default()),
        ..Default::default()
    };
    let cluster = mpich_v::runtime::Cluster::launch(cfg, app);
    let faults = cluster.fault_handle();

    // A "volatile node": kill rank 2 while the job runs.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(15));
        println!("[dispatcher] crashing rank 2 ...");
        faults.kill(Rank(2));
    });

    let results = cluster
        .wait(Duration::from_secs(60))
        .expect("job completes despite the crash");
    killer.join().unwrap();

    // Every rank must agree, and the value must equal the fault-free one.
    let expected = {
        let mut acc: u64 = 0;
        for i in 0..iters as u64 {
            let sum: u64 = (1..=world as u64).map(|r| r * (i + 1)).sum();
            acc = acc.wrapping_mul(1099511628211).wrapping_add(sum);
        }
        acc
    };
    for (r, p) in results.iter().enumerate() {
        let got = u64::from_le_bytes(p.as_slice().try_into().unwrap());
        assert_eq!(got, expected, "rank {r} diverged");
        println!("rank {r}: checksum {got:#018x} ✓");
    }
    println!("fault-free-equivalent result verified across all {world} ranks");
}
