//! Cross-crate end-to-end tests:
//!
//! * differential testing — the same numeric kernels produce identical
//!   results on the plain in-process test cluster (no fault tolerance)
//!   and on the full MPICH-V2 runtime, with and without injected crashes;
//! * property-based testing — the simulator conserves messages for
//!   arbitrary well-formed traces under all three protocol models, replay
//!   never exceeds the reference, and the runtime survives random fault
//!   schedules with fault-free-equivalent results.

use mpich_v::prelude::*;
use mpich_v::simnet::{simulate, simulate_replay, Op, TraceBuilder};
use mpich_v::workloads::{cg, stencil, CgConfig, StencilConfig};
use mvr_mpi::testing::run_local;
use proptest::prelude::*;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

// ---------------------------------------------------------------------
// Differential: test cluster vs fault-tolerant runtime
// ---------------------------------------------------------------------

#[test]
fn cg_result_identical_on_both_stacks() {
    let cfg = CgConfig {
        n: 400,
        max_iter: 500,
        tol: 1e-10,
    };
    let reference = run_local(4, |mut mpi| cg(&mut mpi, &cfg, None)).unwrap()[0];

    let results = mpich_v::runtime::run_cluster(
        ClusterConfig {
            world: 4,
            ..Default::default()
        },
        move |mpi: &mut NodeMpi, _| {
            let r = cg(mpi, &cfg, None)?;
            Ok(Payload::from_vec(bincode::serialize(&r).unwrap()))
        },
        TIMEOUT,
    )
    .unwrap();
    let on_runtime: mpich_v::workloads::CgResult =
        bincode::deserialize(results[0].as_slice()).unwrap();
    assert_eq!(on_runtime.iterations, reference.iterations);
    assert!((on_runtime.checksum - reference.checksum).abs() < 1e-9);
}

#[test]
fn stencil_result_identical_even_with_a_crash() {
    let scfg = StencilConfig {
        n: 1200,
        steps: 120,
    };
    let reference = run_local(3, |mut mpi| stencil(&mut mpi, &scfg, None)).unwrap()[0];

    let cluster = mpich_v::runtime::Cluster::launch(
        ClusterConfig {
            world: 3,
            ..Default::default()
        },
        move |mpi: &mut NodeMpi, restored: Option<Payload>| {
            let st = restored.map(|p| bincode::deserialize(p.as_slice()).unwrap());
            let total = stencil(mpi, &scfg, st)?;
            Ok(Payload::from_vec(total.to_le_bytes().to_vec()))
        },
    );
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        handle.kill(Rank(1));
    });
    let results = cluster.wait(TIMEOUT).unwrap();
    killer.join().unwrap();
    for p in &results {
        let got = f64::from_le_bytes(p.as_slice().try_into().unwrap());
        assert!((got - reference).abs() / reference.abs() < 1e-12);
    }
}

// ---------------------------------------------------------------------
// Property: simulator conservation for arbitrary traces
// ---------------------------------------------------------------------

/// A well-formed random trace set: per round, every rank posts
/// nonblocking sends to arbitrary peers, then receives what it is owed,
/// then waits — deadlock-free by construction.
fn arb_traces(max_ranks: usize, max_rounds: usize) -> impl Strategy<Value = Vec<Vec<Op>>> {
    (2..=max_ranks, 1..=max_rounds).prop_flat_map(|(n, rounds)| {
        proptest::collection::vec(
            proptest::collection::vec((0..n, 1u64..200_000), 0..6),
            rounds,
        )
        .prop_map(move |round_plans| {
            let mut builders: Vec<TraceBuilder> = (0..n).map(|_| TraceBuilder::new()).collect();
            for plan in &round_plans {
                // plan: list of (dst_seed, bytes) per sending rank slot.
                let mut recv_counts = vec![vec![0usize; n]; n]; // [src][dst]
                for (i, &(dst_seed, bytes)) in plan.iter().enumerate() {
                    let src = i % n;
                    let dst = if dst_seed == src {
                        (dst_seed + 1) % n
                    } else {
                        dst_seed
                    };
                    builders[src].isend(dst, bytes);
                    recv_counts[src][dst] += 1;
                }
                for (dst, b) in builders.iter_mut().enumerate() {
                    for (src, counts) in recv_counts.iter().enumerate() {
                        for _ in 0..counts[dst] {
                            b.recv(src);
                        }
                    }
                    b.waitall();
                }
            }
            builders.into_iter().map(|b| b.build()).collect::<Vec<_>>()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn sim_conserves_messages_for_all_protocols(traces in arb_traces(5, 4)) {
        mpich_v::simnet::validate_matching(&traces).unwrap();
        let (msgs, bytes) = mpich_v::simnet::traffic_summary(&traces);
        for proto in Protocol::all() {
            let cfg = SimClusterConfig::paper_cluster(proto, traces.len());
            let rep = simulate(cfg, traces.clone());
            prop_assert_eq!(rep.msgs_delivered, msgs);
            prop_assert_eq!(rep.bytes_delivered, bytes);
        }
    }

    #[test]
    fn sim_is_deterministic(traces in arb_traces(4, 3)) {
        let cfg = SimClusterConfig::paper_cluster(Protocol::V2, traces.len());
        let a = simulate(cfg.clone(), traces.clone());
        let b = simulate(cfg, traces);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.el_events, b.el_events);
    }

    #[test]
    fn replay_never_exceeds_reference(
        n in 3usize..8,
        laps in 2usize..12,
        bytes in 64u64..100_000,
        restarts in 1usize..8,
    ) {
        let restarts = restarts.min(n);
        let traces = mpich_v::workloads::token_ring(n, laps, bytes);
        let cfg = SimClusterConfig::paper_cluster(Protocol::V2, n);
        let reference = simulate(cfg.clone(), traces.clone()).makespan;
        let restarted: Vec<usize> = (0..restarts).collect();
        let replay = simulate_replay(cfg, traces, &restarted).makespan;
        prop_assert!(
            replay <= reference + reference / 10,
            "replay {replay} exceeds reference {reference}"
        );
    }
}

// ---------------------------------------------------------------------
// Property: runtime survives random fault schedules
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 0,
    })]

    #[test]
    fn runtime_survives_random_fault_schedules(
        seed in 0u64..1000,
        kills in proptest::collection::vec((1u64..40, 0u32..3), 1..4),
    ) {
        let world = 3u32;
        let iters = 250u32;
        let scfg = StencilConfig { n: 600, steps: iters };
        let _ = seed;
        let cluster = mpich_v::runtime::Cluster::launch(
            ClusterConfig {
                world,
                checkpointing: Some(SchedulerConfig::default()),
                ..Default::default()
            },
            move |mpi: &mut NodeMpi, restored: Option<Payload>| {
                let st = restored.map(|p| bincode::deserialize(p.as_slice()).unwrap());
                let total = stencil(mpi, &scfg, st)?;
                Ok(Payload::from_vec(total.to_le_bytes().to_vec()))
            },
        );
        let handle = cluster.fault_handle();
        let killer = std::thread::spawn(move || {
            for (delay_ms, victim) in kills {
                std::thread::sleep(Duration::from_millis(delay_ms));
                handle.kill(Rank(victim));
            }
        });
        let results = cluster.wait(TIMEOUT).expect("cluster completes");
        killer.join().unwrap();
        let expected: f64 = (0..600).map(|i| ((i % 17) as f64) / 17.0 + 1.0).sum();
        for p in &results {
            let got = f64::from_le_bytes(p.as_slice().try_into().unwrap());
            prop_assert!((got - expected).abs() / expected < 1e-9);
        }
    }
}
