//! Multi-process deployment tests: real `mpirun` child processes over
//! the TCP socket backend, real SIGKILLs, and the socket fail-stop
//! detector feeding recovery — the deployment story of MPICH-V2 §4.7
//! exercised across genuine OS process boundaries.
//!
//! Every test drives the built `mpirun` binary (CARGO_BIN_EXE), so the
//! full path is covered: progfile → process launch → hello/address-map
//! handshake → framed TCP data plane → supervisor verdicts → respawn.

use mpich_v::core::Rank;
use mpich_v::obs::{parse_dump, parse_record_line, validate_records, InvariantMonitor};
use mpich_v::runtime::proc::{run_proc, sig, ProcError, ProcOptions};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn mpirun() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpirun"))
}

/// A fresh per-test observability directory under the target dir, and a
/// `ProcOptions` that re-executes the built `mpirun` binary as its
/// children (the same child hook the CLI uses).
fn proc_opts(test: &str, world: u32, app: &str) -> (ProcOptions, PathBuf) {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(test);
    let _ = std::fs::remove_dir_all(&dir);
    let mut opts = ProcOptions::new(world, app);
    opts.exe = PathBuf::from(env!("CARGO_BIN_EXE_mpirun"));
    opts.obs_dir = Some(dir.clone());
    opts.timeout = Duration::from_secs(60);
    (opts, dir)
}

fn run_capture(args: &[&str]) -> (String, Option<i32>) {
    let out = mpirun()
        .args(args)
        .output()
        .expect("mpirun binary must launch");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (text, out.status.code())
}

/// The per-rank result lines (`rank N: ...`), the backend-independent
/// observable output of a run.
fn result_lines(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| l.starts_with("rank "))
        .map(|l| l.to_string())
        .collect()
}

#[test]
fn socket_backend_matches_in_process_results() {
    let (inproc, code_a) = run_capture(&["-np", "4", "--timeout", "60", "ring", "40"]);
    let (socket, code_b) = run_capture(&[
        "-np",
        "4",
        "--backend",
        "socket",
        "--timeout",
        "60",
        "ring",
        "40",
    ]);
    assert_eq!(code_a, Some(0), "in-process run failed:\n{inproc}");
    assert_eq!(code_b, Some(0), "socket run failed:\n{socket}");
    let a = result_lines(&inproc);
    let b = result_lines(&socket);
    assert_eq!(a.len(), 4, "expected 4 rank results:\n{inproc}");
    assert_eq!(
        a, b,
        "backends must compute identical results:\ninproc:\n{inproc}\nsocket:\n{socket}"
    );
}

#[test]
fn sigkill_mid_stream_is_detected_and_recovered() {
    let start = Instant::now();
    let (text, code) = run_capture(&[
        "-np",
        "4",
        "--backend",
        "socket",
        "--timeout",
        "60",
        "--fail-after",
        "250",
        "--kill",
        "1@30ms",
        "ring",
        "60",
    ]);
    let elapsed = start.elapsed();
    assert_eq!(code, Some(0), "run must recover and complete:\n{text}");
    // The kill really happened and was adjudicated — by the reaper or
    // the socket detector, whichever observed it first.
    assert!(
        text.contains("mpirun: SIGKILL cn1"),
        "planned kill missing:\n{text}"
    );
    assert!(
        text.contains("detected loss of cn1"),
        "fail-stop verdict missing:\n{text}"
    );
    // Detection fed recovery: exactly one reincarnation of the victim.
    assert!(
        text.contains("launched cn1") && text.contains("incarnation=1"),
        "respawn missing:\n{text}"
    );
    assert!(
        !text.contains("incarnation=2"),
        "one SIGKILL must cost exactly one respawn (no verdict storm):\n{text}"
    );
    assert_eq!(
        result_lines(&text).len(),
        4,
        "all ranks must deliver results after recovery:\n{text}"
    );
    // Mid-stream loss was repaired well inside the run budget — the
    // detector did not wait out the full supervision timeout.
    assert!(
        elapsed < Duration::from_secs(30),
        "recovery took {elapsed:?}"
    );
}

#[test]
fn el_replica_sigkill_revives_and_completes() {
    let (text, code) = run_capture(&[
        "-np",
        "4",
        "--backend",
        "socket",
        "--timeout",
        "60",
        "--el-replicas",
        "3",
        "--el-kill",
        "1@40ms",
        "ring",
        "60",
    ]);
    assert_eq!(
        code,
        Some(0),
        "run must survive an EL replica loss:\n{text}"
    );
    assert!(
        text.contains("mpirun: SIGKILL el1"),
        "planned EL kill missing:\n{text}"
    );
    assert!(
        text.contains("launched el1") && text.contains("incarnation=1"),
        "EL replica revival missing:\n{text}"
    );
    assert_eq!(result_lines(&text).len(), 4, "results missing:\n{text}");
}

#[test]
fn skewed_epochs_are_corrected_in_merged_dump() {
    let (mut opts, dir) = proc_opts("skewed_epochs", 2, "ring 30");
    // Rank 1's recorder epoch is shifted 25ms late, so its raw
    // timestamps read 25ms early — every cross-rank deliver appears to
    // precede its send until the merge solves for the offset.
    opts.epoch_skew = vec![(Rank(1), 25_000_000)];
    let report = run_proc(opts).expect("skewed run completes");
    let merge = report.merge.expect("merge summary present");

    // The injected skew was visible, estimated, and fully corrected.
    assert!(
        merge.skew.inversions_before >= 1,
        "expected causal inversions in the raw merge: {}",
        merge.skew.summary()
    );
    assert_eq!(
        merge.skew.inversions_after,
        0,
        "correction must remove every inversion: {}",
        merge.skew.summary()
    );
    assert!(merge.skew.is_correction(), "{}", merge.skew.summary());
    let off = *merge
        .skew
        .offsets
        .get(&1)
        .expect("offset solved for rank 1");
    assert!(
        off >= 1_000_000,
        "rank 1 offset should recover most of the 25ms skew, got {off}ns"
    );

    // The offsets travelled into the dump header, and the corrected
    // timeline passes the same strict audit obs_analyze applies.
    let text = std::fs::read_to_string(dir.join("merged.jsonl")).expect("merged dump");
    let (header, timeline) = parse_dump(&text).expect("merged dump parses");
    let header = header.expect("merged dump carries a header");
    assert!(
        header
            .offsets
            .iter()
            .any(|o| o.rank == 1 && o.offset_ns != 0),
        "header must record the applied rank-1 offset"
    );
    validate_records(&timeline).expect("schema");
    let monitor = InvariantMonitor::new();
    monitor.observe_all(&timeline);
    assert!(
        monitor.violation().is_none(),
        "skew correction must not fabricate violations: {:?}",
        monitor.violation()
    );
}

#[test]
fn drifting_clock_is_corrected_by_piecewise_track_in_merged_dump() {
    let (mut opts, dir) = proc_opts("drifting_clock", 2, "ring 150");
    // Rank 1's oscillator runs 3% fast (30M ppb): unlike a constant
    // epoch shift, the error GROWS over the run, so a single offset
    // per incarnation cannot reconcile the bidirectional ring traffic
    // — the piecewise-linear track must kick in.
    opts.epoch_drift = vec![(Rank(1), 30_000_000)];
    let report = run_proc(opts).expect("drifting run completes");
    let merge = report.merge.expect("merge summary present");

    // The drift was visible raw and fully corrected by the track.
    assert!(
        merge.skew.inversions_before >= 1,
        "expected causal inversions in the raw merge: {}",
        merge.skew.summary()
    );
    assert_eq!(
        merge.skew.inversions_after,
        0,
        "piecewise correction must remove every inversion: {}",
        merge.skew.summary()
    );
    assert!(
        !merge.skew.infeasible,
        "clock model must be feasible: {}",
        merge.skew.summary()
    );
    assert!(merge.skew.is_correction(), "{}", merge.skew.summary());

    // The drift demanded a multi-segment track, and it travelled into
    // the dump header in place of the constant offsets.
    let text = std::fs::read_to_string(dir.join("merged.jsonl")).expect("merged dump");
    let (header, timeline) = parse_dump(&text).expect("merged dump parses");
    let header = header.expect("merged dump carries a header");
    // The raise-only solver lifts the relatively SLOW clock — every
    // other rank, from fast-running rank 1's point of view — so the
    // rising multi-anchor track lands on a peer of rank 1.
    assert!(
        !header.track.is_empty(),
        "header must record a piecewise offset track"
    );
    assert!(
        header
            .track
            .iter()
            .any(|t| t.anchors.len() >= 2 && t.anchors.last() > t.anchors.first()),
        "drift needs a rising multi-anchor track, got {:?}",
        header.track
    );
    assert!(
        header.offsets.iter().all(|o| o.offset_ns == 0),
        "track and constant offsets are mutually exclusive in the header"
    );

    // The corrected timeline passes the same strict audit obs_analyze
    // applies, and fabricates no protocol violations.
    validate_records(&timeline).expect("schema");
    let monitor = InvariantMonitor::new();
    monitor.observe_all(&timeline);
    assert!(
        monitor.violation().is_none(),
        "drift correction must not fabricate violations: {:?}",
        monitor.violation()
    );
}

#[test]
fn rotated_jsonl_segments_reassemble_in_merged_dump() {
    let (mut opts, dir) = proc_opts("rotated_segments", 2, "ring 40");
    // Tiny segments: every child stream rotates every 50 records, so
    // the merge must reassemble multiple segments per incarnation.
    opts.rotate_records = 50;
    let report = run_proc(opts).expect("rotated run completes");
    let merge = report.merge.expect("merge summary present");
    assert!(merge.records > 0, "merged dump must carry records");

    // At least one rank stream actually rotated: its sidecar segment
    // index exists and lists every closed segment.
    let seg_files: Vec<_> = std::fs::read_dir(&dir)
        .expect("obs dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".seg") && n.ends_with(".jsonl"))
        })
        .collect();
    assert!(
        !seg_files.is_empty(),
        "expected rotated .segN.jsonl segments in {}",
        dir.display()
    );

    // The merged dump still validates: rotation lost nothing.
    let text = std::fs::read_to_string(dir.join("merged.jsonl")).expect("merged dump");
    let (_, timeline) = parse_dump(&text).expect("merged dump parses");
    validate_records(&timeline).expect("schema");
}

#[test]
fn injected_gate_violation_is_caught_live_by_parent() {
    let (mut opts, dir) = proc_opts("live_violation", 2, "ring 200");
    opts.inject_violation = Some(Rank(1));
    match run_proc(opts) {
        Err(ProcError::InvariantViolated(v)) => {
            assert_eq!(v.invariant, "pessimism-gate", "wrong invariant: {v}");
            assert_eq!(
                v.rank, 1,
                "violation must be attributed to the injecting rank: {v}"
            );
        }
        Ok(_) => panic!("run must fail live on the shipped violation"),
        Err(e) => panic!("expected a live invariant verdict, got: {e}"),
    }
    // First-violation triage: the parent merged every stream it had
    // into a crash dump before aborting the run.
    let crash = dir.join("crash.jsonl");
    assert!(crash.exists(), "crash dump missing at {}", crash.display());
    assert!(
        std::fs::metadata(&crash)
            .expect("crash dump metadata")
            .len()
            > 0,
        "crash dump must not be empty"
    );
}

#[test]
fn default_flush_cadence_survives_sigkill_without_partial_lines() {
    let (mut opts, dir) = proc_opts("sigkill_durability", 4, "ring 60");
    // Default stream_flush_every = 1: one write(2) per record. A real
    // SIGKILL mid-stream must leave the victim's incarnation-0 stream
    // non-empty and cleanly parseable to the last byte.
    assert_eq!(opts.stream_flush_every, 1, "durable default changed");
    opts.kills = vec![(Rank(1), Duration::from_millis(30))];
    opts.fail_after = Some(Duration::from_millis(250));
    let report = run_proc(opts).expect("killed run recovers");
    assert!(report.restarts >= 1, "the SIGKILL must have landed");

    let victim = dir.join("cn1-i0.jsonl");
    let text = std::fs::read_to_string(&victim).expect("victim stream exists");
    assert!(
        !text.is_empty(),
        "victim stream empty — per-record flush not durable"
    );
    for (i, line) in text.lines().enumerate() {
        parse_record_line(line).unwrap_or_else(|e| {
            panic!(
                "partial/corrupt line {} in {}: {e}\n{line}",
                i + 1,
                victim.display()
            )
        });
    }
}

/// Read lines from `child`'s stdout on a helper thread, forwarding each
/// over a channel so the test can wait with deadlines.
fn stream_stdout(child: &mut Child) -> mpsc::Receiver<String> {
    let stdout = child.stdout.take().expect("stdout piped");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines().map_while(Result::ok) {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    rx
}

#[test]
fn sigint_tears_down_without_orphans() {
    // An app far too long to finish on its own: the only way this run
    // ends in bounded time is the interrupt path.
    let mut child = mpirun()
        .args([
            "-np",
            "4",
            "--backend",
            "socket",
            "--timeout",
            "300",
            "ring",
            "100000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("mpirun spawns");
    let lines = stream_stdout(&mut child);

    // Collect child pids as the supervisor announces them; all 6 (4
    // ranks + 1 EL + 1 CS) must be up before we interrupt.
    let mut pids: Vec<u32> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while pids.len() < 6 && Instant::now() < deadline {
        match lines.recv_timeout(Duration::from_millis(200)) {
            Ok(line) => {
                if let Some(rest) = line.split("pid=").nth(1) {
                    let pid: u32 = rest
                        .split_whitespace()
                        .next()
                        .and_then(|p| p.parse().ok())
                        .expect("pid parses");
                    pids.push(pid);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    assert_eq!(pids.len(), 6, "expected all children announced");

    assert!(sig::send_signal(child.id(), sig::SIGINT), "SIGINT delivery");

    // The supervisor must wind everything down promptly: Shutdown
    // broadcast, escalation to SIGTERM/SIGKILL only as needed, reaps.
    let wait_deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(st) => break st,
            None if Instant::now() < wait_deadline => std::thread::sleep(Duration::from_millis(20)),
            None => {
                let _ = child.kill();
                panic!("mpirun did not exit after SIGINT");
            }
        }
    };
    assert_eq!(status.code(), Some(1), "interrupted run reports failure");

    // No orphans: every announced child pid must be gone. Signal 0 is
    // the POSIX liveness probe — false means no such process.
    // (A tiny grace period covers pid-table churn right at exit.)
    std::thread::sleep(Duration::from_millis(100));
    for pid in pids {
        assert!(
            !sig::send_signal(pid, 0),
            "child pid {pid} survived teardown"
        );
    }
}
