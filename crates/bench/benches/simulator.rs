//! Criterion benchmarks of the discrete-event simulator itself (events
//! per second on representative workloads) — these bound how large a
//! paper-scale sweep the fig7 harness can afford.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mvr_simnet::{simulate, ClusterConfig, Protocol};
use mvr_workloads::{pingpong, token_ring};

mod helpers {
    use mvr_simnet::Op;
    use mvr_workloads::nas::{traces, Class, NasBenchmark};

    pub fn cg_small() -> Vec<Vec<Op>> {
        traces(NasBenchmark::CG, Class::S, 4)
    }
}

/// Re-export shim so the bench body reads naturally.
fn traces_small() -> Vec<Vec<mvr_simnet::Op>> {
    helpers::cg_small()
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.bench_function("pingpong_1000_rounds_v2", |b| {
        b.iter(|| {
            let cfg = ClusterConfig::paper_cluster(Protocol::V2, 2);
            black_box(simulate(cfg, pingpong(1000, 4096)).makespan)
        })
    });
    g.bench_function("token_ring_8x100_v2", |b| {
        b.iter(|| {
            let cfg = ClusterConfig::paper_cluster(Protocol::V2, 8);
            black_box(simulate(cfg, token_ring(8, 100, 16 << 10)).makespan)
        })
    });
    g.bench_function("nas_cg_class_s_4_v2", |b| {
        b.iter(|| {
            let cfg = ClusterConfig::paper_cluster(Protocol::V2, 4);
            black_box(simulate(cfg, traces_small()).makespan)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
