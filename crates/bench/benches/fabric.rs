//! Criterion benchmarks of the in-process fabric: mailbox throughput and
//! the kill/reincarnate path (the runtime's fault-injection hot path).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mvr_core::{NodeId, Rank};
use mvr_net::Fabric;

fn bench_mailbox_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    g.bench_function("send_recv_10k_msgs", |b| {
        b.iter_batched(
            || {
                let f = Fabric::new();
                let (mb, _) = f.register::<u64>(NodeId::Computing(Rank(1)));
                let (_, id) = f.register::<u64>(NodeId::Computing(Rank(0)));
                (mb, id)
            },
            |(mb, id)| {
                for i in 0..10_000u64 {
                    id.send(NodeId::Computing(Rank(1)), i).unwrap();
                }
                let mut sum = 0u64;
                while let Ok(Some(v)) = mb.try_recv() {
                    sum += v;
                }
                black_box(sum)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("kill_and_reincarnate", |b| {
        let f = Fabric::new();
        let node = NodeId::Computing(Rank(7));
        let (_mb, _id) = f.register::<u64>(node);
        b.iter(|| {
            f.kill(node);
            let (mb, id) = f.register::<u64>(node);
            black_box((mb.is_empty(), id.is_live()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_mailbox_throughput);
criterion_main!(benches);
