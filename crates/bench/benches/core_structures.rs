//! Criterion micro-benchmarks of the protocol's core data structures —
//! the ablation measurements behind DESIGN.md's design choices: sender-log
//! append/GC cost, pessimism-gate bookkeeping, engine step latency and
//! replay-plan matching.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mvr_core::engine::{Input, V2Engine};
use mvr_core::{
    DataMsg, MsgId, Payload, PeerMsg, PessimismGate, Rank, ReceptionEvent, ReplayPlan, SenderLog,
};

fn bench_sender_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("sender_log");
    let payload = Payload::filled(7, 1024);
    g.bench_function("append_1k", |b| {
        b.iter_batched(
            SenderLog::new,
            |mut log| {
                for i in 0..1000u64 {
                    log.append(Rank((i % 8) as u32), i + 1, payload.clone());
                }
                black_box(log.bytes_held())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("gc_half_of_1k", |b| {
        b.iter_batched(
            || {
                let mut log = SenderLog::new();
                for i in 0..1000u64 {
                    log.append(Rank(1), i + 1, payload.clone());
                }
                log
            },
            |mut log| black_box(log.collect(Rank(1), 500)),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("resend_tail", |b| {
        let mut log = SenderLog::new();
        for i in 0..1000u64 {
            log.append(Rank(1), i + 1, payload.clone());
        }
        b.iter(|| black_box(log.resend_after(Rank(1), 900).count()))
    });
    g.finish();
}

fn bench_gate(c: &mut Criterion) {
    c.bench_function("pessimism_gate_cycle", |b| {
        b.iter_batched(
            PessimismGate::new,
            |mut gate| {
                for i in 1..=1000u64 {
                    gate.on_scheduled(i);
                    gate.on_ack(i);
                }
                black_box(gate.is_open())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("send_recv_ack_cycle", |b| {
        b.iter_batched(
            || (V2Engine::fresh(Rank(0), 2), V2Engine::fresh(Rank(1), 2)),
            |(mut tx, mut rx)| {
                for i in 0..100 {
                    tx.handle(Input::AppSend {
                        dst: Rank(1),
                        payload: Payload::filled(i, 256),
                    })
                    .unwrap();
                    for out in tx.drain_outputs() {
                        if let mvr_core::engine::Output::Transmit { msg, .. } = out {
                            rx.handle(Input::Peer { from: Rank(0), msg }).unwrap();
                        }
                    }
                    rx.handle(Input::AppRecv).unwrap();
                    let clock = rx.clock();
                    rx.handle(Input::ElAck { up_to: clock }).unwrap();
                    rx.drain_outputs();
                }
                black_box(rx.clock())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_replay_plan(c: &mut Criterion) {
    c.bench_function("replay_plan_1k_events", |b| {
        let events: Vec<ReceptionEvent> = (0..1000u64)
            .map(|i| ReceptionEvent {
                sender: Rank((i % 4) as u32),
                sender_clock: i / 4 + 1,
                receiver_clock: i + 1,
                probes: 0,
            })
            .collect();
        b.iter_batched(
            || ReplayPlan::new(events.clone()),
            |mut plan| {
                let mut clock = 0u64;
                for i in 0..1000u64 {
                    let id = MsgId::new(Rank((i % 4) as u32), i / 4 + 1);
                    plan.offer(id, Payload::empty());
                    if let Some((ev, _)) = plan.try_deliver(clock).unwrap() {
                        clock = ev.receiver_clock;
                    }
                }
                black_box(plan.is_done())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_wire(c: &mut Criterion) {
    c.bench_function("peer_msg_encode_decode_4k", |b| {
        let msg = PeerMsg::Data(DataMsg {
            id: MsgId::new(Rank(3), 999),
            dst: Rank(1),
            payload: Payload::filled(9, 4096),
        });
        b.iter(|| {
            let enc = bincode::serialize(&msg).unwrap();
            let dec: PeerMsg = bincode::deserialize(&enc).unwrap();
            black_box(dec)
        })
    });
}

criterion_group!(
    benches,
    bench_sender_log,
    bench_gate,
    bench_engine,
    bench_replay_plan,
    bench_wire
);
criterion_main!(benches);
