//! # mvr-bench — the paper-figure harness
//!
//! One binary per table/figure of the MPICH-V2 paper (see DESIGN.md §5
//! for the experiment index). Every binary prints a paper-style text
//! table to stdout and writes machine-readable JSON next to it under
//! `results/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:>w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        s
    };
    println!(
        "{}",
        line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Write a JSON result file under `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let s = serde_json::to_string_pretty(value).expect("serializable results");
            let _ = f.write_all(s.as_bytes());
            println!("\n[results written to {}]", path.display());
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Did the user pass `--quick` (smaller sweeps for CI)?
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Human-readable byte size.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}MB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}kB", b >> 10)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_scales() {
        assert_eq!(fmt_bytes(64), "64B");
        assert_eq!(fmt_bytes(2048), "2kB");
        assert_eq!(fmt_bytes(4 << 20), "4MB");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table("t", &["a", "bb"], &[vec!["1".into(), "2".into()]]);
    }
}
