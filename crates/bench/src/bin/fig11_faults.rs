//! Figure 11: performance of BT class A on 4 computing nodes (plus one
//! reliable node) when up to 9 faults hit the execution, with continuous
//! random-victim checkpointing ("the system is always checkpointing a
//! node"; faults at any time, including during checkpoint or
//! re-execution).
//!
//! Paper anchors: low no-fault overhead of the checkpoint system, smooth
//! degradation with fault count, and execution time below 2x the
//! fault-free reference at 9 faults (paper cadence: ~1 fault every 45 s).

use mvr_bench::{print_table, quick_mode, write_json};
use mvr_simnet::{simulate, simulate_with_faults, ClusterConfig, FaultPlan, Protocol};
use mvr_workloads::nas::{traces, Class, NasBenchmark};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    faults: usize,
    applied: u64,
    checkpoints: u64,
    seconds: f64,
    over_reference: f64,
}

fn main() {
    let p = 4usize;
    let class = if quick_mode() { Class::W } else { Class::A };
    let t = traces(NasBenchmark::BT, class, p);
    let cfg = ClusterConfig::paper_cluster(Protocol::V2, p);
    let reference = simulate(cfg.clone(), t.clone()).seconds();
    println!("reference (no checkpoints, no faults): {reference:.1} s");

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for faults in 0..=9usize {
        // Spread the faults across the run, round-robin victims (the
        // paper triggers them randomly; seeds make ours reproducible).
        let spacing = (reference * 1.5 / 10.0).max(0.5);
        let plan = FaultPlan {
            faults: (0..faults)
                .map(|i| {
                    let t_s = (1.0 + i as f64 * spacing) * 1e9;
                    (t_s as u64, i % p)
                })
                .collect(),
            continuous_checkpointing: true,
            seed: 42,
        };
        let rep = simulate_with_faults(cfg.clone(), t.clone(), &plan);
        let secs = rep.seconds();
        rows.push(vec![
            faults.to_string(),
            rep.faults.to_string(),
            rep.checkpoints.to_string(),
            format!("{secs:.1}"),
            format!("{:.2}x", secs / reference),
        ]);
        points.push(Point {
            faults,
            applied: rep.faults,
            checkpoints: rep.checkpoints,
            seconds: secs,
            over_reference: secs / reference,
        });
    }
    print_table(
        &format!(
            "Figure 11 — BT-{} on 4 nodes under faults (continuous checkpointing)",
            class.name()
        ),
        &["faults", "applied", "ckpts", "time (s)", "vs ref"],
        &rows,
    );
    println!("\nexpected: low no-fault overhead; smooth degradation; < ~2x at 9 faults");
    write_json("fig11_faults", &points);
}
