//! Hot path — before/after microbenchmarks for the zero-copy fabric rework.
//!
//! The fabric's receive path moved from one mutex+condvar queue per node
//! (every `send` and every poll took the lock and signalled the condvar)
//! to one bounded lock-free SPSC ring per sender-receiver pair with an
//! eventcount parker and a batched `recv_many` drain. This harness pits
//! the retained pre-rework mailbox (`mvr_net::mailbox::legacy`, kept
//! verbatim as the baseline) against the ring mailbox at three layers:
//!
//! * `latency_one_way` — small-message one-way latency: a same-thread
//!   two-queue ping-pong (enqueue → dequeue → reply → dequeue, halved),
//!   i.e. the queue traversal cost a message pays on top of the wire.
//!   Same-thread on purpose: it measures the queue, not the kernel
//!   scheduler, and is deterministic on any core count.
//! * `mailbox_enqueue_dequeue` — the daemon select-loop shape: bursts
//!   from 4 sender lanes into one mailbox, drained with `recv_many`
//!   (the legacy mailbox drains message-at-a-time; it has no batch
//!   primitive — that asymmetry is the point of the rework).
//! * `spsc_ring` — the raw ring: a `u64` stream through one lane,
//!   no payload, exercising wraparound.
//!
//! Two cross-thread rows (`xthread_*`) are reported for context but not
//! gated: on a single-CPU host they time the scheduler, not the queue.
//!
//! Full runs write `results/BENCH_hotpath.json` with before/after columns
//! and enforce the acceptance floors (≥2× small-message latency, ≥4×
//! mailbox throughput); `--smoke`/`--quick` runs a reduced sweep without
//! touching the committed JSON.

use std::sync::Arc;
use std::time::Instant;

use mvr_bench::{fmt_bytes, print_table, write_json};
use mvr_core::Payload;
use mvr_net::mailbox::legacy::{LegacyMailCore, LegacyMailbox};
use mvr_net::mailbox::{bench_lanes, bench_pair};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    metric: &'static str,
    msg_bytes: u64,
    /// ns per message on the legacy mutex+condvar mailbox.
    before_ns: f64,
    /// ns per message on the SPSC-ring mailbox.
    after_ns: f64,
    speedup: f64,
    /// Whether this row is gated by an acceptance floor.
    gated: bool,
}

/// Best-of-`reps` of a timed closure returning ns/op — scheduler blips
/// only ever slow a run down, so the minimum is the queue's cost.
fn best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// One-way latency on the legacy mailbox: same-thread ping-pong through
/// two queues, halved.
fn latency_legacy(bytes: usize, iters: usize) -> f64 {
    let core_ab = LegacyMailCore::new();
    let core_ba = LegacyMailCore::new();
    let rx_b = LegacyMailbox::new(Arc::clone(&core_ab));
    let rx_a = LegacyMailbox::new(Arc::clone(&core_ba));
    let ball = Payload::filled(7, bytes);
    let start = Instant::now();
    for _ in 0..iters {
        assert!(core_ab.push(ball.clone()));
        let m = rx_b.try_recv().unwrap().expect("ping queued");
        assert!(core_ba.push(m));
        let _ = rx_a.try_recv().unwrap().expect("pong queued");
    }
    start.elapsed().as_nanos() as f64 / iters as f64 / 2.0
}

/// One-way latency on the ring mailbox (one SPSC lane per direction,
/// exactly the fabric's per-pair shape).
fn latency_ring(bytes: usize, iters: usize) -> f64 {
    let (tx_ab, rx_b) = bench_pair::<Payload>(256);
    let (tx_ba, rx_a) = bench_pair::<Payload>(256);
    let ball = Payload::filled(7, bytes);
    let start = Instant::now();
    for _ in 0..iters {
        assert!(tx_ab.send(ball.clone()));
        let m = rx_b.try_recv().unwrap().expect("ping queued");
        assert!(tx_ba.send(m));
        let _ = rx_a.try_recv().unwrap().expect("pong queued");
    }
    start.elapsed().as_nanos() as f64 / iters as f64 / 2.0
}

/// Daemon-shaped throughput on the legacy mailbox: bursts of 128
/// messages (4 senders × 32), drained message-at-a-time — `recv` is the
/// legacy mailbox's only drain primitive.
fn tput_legacy(bursts: usize, bytes: usize) -> f64 {
    let core = LegacyMailCore::new();
    let rx = LegacyMailbox::new(Arc::clone(&core));
    let ball = Payload::filled(3, bytes);
    let start = Instant::now();
    for _ in 0..bursts {
        for _ in 0..128 {
            assert!(core.push(ball.clone()));
        }
        for _ in 0..128 {
            let _ = rx.recv().expect("bench mailbox killed");
        }
    }
    start.elapsed().as_nanos() as f64 / (bursts * 128) as f64
}

/// Daemon-shaped throughput on the ring mailbox: the same bursts spread
/// over 4 SPSC lanes, drained with `recv_many` (the daemon loop's
/// `DAEMON_DRAIN_BATCH` shape).
fn tput_ring(bursts: usize, bytes: usize) -> f64 {
    let (senders, rx) = bench_lanes::<Payload>(256, 4);
    let ball = Payload::filled(3, bytes);
    let mut batch: Vec<Payload> = Vec::with_capacity(256);
    let start = Instant::now();
    for _ in 0..bursts {
        for _ in 0..32 {
            for s in &senders {
                assert!(s.send(ball.clone()));
            }
        }
        let mut got = 0;
        while got < 128 {
            got += rx.recv_many(&mut batch, 256).expect("bench mailbox killed");
            batch.clear();
        }
    }
    start.elapsed().as_nanos() as f64 / (bursts * 128) as f64
}

/// Raw-ring stream: `u64`s through one lane, same thread, bursts under
/// the ring capacity so the fast path (and its wraparound) is what runs.
fn spsc_legacy(msgs: usize) -> f64 {
    let core = LegacyMailCore::new();
    let rx = LegacyMailbox::new(Arc::clone(&core));
    let bursts = msgs / 128;
    let start = Instant::now();
    for b in 0..bursts {
        for i in 0..128u64 {
            assert!(core.push(b as u64 * 128 + i));
        }
        for _ in 0..128 {
            let _ = rx.recv().expect("bench mailbox killed");
        }
    }
    start.elapsed().as_nanos() as f64 / (bursts * 128) as f64
}

fn spsc_ring(msgs: usize) -> f64 {
    let (tx, rx) = bench_pair::<u64>(256);
    let bursts = msgs / 128;
    let mut batch: Vec<u64> = Vec::with_capacity(256);
    let start = Instant::now();
    for b in 0..bursts {
        for i in 0..128u64 {
            assert!(tx.send(b as u64 * 128 + i));
        }
        let mut got = 0;
        while got < 128 {
            got += rx.recv_many(&mut batch, 256).expect("bench mailbox killed");
            batch.clear();
        }
    }
    start.elapsed().as_nanos() as f64 / (bursts * 128) as f64
}

/// Cross-thread stream, blocking consumer — reported for context only
/// (on a single-CPU host this times context switches, not the queue).
fn xthread_legacy(per: usize, producers: usize) -> f64 {
    let core = LegacyMailCore::new();
    let rx = LegacyMailbox::new(Arc::clone(&core));
    let start = Instant::now();
    let threads: Vec<_> = (0..producers)
        .map(|_| {
            let core = Arc::clone(&core);
            std::thread::spawn(move || {
                for i in 0..per as u64 {
                    assert!(core.push(i));
                }
            })
        })
        .collect();
    let total = per * producers;
    for _ in 0..total {
        let _ = rx.recv().expect("bench mailbox killed");
    }
    let ns = start.elapsed().as_nanos() as f64 / total as f64;
    for t in threads {
        t.join().unwrap();
    }
    ns
}

fn xthread_ring(per: usize, producers: usize) -> f64 {
    let (senders, rx) = bench_lanes::<u64>(256, producers);
    let start = Instant::now();
    let threads: Vec<_> = senders
        .into_iter()
        .map(|tx| {
            std::thread::spawn(move || {
                for i in 0..per as u64 {
                    assert!(tx.send(i));
                }
            })
        })
        .collect();
    let total = per * producers;
    let mut got = 0usize;
    let mut batch: Vec<u64> = Vec::with_capacity(256);
    while got < total {
        got += rx.recv_many(&mut batch, 256).expect("bench mailbox killed");
        batch.clear();
    }
    let ns = start.elapsed().as_nanos() as f64 / total as f64;
    for t in threads {
        t.join().unwrap();
    }
    ns
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--quick");
    let (lat_iters, tput_bursts, spsc_msgs, xthread_per) = if smoke {
        (20_000, 200, 50_000, 20_000)
    } else {
        (1_000_000, 8_000, 2_000_000, 500_000)
    };
    let reps = if smoke { 2 } else { 5 };

    // Warm up: fault in code paths before the measured windows.
    latency_legacy(64, lat_iters / 10 + 1);
    latency_ring(64, lat_iters / 10 + 1);
    tput_legacy(tput_bursts / 10 + 1, 64);
    tput_ring(tput_bursts / 10 + 1, 64);

    let mut out = Vec::new();
    for &bytes in &[0usize, 64, 256] {
        let before = best_of(reps, || latency_legacy(bytes, lat_iters));
        let after = best_of(reps, || latency_ring(bytes, lat_iters));
        out.push(Row {
            metric: "latency_one_way",
            msg_bytes: bytes as u64,
            before_ns: before,
            after_ns: after,
            speedup: before / after,
            gated: true,
        });
    }
    for &bytes in &[64usize, 256] {
        let before = best_of(reps, || tput_legacy(tput_bursts, bytes));
        let after = best_of(reps, || tput_ring(tput_bursts, bytes));
        out.push(Row {
            metric: "mailbox_enqueue_dequeue",
            msg_bytes: bytes as u64,
            before_ns: before,
            after_ns: after,
            speedup: before / after,
            gated: true,
        });
    }
    {
        let before = best_of(reps, || spsc_legacy(spsc_msgs));
        let after = best_of(reps, || spsc_ring(spsc_msgs));
        out.push(Row {
            metric: "spsc_ring",
            msg_bytes: 8,
            before_ns: before,
            after_ns: after,
            speedup: before / after,
            gated: false,
        });
    }
    for &producers in &[1usize, 4] {
        let before = best_of(reps, || xthread_legacy(xthread_per, producers));
        let after = best_of(reps, || xthread_ring(xthread_per, producers));
        out.push(Row {
            metric: if producers == 1 {
                "xthread_stream_1p"
            } else {
                "xthread_stream_4p"
            },
            msg_bytes: 8,
            before_ns: before,
            after_ns: after,
            speedup: before / after,
            gated: false,
        });
    }

    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.metric.to_string(),
                fmt_bytes(r.msg_bytes),
                format!("{:.0}", r.before_ns),
                format!("{:.0}", r.after_ns),
                format!("{:.2}x", r.speedup),
                if r.gated { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "hot path — legacy mutex mailbox vs lock-free SPSC rings",
        &["metric", "msg", "before_ns", "after_ns", "speedup", "gated"],
        &rows,
    );
    println!(
        "\nreading: `before` is the retained pre-rework mutex+condvar mailbox\n\
         (mvr_net::mailbox::legacy), `after` the per-pair SPSC rings with the\n\
         batched recv_many drain. latency is one-way queue traversal (half a\n\
         same-thread two-queue ping-pong); throughput is 4 sender lanes bursting\n\
         into one mailbox. xthread rows are context, not gated — on a 1-CPU host\n\
         they time the scheduler."
    );

    if smoke {
        println!("\nsmoke run: thresholds and BENCH_hotpath.json skipped.");
        return;
    }
    write_json("BENCH_hotpath", &out);

    // Acceptance floors from the rework's issue: ≥2× one-way latency for
    // small (≤256 B) messages, ≥4× mailbox enqueue/dequeue throughput.
    for r in &out {
        match r.metric {
            "latency_one_way" => assert!(
                r.speedup >= 2.0,
                "latency {}B: {:.2}x < 2x floor",
                r.msg_bytes,
                r.speedup
            ),
            "mailbox_enqueue_dequeue" => assert!(
                r.speedup >= 4.0,
                "throughput {}B: {:.2}x < 4x floor",
                r.msg_bytes,
                r.speedup
            ),
            _ => {}
        }
    }
    println!("acceptance floors met: latency ≥2x, mailbox throughput ≥4x.");
}
