//! Ablation: event-logger provisioning and service cost.
//!
//! §4.5: "For scalability reasons, several event loggers may be used in a
//! system … event loggers do not have to communicate with each other."
//! This harness quantifies that design choice on the message-rate-bound
//! NAS kernels (LU, CG at 32 ranks): sweeping (a) the number of event
//! loggers and (b) the EL service cost, and reporting the V2 slowdown
//! over P4.
//!
//! It also explains EXPERIMENTS.md's "muted CG magnitude" note: with a
//! slow (dual-PIII-like) event logger the paper's CG factor reappears.

use mvr_bench::{print_table, write_json};
use mvr_simnet::{simulate, usecs, ClusterConfig, Protocol};
use mvr_workloads::nas::{traces, Class, NasBenchmark};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bench: &'static str,
    procs: usize,
    event_loggers: usize,
    el_service_us: u64,
    v2_s: f64,
    v2_over_p4: f64,
}

fn main() {
    let cases = [
        (NasBenchmark::LU, 32usize),
        (NasBenchmark::CG, 32),
        (NasBenchmark::MG, 32),
    ];
    let mut out = Vec::new();
    let mut rows = Vec::new();

    for (bench, p) in cases {
        let p4 = {
            let cfg = ClusterConfig::paper_cluster(Protocol::P4, p);
            simulate(cfg, traces(bench, Class::A, p)).seconds()
        };
        // (a) number of event loggers at the calibrated service cost.
        for els in [1usize, 2, 4, 8] {
            let mut cfg = ClusterConfig::paper_cluster(Protocol::V2, p);
            cfg.event_loggers = els;
            let v2 = simulate(cfg, traces(bench, Class::A, p)).seconds();
            rows.push(vec![
                format!("{}-A", bench.name()),
                p.to_string(),
                els.to_string(),
                "4".into(),
                format!("{v2:.1}"),
                format!("{:.2}x", v2 / p4),
            ]);
            out.push(Row {
                bench: bench.name(),
                procs: p,
                event_loggers: els,
                el_service_us: 4,
                v2_s: v2,
                v2_over_p4: v2 / p4,
            });
        }
        // (b) a slow event logger (the real 2003 dual-PIII behaviour).
        for service_us in [50u64, 150, 400] {
            let mut cfg = ClusterConfig::paper_cluster(Protocol::V2, p);
            cfg.el_service = usecs(service_us);
            let v2 = simulate(cfg, traces(bench, Class::A, p)).seconds();
            rows.push(vec![
                format!("{}-A", bench.name()),
                p.to_string(),
                "1".into(),
                service_us.to_string(),
                format!("{v2:.1}"),
                format!("{:.2}x", v2 / p4),
            ]);
            out.push(Row {
                bench: bench.name(),
                procs: p,
                event_loggers: 1,
                el_service_us: service_us,
                v2_s: v2,
                v2_over_p4: v2 / p4,
            });
        }
    }

    print_table(
        "Ablation — event-logger provisioning (V2 vs P4 on message-rate-bound kernels)",
        &["bench", "procs", "ELs", "service µs", "V2 (s)", "V2/P4"],
        &rows,
    );
    println!(
        "\nreading: more ELs shrink the V2 penalty on LU/CG/MG at 32 ranks; a slow EL\n\
         (≥150 µs/event) reproduces the paper's ~3x CG factor — see EXPERIMENTS.md."
    );
    write_json("ablation_el", &out);
}
