//! CI smoke test for the observability layer: one seeded chaos scenario
//! with flight recorders on, a forced dump, and structural validation of
//! the dumped artifacts.
//!
//! Checks, in order:
//!   1. the run still completes with bit-exact payloads under the storm;
//!   2. the merged timeline passes schema validation — every record
//!      round-trips through the wire encoding, per-rank wall clocks are
//!      monotone, and per-rank logical clocks are monotone except across
//!      recovery resets ([`mvr_obs::validate_records`]);
//!   3. the dumped JSONL is byte-identical to re-rendering the timeline
//!      (the vendored `serde_json` is write-only, so "parse and compare"
//!      is done in reverse: regenerate and string-compare);
//!   4. the Chrome-trace/Perfetto export exists and is non-trivial;
//!   5. the timeline actually captured the storm (chaos kills) and the
//!      protocol reacting to it (restart/recovery records).
//!
//! Exits nonzero with a triage message on the first violated check.

use mvr_core::{Payload, Rank};
use mvr_mpi::{MpiResult, Source, Tag};
use mvr_obs::{
    header_line, jsonl_line, validate_records, DumpHeader, ProtoEvent, RecorderConfig,
    DISPATCHER_RANK,
};
use mvr_runtime::{
    ChaosConfig, Cluster, ClusterConfig, NodeMpi, SchedulerConfig, TurbulenceConfig,
};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Duration;

const WORLD: u32 = 4;
const MSGS: u32 = 80;
const SEED: u64 = 0x0B5E7EED;

#[derive(Clone, Serialize, Deserialize)]
struct IterState {
    iter: u32,
    acc: u64,
}

fn stream_app(msgs: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let mut st: IterState = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).expect("valid state"),
            None => IterState { iter: 0, acc: 0 },
        };
        let me = mpi.rank().0;
        let n = mpi.size();
        while st.iter < msgs {
            let w = if me == 0 {
                let w = st.iter as u64;
                mpi.send(Rank(1), 5, &w.to_le_bytes())?;
                w
            } else {
                let (_, _, body) = mpi.recv(Source::Rank(Rank(me - 1)), Tag::Value(5))?;
                let v = u64::from_le_bytes(body.as_slice().try_into().expect("8 bytes"));
                let w = v.wrapping_mul(31).wrapping_add(me as u64);
                if me + 1 < n {
                    mpi.send(Rank(me + 1), 5, &w.to_le_bytes())?;
                }
                w
            };
            st.acc = st.acc.wrapping_mul(131).wrapping_add(w);
            st.iter += 1;
            mpi.checkpoint_site(&bincode::serialize(&st).expect("serializable"))?;
        }
        Ok(Payload::from_vec(st.acc.to_le_bytes().to_vec()))
    }
}

fn expected_stream(me: u32, msgs: u32) -> u64 {
    let mut acc: u64 = 0;
    for i in 0..msgs {
        let mut w = i as u64;
        for r in 1..=me {
            w = w.wrapping_mul(31).wrapping_add(r as u64);
        }
        acc = acc.wrapping_mul(131).wrapping_add(w);
    }
    acc
}

fn fail(msg: &str) -> ! {
    eprintln!("obs_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let dump_dir = PathBuf::from("chaos_dumps/obs-smoke");
    let cfg = ClusterConfig {
        world: WORLD,
        checkpointing: Some(SchedulerConfig {
            interval: Duration::from_millis(1),
            ..Default::default()
        }),
        chaos: Some(ChaosConfig {
            seed: SEED,
            kills: 3,
            min_gap: Duration::from_millis(2),
            max_gap: Duration::from_millis(8),
            max_burst: 2,
            cs_kill_pct: 0,
            rekill_pct: 50,
            ..Default::default()
        }),
        turbulence: Some(TurbulenceConfig::delays(SEED ^ 0x7A17, 50)),
        obs: RecorderConfig::enabled(),
        obs_dump_dir: Some(dump_dir.clone()),
        monitor: true,
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, stream_app(MSGS));
    let hub = cluster.recorder_hub();
    let report = match cluster.wait_report(Duration::from_secs(60)) {
        Ok(r) => r,
        Err(e) => fail(&format!(
            "seeded scenario did not complete: {e} (dump in {})",
            dump_dir.display()
        )),
    };

    // 1. Exactly-once delivery held under the storm.
    for (r, p) in report.results.iter().enumerate() {
        let got = u64::from_le_bytes(p.as_slice().try_into().expect("8 bytes"));
        let want = expected_stream(r as u32, MSGS);
        if got != want {
            hub.recorder(DISPATCHER_RANK).record(
                0,
                ProtoEvent::Divergence {
                    detail: format!("rank {r} got {got:#x} want {want:#x}"),
                },
            );
            let _ = hub.dump(&dump_dir, "divergence");
            fail(&format!(
                "payload mismatch on rank {r} (dump in {})",
                dump_dir.display()
            ));
        }
    }

    // 2. Forced dump of the successful run, then schema validation.
    let paths = hub
        .dump(&dump_dir, "smoke")
        .unwrap_or_else(|e| fail(&format!("dump failed: {e}")));
    let timeline = hub.timeline();
    if timeline.is_empty() {
        fail("timeline is empty with recorders enabled");
    }
    if let Err(e) = validate_records(&timeline) {
        fail(&format!("schema validation: {e}"));
    }

    // 3. The dumped JSONL is exactly the canonical rendering: one
    // header line carrying the drop count, then one record per line,
    // clock-ordered.
    let dumped = std::fs::read_to_string(&paths.jsonl)
        .unwrap_or_else(|e| fail(&format!("read {}: {e}", paths.jsonl.display())));
    let mut canonical = header_line(&DumpHeader {
        records: timeline.len() as u64,
        dropped: paths.dropped,
        offsets: Vec::new(),
        track: Vec::new(),
        unconstrained: Vec::new(),
    });
    canonical.push('\n');
    for rec in &timeline {
        canonical.push_str(&jsonl_line(rec));
        canonical.push('\n');
    }
    if dumped != canonical {
        fail("dumped JSONL differs from canonical re-rendering");
    }
    if dumped.lines().count() != paths.records + 1 {
        fail("JSONL line count disagrees with reported record count");
    }
    if paths.dropped > 0 {
        fail("recorder ring wrapped during the smoke scenario; raise its capacity");
    }

    // 4. Perfetto export present and non-trivial.
    let trace = std::fs::read_to_string(&paths.trace)
        .unwrap_or_else(|e| fail(&format!("read {}: {e}", paths.trace.display())));
    if !trace.contains("traceEvents") || trace.len() < 128 {
        fail("Chrome-trace export looks malformed");
    }

    // 5. The storm and the recovery machinery both left records.
    let kills = timeline
        .iter()
        .filter(|r| matches!(r.event, ProtoEvent::ChaosKill { .. }))
        .count();
    if kills == 0 {
        fail("no ChaosKill records: chaos driver not threaded through obs");
    }
    let respawns = timeline
        .iter()
        .filter(|r| matches!(r.event, ProtoEvent::RespawnScheduled { .. }))
        .count();
    if respawns == 0 {
        fail("no RespawnScheduled records: dispatcher not threaded through obs");
    }
    if report.restarts == 0 {
        fail("storm executed no restarts: scenario too weak to smoke-test recovery");
    }

    println!(
        "obs_smoke: ok — {} records, {} chaos kills, {} respawns, {} restarts\n{}",
        timeline.len(),
        kills,
        respawns,
        report.restarts,
        paths.summary()
    );
}
