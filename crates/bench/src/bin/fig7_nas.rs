//! Figure 7: NAS Parallel Benchmarks 2.3 (CG, MG, FT, LU, BT, SP),
//! classes A and B, up to 32 processors (25 for BT/SP), MPICH-P4 vs
//! MPICH-V2 (no checkpoints during the runs, as in the paper).
//!
//! Expected shapes (paper §5.2):
//! * CG, MG: V2 clearly slower (small-message latency + event logging);
//! * FT: V2 ≈ P4 (bandwidth-bound all-to-all); FT class B not runnable
//!   (message log exceeds the 2 GB per-node budget);
//! * LU: V2 poor (message-rate bound; log pressure);
//! * BT, SP: V2 ≈ P4 or better (large nonblocking messages, full-duplex
//!   daemon).

use mvr_bench::{print_table, quick_mode, write_json};
use mvr_simnet::{simulate, ClusterConfig, Protocol};
use mvr_workloads::nas::{traces, Class, NasBenchmark};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bench: &'static str,
    class: &'static str,
    procs: usize,
    p4_s: Option<f64>,
    v2_s: Option<f64>,
    v2_over_p4: Option<f64>,
    v2_spilled: bool,
    v2_infeasible: bool,
}

fn run(proto: Protocol, bench: NasBenchmark, class: Class, p: usize) -> mvr_simnet::SimReport {
    let cfg = ClusterConfig::paper_cluster(proto, p);
    simulate(cfg, traces(bench, class, p))
}

fn main() {
    let quick = quick_mode();
    let classes: &[Class] = if quick {
        &[Class::A]
    } else {
        &[Class::A, Class::B]
    };
    let mut out: Vec<Row> = Vec::new();

    for &class in classes {
        for bench in NasBenchmark::all() {
            let procs: &[usize] = match bench {
                NasBenchmark::BT | NasBenchmark::SP => {
                    if quick {
                        &[4, 9]
                    } else {
                        &[4, 9, 16, 25]
                    }
                }
                _ => {
                    if quick {
                        &[4, 8]
                    } else {
                        &[4, 8, 16, 32]
                    }
                }
            };
            for &p in procs {
                let p4 = run(Protocol::P4, bench, class, p);
                let v2 = run(Protocol::V2, bench, class, p);
                let feasible = !v2.infeasible;
                out.push(Row {
                    bench: bench.name(),
                    class: class.name(),
                    procs: p,
                    p4_s: Some(p4.seconds()),
                    v2_s: feasible.then(|| v2.seconds()),
                    v2_over_p4: feasible.then(|| v2.seconds() / p4.seconds()),
                    v2_spilled: v2.spilled,
                    v2_infeasible: v2.infeasible,
                });
            }
        }
    }

    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                format!("{}-{}", r.bench, r.class),
                r.procs.to_string(),
                r.p4_s
                    .map(|s| format!("{s:.1}"))
                    .unwrap_or_else(|| "-".into()),
                match (r.v2_infeasible, r.v2_s) {
                    (true, _) => "log > 2GB".into(),
                    (_, Some(s)) if r.v2_spilled => format!("{s:.1} (disk)"),
                    (_, Some(s)) => format!("{s:.1}"),
                    _ => "-".into(),
                },
                r.v2_over_p4
                    .map(|x| format!("{x:.2}x"))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(
        "Figure 7 — NPB 2.3 execution time (s), MPICH-P4 vs MPICH-V2",
        &["bench", "procs", "P4 (s)", "V2 (s)", "V2/P4"],
        &rows,
    );
    println!(
        "\nexpected shapes: CG/MG/LU slower under V2; FT ~parity (class B infeasible); \
         BT/SP parity or V2 ahead"
    );
    write_json("fig7_nas", &out);
}
