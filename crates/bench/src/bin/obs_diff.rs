//! Regression oracle over two observability runs.
//!
//! Each input is either a merged flight-recorder dump (`*.jsonl`,
//! reduced on the fly via [`mvr_obs::RunProfile::from_dump`]) or an
//! already-reduced profile JSON (written by a previous
//! `--write-baseline` run). The comparison gates three surfaces:
//! protocol-interval timing percentiles/sums, critical-path
//! attribution per edge category, and event-kind counters — see
//! `mvr_obs::compare` for the one-sided vs two-sided semantics and
//! noise floors.
//!
//! Exit status is the contract: 0 when every metric stayed inside
//! `--tolerance-pct`, 1 when at least one regressed (the verdict names
//! each offender), 2 on usage/IO errors. A verdict JSON is always
//! written (default `obs_diff.verdict.json`, override with `--out`) so
//! CI can archive the evidence.
//!
//! Usage:
//!   `obs_diff [--tolerance-pct N] [--out verdict.json] <baseline> <current>`
//!   `obs_diff --write-baseline <profile.json> <run.jsonl>`

use mvr_obs::{compare, parse_dump, DiffReport, RunProfile};
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage: obs_diff [--tolerance-pct N] [--out verdict.json] <baseline> <current>\n\
         \x20      obs_diff --write-baseline <profile.json> <run.jsonl>\n\
         inputs ending in .jsonl are merged dumps (reduced on the fly);\n\
         anything else is parsed as a reduced profile JSON"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("obs_diff: FAIL: {msg}");
    std::process::exit(2);
}

/// Load a profile from either a raw dump (`.jsonl`) or profile JSON.
fn load_profile(path: &Path) -> RunProfile {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("read {}: {e}", path.display())));
    if path.extension().is_some_and(|e| e == "jsonl") {
        let (_, timeline) =
            parse_dump(&text).unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
        RunProfile::from_dump(&timeline)
    } else {
        RunProfile::parse(&text)
            .unwrap_or_else(|e| fail(&format!("{}: not a profile: {e}", path.display())))
    }
}

fn print_report(report: &DiffReport) {
    println!(
        "obs_diff: {} metric(s) compared at tolerance {}%",
        report.compared, report.tolerance_pct
    );
    for d in &report.regressions {
        println!(
            "  REGRESSED {}: {} -> {} ({:+}%)",
            d.metric, d.baseline, d.current, d.change_pct
        );
    }
}

fn main() {
    let mut tolerance_pct = 25u64;
    let mut out = PathBuf::from("obs_diff.verdict.json");
    let mut write_baseline = false;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tolerance-pct" => {
                tolerance_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = args.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => usage(),
            _ if inputs.len() < 2 => inputs.push(PathBuf::from(a)),
            _ => usage(),
        }
    }
    if inputs.len() != 2 {
        usage();
    }

    if write_baseline {
        // Reduce the run and (over)write the baseline profile.
        let profile = load_profile(&inputs[1]);
        std::fs::write(&inputs[0], profile.to_json())
            .unwrap_or_else(|e| fail(&format!("write {}: {e}", inputs[0].display())));
        println!(
            "obs_diff: baseline {} written from {} ({} records)",
            inputs[0].display(),
            inputs[1].display(),
            profile.records
        );
        return;
    }

    let baseline = load_profile(&inputs[0]);
    let current = load_profile(&inputs[1]);
    let report = compare(&baseline, &current, tolerance_pct);

    let verdict =
        serde_json::to_string_pretty(&report).unwrap_or_else(|e| fail(&format!("render: {e}")));
    std::fs::write(&out, verdict)
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", out.display())));

    print_report(&report);
    println!("  verdict: {}", out.display());
    if report.is_clean() {
        println!("obs_diff: ok");
    } else {
        let names: Vec<&str> = report
            .regressions
            .iter()
            .map(|d| d.metric.as_str())
            .collect();
        eprintln!("obs_diff: REGRESSION: {}", names.join(", "));
        std::process::exit(1);
    }
}
