//! Figure 6: ping-pong latency vs message size (small messages).
//!
//! Paper anchors: 77 µs for P4 at 0 bytes vs 237 µs for V2 ("six TCP
//! messages ... P4 only sends two"); V1 in between.

use mvr_bench::{fmt_bytes, print_table, write_json};
use mvr_simnet::{simulate, ClusterConfig, Protocol};
use mvr_workloads::pingpong;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    bytes: u64,
    protocol: &'static str,
    latency_us: f64,
}

fn latency_us(protocol: Protocol, bytes: u64) -> f64 {
    let rounds = 50;
    let cfg = ClusterConfig::paper_cluster(protocol, 2);
    let rep = simulate(cfg, pingpong(rounds, bytes));
    rep.makespan as f64 / (2.0 * rounds as f64) / 1_000.0
}

fn main() {
    let sizes: [u64; 8] = [0, 64, 256, 1024, 4096, 16 << 10, 64 << 10, 128 << 10];
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &bytes in &sizes {
        let mut row = vec![fmt_bytes(bytes)];
        for proto in Protocol::all() {
            let l = latency_us(proto, bytes);
            row.push(format!("{l:.0}"));
            points.push(Point {
                bytes,
                protocol: proto.label(),
                latency_us: l,
            });
        }
        rows.push(row);
    }
    print_table(
        "Figure 6 — ping-pong latency (µs)",
        &["size", "MPICH-P4", "MPICH-V1", "MPICH-V2"],
        &rows,
    );
    println!(
        "\n0-byte: P4 {:.0} µs (paper: 77), V1 {:.0} (paper: between), V2 {:.0} (paper: 237)",
        latency_us(Protocol::P4, 0),
        latency_us(Protocol::V1, 0),
        latency_us(Protocol::V2, 0)
    );
    write_json("fig6_latency", &points);
}
