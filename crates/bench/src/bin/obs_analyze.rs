//! Offline analyzer for flight-recorder JSONL dumps.
//!
//! Reads a dump produced by [`mvr_obs::RecorderHub::dump`] (e.g. by
//! `obs_smoke` or `chaos_soak`), then:
//!
//!   1. re-validates the record schema and per-rank clock monotonicity;
//!   2. stitches per-message lifecycle spans keyed by
//!      `(sender, sender_clock)` and reports latency percentiles,
//!      slowest messages, and orphan edges (a delivery with no send, a
//!      wire send never delivered, a send stuck behind the gate);
//!   3. builds the cross-rank happens-before DAG and walks the critical
//!      path backwards from the last record, attributing wall-clock to
//!      network / gate-wait / EL round-trip / checkpoint / replay /
//!      local computation and naming the dominant component;
//!   4. replays the merged timeline through the online invariant
//!      monitor (pessimism gate, watermark monotonicity, exactly-once
//!      delivery) as an offline audit;
//!   5. writes per-message Perfetto flow events next to the dump
//!      (`<stem>.flow.trace.json`) so every message's path is drawn
//!      across rank tracks.
//!
//! `--strict` exits nonzero if the dump is ring-truncated (header
//! `dropped` > 0), any orphan edge exists, or the monitor finds a
//! violation — the CI mode.
//!
//! Usage: `obs_analyze [--strict] [--top N] <dump.jsonl>`

use mvr_obs::{
    parse_dump, validate_records, write_flow_trace, CausalGraph, InvariantMonitor, SpanSet,
};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: obs_analyze [--strict] [--top N] <dump.jsonl>");
    std::process::exit(1);
}

fn fail(msg: &str) -> ! {
    eprintln!("obs_analyze: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut strict = false;
    let mut top = 5usize;
    let mut path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strict" => strict = true,
            "--top" => {
                top = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ if path.is_none() => path = Some(PathBuf::from(a)),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("read {}: {e}", path.display())));
    let (header, timeline) =
        parse_dump(&text).unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));

    let mut strict_failures: Vec<String> = Vec::new();
    println!(
        "obs_analyze: {} — {} records",
        path.display(),
        timeline.len()
    );
    match header {
        Some(h) => {
            if h.records != timeline.len() as u64 {
                fail(&format!(
                    "header claims {} records, dump body has {}",
                    h.records,
                    timeline.len()
                ));
            }
            if h.dropped > 0 {
                println!(
                    "  WARNING: {} record(s) lost to ring wraparound — the timeline is \
                     truncated; orphan spans below may be artifacts of the truncation",
                    h.dropped
                );
                strict_failures.push(format!("{} records dropped", h.dropped));
            }
            if !h.offsets.is_empty() {
                // Skew corrections the merge already applied: the body's
                // timestamps include these per-rank shifts.
                let rendered: Vec<String> = h
                    .offsets
                    .iter()
                    .map(|o| format!("rank {}: {:+.3}ms", o.rank, o.offset_ns as f64 / 1e6))
                    .collect();
                println!("  clock-skew offsets applied: {}", rendered.join(", "));
            }
            if !h.track.is_empty() {
                // Piecewise-linear drift tracks: the merge applied a
                // time-varying correction, not a constant shift.
                let rendered: Vec<String> = h
                    .track
                    .iter()
                    .map(|t| {
                        let first = *t.anchors.first().unwrap_or(&0);
                        let last = *t.anchors.last().unwrap_or(&0);
                        let span_ns = t
                            .seg_ns
                            .saturating_mul(t.anchors.len().saturating_sub(1) as u64);
                        let drift_ppm = if span_ns > 0 {
                            (last - first) as f64 / span_ns as f64 * 1e6
                        } else {
                            0.0
                        };
                        format!(
                            "rank {}: {} anchor(s), {:+.3}ms -> {:+.3}ms (drift {:+.1}ppm)",
                            t.rank,
                            t.anchors.len(),
                            first as f64 / 1e6,
                            last as f64 / 1e6,
                            drift_ppm
                        )
                    })
                    .collect();
                println!(
                    "  drift-aware offset tracks applied: {}",
                    rendered.join("; ")
                );
            }
            if !h.unconstrained.is_empty() {
                let ranks: Vec<String> = h.unconstrained.iter().map(|r| r.to_string()).collect();
                println!(
                    "  WARNING: rank(s) {} had zero causal edges — their offset 0 is \
                     unmeasured, not verified",
                    ranks.join(", ")
                );
            }
        }
        None => println!("  note: headerless dump (pre-header format); drop count unknown"),
    }

    if let Err(e) = validate_records(&timeline) {
        fail(&format!("schema validation: {e}"));
    }

    // 2. Per-message spans and orphan edges.
    let spans = SpanSet::build(&timeline);
    print!("{}", spans.report(top));
    if !spans.orphans.is_empty() {
        strict_failures.push(format!("{} orphan edge(s)", spans.orphans.len()));
    }

    // 3. Happens-before DAG and critical path.
    let graph = CausalGraph::build(&timeline);
    println!(
        "causal graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    match graph.critical_path(&timeline) {
        Some(cp) => print!("{}", cp.report(&timeline, top)),
        None => println!("critical path: empty timeline"),
    }

    // 4. Offline invariant audit over the merged timeline.
    let monitor = InvariantMonitor::new();
    monitor.observe_all(&timeline);
    match monitor.violation() {
        Some(v) => {
            println!("invariants: VIOLATED — {v}");
            strict_failures.push(format!("invariant `{}` violated", v.invariant));
        }
        None => println!(
            "invariants: ok ({} records audited)",
            monitor.records_seen()
        ),
    }

    // 5. Per-message Perfetto flow trace next to the dump.
    let flow = path.with_extension("flow.trace.json");
    match write_flow_trace(&flow, &spans) {
        Ok(()) => println!("flow trace: {}", flow.display()),
        Err(e) => fail(&format!("write {}: {e}", flow.display())),
    }

    if strict && !strict_failures.is_empty() {
        fail(&format!("--strict: {}", strict_failures.join("; ")));
    }
    println!("obs_analyze: ok");
}
