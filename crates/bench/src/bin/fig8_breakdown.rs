//! Figure 8: execution-time breakdown (computation vs communication) of
//! CG class A and BT class B for the three MPI implementations.
//!
//! Paper anchors: identical computation times across implementations;
//! CG-A communication explodes under V1/V2 (logging overhead on small
//! messages, V1 a bit better than V2 there); BT-B communication is *best*
//! under V2 (full duplex). "MPICH-V2 requires much less reliable nodes
//! than MPICH-V1 (1 versus 9 for 32 computing nodes)."

use mvr_bench::{print_table, write_json};
use mvr_simnet::{simulate, ClusterConfig, Protocol};
use mvr_workloads::nas::{traces, Class, NasBenchmark};
use serde::Serialize;

#[derive(Serialize)]
struct Part {
    bench: &'static str,
    procs: usize,
    protocol: &'static str,
    compute_s: f64,
    comm_s: f64,
    total_s: f64,
    reliable_nodes: usize,
}

/// Reliable-node count per the paper's deployments: V1 used N/4 Channel
/// Memories (+1 for the dispatcher/EL side); V2 and P4 use 1.
fn reliable_nodes(proto: Protocol, p: usize) -> usize {
    match proto {
        Protocol::V1 => p / 4 + 1,
        _ => 1,
    }
}

fn main() {
    let cases = [
        (NasBenchmark::CG, Class::A, 8usize),
        (NasBenchmark::BT, Class::B, 9usize),
    ];
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (bench, class, p) in cases {
        for proto in Protocol::all() {
            let cfg = ClusterConfig::paper_cluster(proto, p);
            let rep = simulate(cfg, traces(bench, class, p));
            // Per-rank averages (the paper plots per-run stacked bars).
            let compute = rep.compute_seconds() / p as f64;
            let comm = rep.comm_seconds() / p as f64;
            let part = Part {
                bench: bench.name(),
                procs: p,
                protocol: proto.label(),
                compute_s: compute,
                comm_s: comm,
                total_s: rep.seconds(),
                reliable_nodes: reliable_nodes(proto, p),
            };
            rows.push(vec![
                format!("{}-{} p={}", part.bench, class.name(), p),
                part.protocol.to_string(),
                format!("{:.1}", part.compute_s),
                format!("{:.1}", part.comm_s),
                format!("{:.1}", part.total_s),
                part.reliable_nodes.to_string(),
            ]);
            out.push(part);
        }
    }
    print_table(
        "Figure 8 — execution-time breakdown (s/rank)",
        &["case", "impl", "compute", "comm", "total", "reliable nodes"],
        &rows,
    );
    println!(
        "\nexpected: compute equal across impls; CG-A comm explodes for V1/V2 \
         (V1 < V2 there); BT-B comm best under V2; V1 needs ~N/4 reliable nodes"
    );
    write_json("fig8_breakdown", &out);
}
