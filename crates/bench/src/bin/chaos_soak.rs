//! Crash-storm soak harness: N seeded chaos scenarios against the live
//! runtime, asserting exactly-once delivery and bit-exact final payloads
//! under randomized (but fully replayable) kill schedules.
//!
//! Every scenario is `pattern × storm × seed`: a communication pattern
//! (ring exchange, pipeline stream, any-source fan-in), a storm preset
//! (fault rate / burst / re-kill / checkpoint-server-kill mix), and an
//! RNG seed. The whole fault schedule — kill times, victims, bursts,
//! re-kills during replay, CS kills mid-checkpoint, per-link jitter — is
//! a pure function of the printed seed, so any failure is reproducible
//! by rerunning with that seed.
//!
//! `--smoke` runs the CI subset; the full sweep is 30 scenarios.
//! `--proc-storm` adds the multi-process preset: the same seeded storm
//! plans delivered as **real SIGKILLs** to real OS processes over the
//! TCP socket backend (this binary re-executes itself as the children).
//! Output: a text table plus `results/BENCH_chaos.json`.

use mvr_bench::{print_table, write_json};
use mvr_core::{Payload, Rank};
use mvr_mpi::{MpiResult, Source, Tag};
use mvr_obs::{ProtoEvent, RecorderConfig, TimingSummary, DISPATCHER_RANK};
use mvr_runtime::proc::{maybe_run_child, run_proc, ProcOptions};
use mvr_runtime::{
    ChaosConfig, Cluster, ClusterConfig, NodeMpi, RunReport, SchedulerConfig, TurbulenceConfig,
};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORLD: u32 = 4;
const TIMEOUT: Duration = Duration::from_secs(60);

// ---------------------------------------------------------------------
// Communication patterns (deterministic, closed-form expected results)
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pattern {
    /// Symmetric neighbor exchange: every rank sendrecvs around a ring.
    Ring,
    /// Pipeline: rank 0 produces, middle ranks transform and forward.
    Stream,
    /// Fan-in with `Source::Any`: nondeterministic reception order at the
    /// root — the protocol's event-logging core under maximal stress.
    Fanin,
}

impl Pattern {
    fn name(self) -> &'static str {
        match self {
            Pattern::Ring => "ring",
            Pattern::Stream => "stream",
            Pattern::Fanin => "fanin",
        }
    }
}

#[derive(Clone, Serialize, Deserialize)]
struct IterState {
    iter: u32,
    acc: u64,
}

fn ring_app(iters: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let mut st: IterState = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).expect("valid state"),
            None => IterState { iter: 0, acc: 0 },
        };
        let me = mpi.rank().0;
        let n = mpi.size();
        let next = Rank((me + 1) % n);
        let prev = Rank((me + n - 1) % n);
        while st.iter < iters {
            let token = ((st.iter as u64) << 32) | me as u64;
            let (_, _, body) = mpi.sendrecv(
                next,
                7,
                &token.to_le_bytes(),
                Source::Rank(prev),
                Tag::Value(7),
            )?;
            let v = u64::from_le_bytes(body.as_slice().try_into().expect("8 bytes"));
            st.acc = st.acc.wrapping_mul(31).wrapping_add(v);
            st.iter += 1;
            mpi.checkpoint_site(&bincode::serialize(&st).expect("serializable"))?;
        }
        Ok(Payload::from_vec(st.acc.to_le_bytes().to_vec()))
    }
}

fn expected_ring(me: u32, n: u32, iters: u32) -> u64 {
    let prev = (me + n - 1) % n;
    let mut acc: u64 = 0;
    for i in 0..iters {
        acc = acc
            .wrapping_mul(31)
            .wrapping_add(((i as u64) << 32) | prev as u64);
    }
    acc
}

fn stream_app(msgs: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let mut st: IterState = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).expect("valid state"),
            None => IterState { iter: 0, acc: 0 },
        };
        let me = mpi.rank().0;
        let n = mpi.size();
        while st.iter < msgs {
            let w = if me == 0 {
                let w = st.iter as u64;
                mpi.send(Rank(1), 5, &w.to_le_bytes())?;
                w
            } else {
                let (_, _, body) = mpi.recv(Source::Rank(Rank(me - 1)), Tag::Value(5))?;
                let v = u64::from_le_bytes(body.as_slice().try_into().expect("8 bytes"));
                let w = v.wrapping_mul(31).wrapping_add(me as u64);
                if me + 1 < n {
                    mpi.send(Rank(me + 1), 5, &w.to_le_bytes())?;
                }
                w
            };
            st.acc = st.acc.wrapping_mul(131).wrapping_add(w);
            st.iter += 1;
            mpi.checkpoint_site(&bincode::serialize(&st).expect("serializable"))?;
        }
        Ok(Payload::from_vec(st.acc.to_le_bytes().to_vec()))
    }
}

fn expected_stream(me: u32, msgs: u32) -> u64 {
    let mut acc: u64 = 0;
    for i in 0..msgs {
        let mut w = i as u64;
        for r in 1..=me {
            w = w.wrapping_mul(31).wrapping_add(r as u64);
        }
        acc = acc.wrapping_mul(131).wrapping_add(w);
    }
    acc
}

fn fanin_app(msgs_per_rank: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let me = mpi.rank();
        let n = mpi.size();
        if me == Rank(0) {
            let (mut got, mut sum): (u32, u64) = match &restored {
                Some(p) => bincode::deserialize(p.as_slice()).expect("valid state"),
                None => (0, 0),
            };
            let total = (n - 1) * msgs_per_rank;
            while got < total {
                let _ = mpi.iprobe(Source::Any, Tag::Any)?;
                let (_, _, body) = mpi.recv(Source::Any, Tag::Any)?;
                sum = sum.wrapping_add(u64::from_le_bytes(body.as_slice().try_into().expect("8")));
                got += 1;
                mpi.checkpoint_site(&bincode::serialize(&(got, sum)).expect("serializable"))?;
            }
            Ok(Payload::from_vec(sum.to_le_bytes().to_vec()))
        } else {
            let mut i: u32 = match &restored {
                Some(p) => bincode::deserialize(p.as_slice()).expect("valid state"),
                None => 0,
            };
            while i < msgs_per_rank {
                let v = (me.0 as u64) * 1000 + i as u64;
                mpi.send(Rank(0), 3, &v.to_le_bytes())?;
                i += 1;
                mpi.checkpoint_site(&bincode::serialize(&i).expect("serializable"))?;
            }
            Ok(Payload::empty())
        }
    }
}

fn expected_fanin_sum(n: u32, msgs: u32) -> u64 {
    let mut sum = 0u64;
    for r in 1..n {
        for i in 0..msgs {
            sum = sum.wrapping_add(r as u64 * 1000 + i as u64);
        }
    }
    sum
}

fn verify(pattern: Pattern, results: &[Payload]) -> Result<(), String> {
    let n = WORLD;
    match pattern {
        Pattern::Ring => {
            for (r, p) in results.iter().enumerate() {
                let got = u64::from_le_bytes(p.as_slice().try_into().map_err(|_| "bad len")?);
                let want = expected_ring(r as u32, n, RING_ITERS);
                if got != want {
                    return Err(format!("rank {r}: got {got:#x}, want {want:#x}"));
                }
            }
        }
        Pattern::Stream => {
            for (r, p) in results.iter().enumerate() {
                let got = u64::from_le_bytes(p.as_slice().try_into().map_err(|_| "bad len")?);
                let want = expected_stream(r as u32, STREAM_MSGS);
                if got != want {
                    return Err(format!("rank {r}: got {got:#x}, want {want:#x}"));
                }
            }
        }
        Pattern::Fanin => {
            let got = u64::from_le_bytes(results[0].as_slice().try_into().map_err(|_| "bad len")?);
            let want = expected_fanin_sum(n, FANIN_MSGS);
            if got != want {
                return Err(format!("root sum: got {got}, want {want}"));
            }
            for (r, p) in results.iter().enumerate().skip(1) {
                if !p.as_slice().is_empty() {
                    return Err(format!("rank {r}: expected empty payload"));
                }
            }
        }
    }
    Ok(())
}

const RING_ITERS: u32 = 300;
const STREAM_MSGS: u32 = 400;
const FANIN_MSGS: u32 = 120;

// ---------------------------------------------------------------------
// Storm presets
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
struct Storm {
    name: &'static str,
    kills: u32,
    max_burst: u32,
    rekill_pct: u8,
    cs_kill_pct: u8,
    /// Chance each kill event also SIGKILLs an event-logger replica.
    /// Non-zero storms run on a sharded, replicated EL deployment
    /// (`EL_SHARDS` x `EL_REPLICAS`) so quorum failover is what masks
    /// the loss.
    el_kill_pct: u8,
}

/// EL topology for storms that kill replicas (quorum of 2 per shard).
const EL_SHARDS: u32 = 2;
const EL_REPLICAS: u32 = 2;

const STORMS: &[Storm] = &[
    // A handful of isolated faults.
    Storm {
        name: "light",
        kills: 3,
        max_burst: 1,
        rekill_pct: 0,
        cs_kill_pct: 0,
        el_kill_pct: 0,
    },
    // Overlapping multi-rank crashes (concurrent recoveries).
    Storm {
        name: "bursty",
        kills: 5,
        max_burst: 2,
        rekill_pct: 20,
        cs_kill_pct: 0,
        el_kill_pct: 0,
    },
    // Aggressive re-kills: reincarnations die again mid-replay.
    Storm {
        name: "rekill",
        kills: 5,
        max_burst: 1,
        rekill_pct: 80,
        cs_kill_pct: 0,
        el_kill_pct: 0,
    },
    // Checkpoint-server kills mid-checkpoint traffic (§4.3).
    Storm {
        name: "cs-storm",
        kills: 4,
        max_burst: 2,
        rekill_pct: 30,
        cs_kill_pct: 50,
        el_kill_pct: 0,
    },
    // Event-logger replica kills on a sharded, replicated deployment:
    // the gate must ride out sub-quorum windows until revival.
    Storm {
        name: "el-storm",
        kills: 3,
        max_burst: 1,
        rekill_pct: 20,
        cs_kill_pct: 0,
        el_kill_pct: 75,
    },
];

fn storm_chaos(storm: &Storm, seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        kills: storm.kills,
        max_burst: storm.max_burst,
        rekill_pct: storm.rekill_pct,
        cs_kill_pct: storm.cs_kill_pct,
        el_kill_pct: storm.el_kill_pct,
        el_total: if storm.el_kill_pct > 0 {
            EL_SHARDS * EL_REPLICAS
        } else {
            0
        },
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

#[derive(Serialize)]
struct ScenarioResult {
    scenario: String,
    pattern: &'static str,
    storm: &'static str,
    seed: u64,
    world: u32,
    passed: bool,
    error: Option<String>,
    wall_ms: f64,
    restarts: u64,
    service_restarts: u64,
    rank_kills: u64,
    cs_kills: u64,
    el_kills: u64,
    recoveries: u64,
    replays_completed: u64,
    replayed_deliveries: u64,
    duplicates_dropped: u64,
    retransmissions: u64,
    timings: TimingSummary,
}

fn run_scenario(pattern: Pattern, storm: &Storm, seed: u64, dump_ok: bool) -> ScenarioResult {
    // One dump dir per scenario: a failure leaves its merged timeline
    // (JSONL + Chrome trace + triage note) here.
    let dump_dir = PathBuf::from("chaos_dumps").join(format!(
        "soak-{}-{}-{seed:x}",
        pattern.name(),
        storm.name
    ));
    let (el_shards, el_replicas) = if storm.el_kill_pct > 0 {
        (EL_SHARDS, EL_REPLICAS)
    } else {
        (1, 1)
    };
    let cfg = ClusterConfig {
        world: WORLD,
        el_shards,
        el_replicas,
        checkpointing: Some(SchedulerConfig {
            interval: Duration::from_millis(1),
            ..Default::default()
        }),
        chaos: Some(storm_chaos(storm, seed)),
        // Seeded per-link jitter rides along in every scenario.
        turbulence: Some(TurbulenceConfig::delays(seed ^ 0x7A17, 50)),
        obs: RecorderConfig::enabled(),
        obs_dump_dir: Some(dump_dir.clone()),
        ..Default::default()
    };
    let start = Instant::now();
    let cluster = match pattern {
        Pattern::Ring => Cluster::launch(cfg, ring_app(RING_ITERS)),
        Pattern::Stream => Cluster::launch(cfg, stream_app(STREAM_MSGS)),
        Pattern::Fanin => Cluster::launch(cfg, fanin_app(FANIN_MSGS)),
    };
    // Payload divergence is detected here after the dispatcher has torn
    // down; keep the recorders alive so a mismatch can still dump.
    let hub = cluster.recorder_hub();
    let outcome: Result<RunReport, String> =
        cluster.wait_report(TIMEOUT).map_err(|e| e.to_string());
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let scenario = format!("{}/{}/seed={seed:#x}", pattern.name(), storm.name);
    let (passed, error, report) = match outcome {
        Ok(report) => match verify(pattern, &report.results) {
            Ok(()) => {
                // `--dump` leaves the timeline of *successful* runs too,
                // for offline span/critical-path analysis (obs_analyze).
                if dump_ok {
                    match hub.dump(&dump_dir, "soak") {
                        Ok(paths) => println!("  dumped: {}", paths.jsonl.display()),
                        Err(io) => eprintln!("  flight-recorder dump failed: {io}"),
                    }
                }
                (true, None, Some(report))
            }
            Err(e) => {
                let detail = format!("payload mismatch: {e}");
                hub.recorder(DISPATCHER_RANK).record(
                    0,
                    ProtoEvent::Divergence {
                        detail: detail.clone(),
                    },
                );
                let note = match hub.dump(&dump_dir, "divergence") {
                    Ok(paths) => format!(" [{}]", paths.summary()),
                    Err(io) => format!(" [flight-recorder dump failed: {io}]"),
                };
                (false, Some(format!("{detail}{note}")), Some(report))
            }
        },
        // The dispatcher dumped the timeline on its way out (obs_dump_dir).
        Err(e) => (
            false,
            Some(format!("{e} [flight recorder: {}]", dump_dir.display())),
            None,
        ),
    };
    let chaos = report.as_ref().and_then(|r| r.chaos.clone());
    ScenarioResult {
        scenario,
        pattern: pattern.name(),
        storm: storm.name,
        seed,
        world: WORLD,
        passed,
        error,
        wall_ms,
        restarts: report.as_ref().map_or(0, |r| r.restarts),
        service_restarts: report.as_ref().map_or(0, |r| r.service_restarts),
        rank_kills: chaos.as_ref().map_or(0, |c| c.rank_kills),
        cs_kills: chaos.as_ref().map_or(0, |c| c.cs_kills),
        el_kills: chaos.as_ref().map_or(0, |c| c.el_kills),
        recoveries: report.as_ref().map_or(0, |r| r.recoveries),
        replays_completed: report.as_ref().map_or(0, |r| r.replays_completed),
        replayed_deliveries: report.as_ref().map_or(0, |r| r.replayed_deliveries),
        duplicates_dropped: report.as_ref().map_or(0, |r| r.duplicates_dropped),
        retransmissions: report.as_ref().map_or(0, |r| r.retransmissions),
        timings: report
            .as_ref()
            .map(|r| r.timings.summary())
            .unwrap_or_default(),
    }
}

// ---------------------------------------------------------------------
// Multi-process preset: the same storm planning, delivered as real
// SIGKILLs to real OS processes over the TCP socket backend.
// ---------------------------------------------------------------------

const PROC_ITERS: u32 = 120;
const PROC_EL_REPLICAS: u32 = 3;

/// Storm plan for the process preset. Gaps are stretched relative to
/// the in-process storms — real processes take tens of milliseconds to
/// boot, and the interesting kills are the mid-stream ones. Still a
/// pure function of the seed: rerunning replays the identical SIGKILL
/// schedule.
fn proc_storm_chaos(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        kills: 2,
        min_gap: Duration::from_millis(30),
        max_gap: Duration::from_millis(120),
        max_burst: 1,
        rekill_pct: 0,
        cs_kill_pct: 25,
        el_kill_pct: 50,
        el_total: PROC_EL_REPLICAS,
    }
}

fn run_proc_scenario(seed: u64) -> ScenarioResult {
    let chaos = proc_storm_chaos(seed);
    // The plan is pure: count what the storm will do before running it.
    let plan = chaos.plan(WORLD);
    let rank_kills: u64 = plan.iter().map(|e| e.victims.len() as u64).sum();
    let cs_kills = plan.iter().filter(|e| e.kill_checkpoint_server).count() as u64;
    let el_kills = plan.iter().filter(|e| e.kill_el_replica.is_some()).count() as u64;

    let mut opts = ProcOptions::new(WORLD, format!("soak-ring {PROC_ITERS}"));
    opts.el_shards = 1;
    opts.el_replicas = PROC_EL_REPLICAS;
    opts.timeout = TIMEOUT;
    opts.chaos = Some(chaos);

    let start = Instant::now();
    let outcome = run_proc(opts);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let scenario = format!("ring/proc-storm/seed={seed:#x}");
    let (passed, error, restarts, service_restarts) = match outcome {
        Ok(report) => {
            let mut verdict = Ok(());
            for (r, p) in report.results.iter().enumerate() {
                let got = p
                    .as_slice()
                    .try_into()
                    .map(u64::from_le_bytes)
                    .map_err(|_| format!("rank {r}: bad payload length"));
                let want = expected_ring(r as u32, WORLD, PROC_ITERS);
                match got {
                    Ok(g) if g == want => {}
                    Ok(g) => {
                        verdict = Err(format!("rank {r}: got {g:#x}, want {want:#x}"));
                        break;
                    }
                    Err(e) => {
                        verdict = Err(e);
                        break;
                    }
                }
            }
            if verdict.is_ok() && !report.violations.is_empty() {
                verdict = Err(format!("violations: {:?}", report.violations));
            }
            (
                verdict.is_ok(),
                verdict.err(),
                report.restarts as u64,
                report.service_restarts as u64,
            )
        }
        Err(e) => (false, Some(e.to_string()), 0, 0),
    };
    ScenarioResult {
        scenario,
        pattern: "ring",
        storm: "proc-storm",
        seed,
        world: WORLD,
        passed,
        error,
        wall_ms,
        restarts,
        service_restarts,
        rank_kills,
        cs_kills,
        el_kills,
        recoveries: restarts,
        replays_completed: 0,
        replayed_deliveries: 0,
        duplicates_dropped: 0,
        retransmissions: 0,
        timings: TimingSummary::default(),
    }
}

fn table_row(r: &ScenarioResult) -> Vec<String> {
    vec![
        r.pattern.to_string(),
        r.storm.to_string(),
        format!("{:#x}", r.seed),
        r.rank_kills.to_string(),
        r.cs_kills.to_string(),
        r.el_kills.to_string(),
        r.restarts.to_string(),
        r.replays_completed.to_string(),
        r.replayed_deliveries.to_string(),
        r.duplicates_dropped.to_string(),
        r.retransmissions.to_string(),
        format!("{:.0}", r.wall_ms),
        if r.passed { "ok" } else { "FAIL" }.to_string(),
    ]
}

fn main() {
    // Re-entry point for the process preset's children: every rank, EL
    // replica and checkpoint server of a `--proc-storm` run is this
    // same binary.
    if maybe_run_child(&|spec: &str| {
        let mut it = spec.split_whitespace();
        match it.next() {
            Some("soak-ring") => {
                let iters: u32 = it.next()?.parse().ok()?;
                Some(Arc::new(ring_app(iters)) as Arc<dyn mvr_runtime::MpiApp>)
            }
            _ => None,
        }
    }) {
        return;
    }

    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--quick");
    let dump_ok = std::env::args().any(|a| a == "--dump");
    let proc_storm = std::env::args().any(|a| a == "--proc-storm");
    let patterns = [Pattern::Ring, Pattern::Stream, Pattern::Fanin];
    let seeds: &[u64] = if smoke {
        &[0xC0FFEE]
    } else {
        &[0xC0FFEE, 0xBEEF]
    };

    let mut scenarios: Vec<(Pattern, &Storm, u64)> = Vec::new();
    for storm in STORMS {
        for &p in &patterns {
            if smoke && storm.name == "light" && p != Pattern::Ring {
                continue; // smoke: light storm once is enough
            }
            for &s in seeds {
                scenarios.push((p, storm, s));
            }
        }
    }

    println!(
        "chaos soak: {} scenarios, world={WORLD} (replay any failure with its printed seed)",
        scenarios.len()
    );
    let mut results = Vec::new();
    let mut rows = Vec::new();
    let mut failures = 0usize;
    for (p, storm, seed) in scenarios {
        let r = run_scenario(p, storm, seed, dump_ok);
        println!(
            "  [{}] {}  kills={} restarts={} replays={} dup_drop={} {:.0}ms{}",
            if r.passed { "ok" } else { "FAIL" },
            r.scenario,
            r.rank_kills,
            r.restarts,
            r.replays_completed,
            r.duplicates_dropped,
            r.wall_ms,
            r.error
                .as_deref()
                .map(|e| format!("  <-- {e}"))
                .unwrap_or_default(),
        );
        if !r.passed {
            failures += 1;
        }
        rows.push(table_row(&r));
        results.push(r);
    }

    if proc_storm {
        println!(
            "proc-storm: {} seed(s), socket backend — the storm plan lands as real SIGKILLs",
            seeds.len()
        );
        for &seed in seeds {
            let r = run_proc_scenario(seed);
            println!(
                "  [{}] {}  kills={} cs={} el={} restarts={} svc={} {:.0}ms{}",
                if r.passed { "ok" } else { "FAIL" },
                r.scenario,
                r.rank_kills,
                r.cs_kills,
                r.el_kills,
                r.restarts,
                r.service_restarts,
                r.wall_ms,
                r.error
                    .as_deref()
                    .map(|e| format!("  <-- {e}"))
                    .unwrap_or_default(),
            );
            if !r.passed {
                failures += 1;
            }
            rows.push(table_row(&r));
            results.push(r);
        }
    }

    print_table(
        "Chaos soak — seeded crash storms, exactly-once delivery verified",
        &[
            "pattern", "storm", "seed", "kills", "cs", "el", "restarts", "replays", "replayed",
            "dup-drop", "retx", "ms", "verdict",
        ],
        &rows,
    );
    write_json("BENCH_chaos", &results);

    if failures > 0 {
        eprintln!(
            "\n{failures} scenario(s) FAILED — rerun with the printed seed to replay the storm"
        );
        std::process::exit(1);
    }
    println!(
        "\nall {} scenarios verified: every payload matches the fault-free execution",
        results.len()
    );
}
