//! §4.6.2 ablation: the checkpoint-scheduling policy simulator comparing
//! round-robin, adaptive (received/sent ratio) and random policies on the
//! classical communication schemes.
//!
//! Paper anchor: "the adaptive algorithm never provides a worse
//! scheduling (w.r.t. bandwidth utilization) and often provides better
//! scheduling (up to n times better ... for asynchronous broadcast)".

use mvr_bench::{print_table, write_json};
use mvr_ckpt::{compare_all, simulate, Policy, PolicySimConfig, Scheme};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: String,
    policy: String,
    ckpt_bytes: u64,
    mean_log_bytes: u64,
    peak_log_bytes: u64,
    checkpoints: u64,
}

fn main() {
    let cfg = PolicySimConfig {
        nodes: 16,
        steps: 4_000,
        msg_bytes: 5_000,
        state_bytes: 2_000,
        ckpt_bandwidth: 100_000,
        seed: 7,
    };
    let reports = compare_all(&cfg);
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for r in &reports {
        rows.push(vec![
            format!("{:?}", r.scheme),
            format!("{:?}", r.policy),
            r.ckpt_bytes_transferred.to_string(),
            r.mean_saved_bytes.to_string(),
            r.peak_saved_bytes.to_string(),
            r.checkpoints.to_string(),
        ]);
        out.push(Row {
            scheme: format!("{:?}", r.scheme),
            policy: format!("{:?}", r.policy),
            ckpt_bytes: r.ckpt_bytes_transferred,
            mean_log_bytes: r.mean_saved_bytes,
            peak_log_bytes: r.peak_saved_bytes,
            checkpoints: r.checkpoints,
        });
    }
    print_table(
        "§4.6.2 — checkpoint-policy comparison (16 nodes)",
        &[
            "scheme",
            "policy",
            "ckpt bytes",
            "mean log",
            "peak log",
            "ckpts",
        ],
        &rows,
    );

    // Headline ratio: RR / adaptive bandwidth on the asynchronous
    // broadcast, as a function of n.
    println!("\nasync-broadcast bandwidth advantage (RR / adaptive checkpoint bytes):");
    for n in [4usize, 8, 16, 32] {
        let c = PolicySimConfig { nodes: n, ..cfg };
        let rr = simulate(Policy::RoundRobin, Scheme::AsyncBroadcast, &c);
        let ad = simulate(Policy::Adaptive, Scheme::AsyncBroadcast, &c);
        println!(
            "  n={n:>2}: {:.1}x",
            rr.ckpt_bytes_transferred as f64 / ad.ckpt_bytes_transferred.max(1) as f64
        );
    }
    write_json("sched_ablation", &out);
}
