//! Multi-process deployment smoke: one pinned, seeded scenario on the
//! socket backend — 4 real `mpirun`-style OS processes plus a
//! replicated event logger and a checkpoint server, with a real
//! `SIGKILL` of one rank *and* one event-logger replica mid-stream.
//!
//! The run must complete with recovery (≥1 rank reincarnation, ≥1
//! service revival), produce bit-exact ring payloads, report zero
//! invariant violations from the live monitors, and leave a merged
//! flight-recorder dump that passes the offline strict audit (schema,
//! span closure, invariants) — the same checks `obs_analyze --strict`
//! applies.
//!
//! This binary re-executes itself as the rank/EL/CS children
//! (`maybe_run_child`), exactly like `mpirun --backend socket`.

use mvr_bench::write_json;
use mvr_core::{Payload, Rank};
use mvr_mpi::{MpiResult, Source, Tag};
use mvr_obs::{parse_dump, validate_records, InvariantMonitor, SpanSet};
use mvr_runtime::proc::{maybe_run_child, run_proc, ProcOptions};
use mvr_runtime::NodeMpi;
use serde::{Deserialize, Serialize};
use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const WORLD: u32 = 4;
const ITERS: u32 = 120;

#[derive(Clone, Serialize, Deserialize)]
struct IterState {
    iter: u32,
    acc: u64,
}

/// The soak ring: sendrecv around the ring, fold the token, checkpoint
/// every iteration. Closed-form expected payload per rank.
fn ring_app(iters: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let mut st: IterState = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).expect("valid state"),
            None => IterState { iter: 0, acc: 0 },
        };
        let me = mpi.rank().0;
        let n = mpi.size();
        let next = Rank((me + 1) % n);
        let prev = Rank((me + n - 1) % n);
        while st.iter < iters {
            let token = ((st.iter as u64) << 32) | me as u64;
            let (_, _, body) = mpi.sendrecv(
                next,
                7,
                &token.to_le_bytes(),
                Source::Rank(prev),
                Tag::Value(7),
            )?;
            let v = u64::from_le_bytes(body.as_slice().try_into().expect("8 bytes"));
            st.acc = st.acc.wrapping_mul(31).wrapping_add(v);
            st.iter += 1;
            mpi.checkpoint_site(&bincode::serialize(&st).expect("serializable"))?;
        }
        Ok(Payload::from_vec(st.acc.to_le_bytes().to_vec()))
    }
}

fn expected_ring(me: u32, n: u32, iters: u32) -> u64 {
    let prev = (me + n - 1) % n;
    let mut acc: u64 = 0;
    for i in 0..iters {
        acc = acc
            .wrapping_mul(31)
            .wrapping_add(((i as u64) << 32) | prev as u64);
    }
    acc
}

fn fail(msg: &str) -> ! {
    eprintln!("proc_smoke: FAIL: {msg}");
    std::process::exit(1);
}

/// The strict offline audit over the merged dump — the checks behind
/// `obs_analyze --strict`, applied in-process.
fn strict_audit(path: &std::path::Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("read {}: {e}", path.display())));
    let (header, timeline) =
        parse_dump(&text).unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
    if let Some(h) = header {
        if h.dropped > 0 {
            fail(&format!("{} record(s) lost to ring wraparound", h.dropped));
        }
    }
    if let Err(e) = validate_records(&timeline) {
        fail(&format!("schema validation: {e}"));
    }
    let spans = SpanSet::build(&timeline);
    if !spans.orphans.is_empty() {
        fail(&format!("{} orphan span edge(s)", spans.orphans.len()));
    }
    let monitor = InvariantMonitor::new();
    monitor.observe_all(&timeline);
    if let Some(v) = monitor.violation() {
        fail(&format!("invariant `{}` violated: {v}", v.invariant));
    }
    println!(
        "proc_smoke: strict audit ok ({} records, {} spans)",
        timeline.len(),
        spans.spans.len()
    );
}

/// One plain-HTTP GET of the supervisor's health page.
fn scrape_health(addr: &str) -> Option<String> {
    let mut conn = std::net::TcpStream::connect(addr).ok()?;
    conn.set_read_timeout(Some(Duration::from_millis(500)))
        .ok()?;
    conn.write_all(b"GET / HTTP/1.0\r\n\r\n").ok()?;
    let mut raw = String::new();
    conn.read_to_string(&mut raw).ok()?;
    let (_, body) = raw.split_once("\r\n\r\n")?;
    Some(body.to_string())
}

/// Background scraper of the aggregated health endpoint: discovers the
/// ephemeral port through the address file, then polls the page until
/// told to stop, keeping the latest body. This is the live-telemetry
/// check — the series below exist only while the run is in flight.
fn spawn_health_scraper(
    addr_file: PathBuf,
    stop: Arc<AtomicBool>,
    page: Arc<Mutex<Option<(String, String)>>>,
) -> std::thread::JoinHandle<u32> {
    std::thread::spawn(move || {
        let mut scrapes = 0u32;
        let mut addr = None;
        while !stop.load(Ordering::Relaxed) {
            if addr.is_none() {
                addr = std::fs::read_to_string(&addr_file)
                    .ok()
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty());
            }
            if let Some(a) = &addr {
                if let Some(body) = scrape_health(a) {
                    scrapes += 1;
                    *page.lock().expect("page lock") = Some((a.clone(), body));
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        scrapes
    })
}

/// The mid-run health page must carry the whole aggregated story:
/// per-rank liveness, live-telemetry counters for every rank child,
/// monitor progress — and no telemetry drops anywhere.
fn check_health_page(addr: &str, body: &str) {
    println!("proc_smoke: health endpoint http://{addr}/ (mid-run scrape)");
    for r in 0..WORLD {
        if !body.contains(&format!("mvr_rank_alive{{rank=\"{r}\"}}")) {
            fail(&format!(
                "health page lacks mvr_rank_alive for rank {r}:\n{body}"
            ));
        }
        if !body.contains(&format!("mvr_telemetry_records_total{{node=\"cn{r}\"}}")) {
            fail(&format!(
                "health page lacks cn{r} telemetry series:\n{body}"
            ));
        }
    }
    if !body.contains("mvr_monitor_enabled 1") {
        fail(&format!("live monitor not running:\n{body}"));
    }
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("mvr_telemetry_dropped_total") {
            let drops: u64 = rest
                .split_whitespace()
                .last()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            if drops > 0 {
                fail(&format!("unexpected telemetry drops: {line}"));
            }
        }
    }
}

#[derive(Serialize)]
struct SmokeResult {
    world: u32,
    iters: u32,
    restarts: u32,
    service_restarts: u32,
    detections: usize,
    records_audited: bool,
    wall_ms: f64,
}

fn main() {
    // Child re-entry: rank/EL/CS processes come back through here.
    if maybe_run_child(&|spec: &str| {
        let mut it = spec.split_whitespace();
        match it.next() {
            Some("soak-ring") => {
                let iters: u32 = it.next()?.parse().ok()?;
                Some(Arc::new(ring_app(iters)) as Arc<dyn mvr_runtime::MpiApp>)
            }
            _ => None,
        }
    }) {
        return;
    }

    let obs_dir = PathBuf::from("results").join("proc_smoke_obs");
    let _ = std::fs::remove_dir_all(&obs_dir);

    let mut opts = ProcOptions::new(WORLD, format!("soak-ring {ITERS}"));
    opts.el_shards = 1;
    opts.el_replicas = 3;
    opts.timeout = Duration::from_secs(90);
    // The pinned fault plan: a rank dies mid-stream, then an EL replica
    // dies while the quorum gate is hot. Both are real SIGKILLs.
    opts.kills = vec![(Rank(1), Duration::from_millis(45))];
    opts.el_kills = vec![(2, Duration::from_millis(70))];
    opts.obs_dir = Some(obs_dir.clone());
    // Aggregated live health on an ephemeral port, discovered through
    // the address file and scraped while the run is in flight.
    std::fs::create_dir_all(&obs_dir).unwrap_or_else(|e| fail(&format!("obs dir: {e}")));
    let addr_file = obs_dir.join("health.addr");
    opts.health_addr = Some("127.0.0.1:0".into());
    opts.health_addr_file = Some(addr_file.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let page = Arc::new(Mutex::new(None));
    let scraper = spawn_health_scraper(addr_file, stop.clone(), page.clone());

    println!(
        "proc_smoke: world={WORLD}, EL 1x3, SIGKILL cn1@45ms + el2@70ms, ring {ITERS} (socket backend)"
    );
    let start = Instant::now();
    let report = match run_proc(opts) {
        Ok(r) => r,
        Err(e) => fail(&format!("deployment failed: {e}")),
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper joins");
    if scrapes == 0 {
        fail("health endpoint was never scraped mid-run");
    }
    let (addr, body) = page
        .lock()
        .expect("page lock")
        .take()
        .unwrap_or_else(|| fail("no health page captured"));
    check_health_page(&addr, &body);

    // Recovery happened and converged to the fault-free payloads.
    for (r, p) in report.results.iter().enumerate() {
        let got = u64::from_le_bytes(
            p.as_slice()
                .try_into()
                .unwrap_or_else(|_| fail(&format!("rank {r}: bad payload length"))),
        );
        let want = expected_ring(r as u32, WORLD, ITERS);
        if got != want {
            fail(&format!("rank {r}: got {got:#x}, want {want:#x}"));
        }
    }
    if report.restarts < 1 {
        fail("expected at least one rank reincarnation");
    }
    if report.service_restarts < 1 {
        fail("expected at least one EL replica revival");
    }
    if report.detections.is_empty() {
        fail("expected fail-stop detections");
    }
    if !report.violations.is_empty() {
        fail(&format!("invariant violations: {:?}", report.violations));
    }
    let Some(dump) = &report.merged_dump else {
        fail("no merged flight-recorder dump");
    };
    strict_audit(dump);
    // The live stream shipped complete: no child staged past capacity.
    for (node, snap) in &report.telemetry {
        if snap.dropped_total > 0 {
            fail(&format!(
                "{node} dropped {} telemetry record(s)",
                snap.dropped_total
            ));
        }
    }
    if let Some(merge) = &report.merge {
        println!("proc_smoke: {}", merge.skew.summary());
    }

    for (peer, cause) in &report.detections {
        println!("proc_smoke: detected loss of {peer} ({cause})");
    }
    println!(
        "proc_smoke: ok — {} rank restart(s), {} service restart(s), {:.0}ms",
        report.restarts, report.service_restarts, wall_ms
    );
    write_json(
        "BENCH_proc_smoke",
        &SmokeResult {
            world: WORLD,
            iters: ITERS,
            restarts: report.restarts,
            service_restarts: report.service_restarts,
            detections: report.detections.len(),
            records_audited: true,
            wall_ms,
        },
    );
}
