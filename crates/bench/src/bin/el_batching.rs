//! EL batching — round-trips per application message under lazy event
//! batching (this repo's optimization of the §4.5 pessimism gate).
//!
//! MPICH-V2 pays one event-logger round-trip per reception before the
//! receiver may transmit again. Lazy batching keeps that safety property
//! (the gate still closes at every delivery; a gated send forces a
//! flush) but ships the events in batches, so reception *bursts* —
//! fan-ins, streams, reduce trees — amortize the round-trip. This
//! harness sweeps the batch threshold on burst-shaped workloads and
//! reports `el_requests / msgs_delivered`: ≈1.0 for the eager baseline
//! (`el_batch_max = 1`), < 1.0 once batching engages.

use mvr_bench::{print_table, quick_mode, write_json};
use mvr_obs::HistSummary;
use mvr_simnet::{simulate, ClusterConfig, Op, Protocol, TraceBuilder};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    /// True for the self-tuning policy (`el_batch_max` is then its cap).
    adaptive: bool,
    el_batch_max: u64,
    msgs_delivered: u64,
    el_events: u64,
    el_requests: u64,
    round_trips_per_message: f64,
    makespan_s: f64,
    /// Virtual-time wait behind the pessimism gate (ns quantiles; one
    /// sample per gated send).
    gate_wait: HistSummary,
    /// Virtual-time EL ship→ack round-trip (ns quantiles; one sample per
    /// batched log request acked before the run drains — final-flush acks
    /// still in flight at termination are not sampled).
    el_ack_rtt: HistSummary,
}

/// A stream: rank 0 pushes `msgs` eager messages at rank 1, which
/// acknowledges once at the end — the pattern of a producer/consumer or
/// the leaf→root leg of a reduce.
fn stream(msgs: usize, bytes: u64) -> (&'static str, Vec<Vec<Op>>) {
    let mut a = TraceBuilder::new();
    for _ in 0..msgs {
        a.send(1, bytes);
    }
    a.recv(1);
    let mut b = TraceBuilder::new();
    for _ in 0..msgs {
        b.recv(0);
    }
    b.send(0, 0);
    ("stream", vec![a.build(), b.build()])
}

/// A fan-in: ranks 1..n each push `per_src` messages at rank 0, which
/// broadcasts a completion marker.
fn fanin(n: usize, per_src: usize, bytes: u64) -> (&'static str, Vec<Vec<Op>>) {
    let mut traces: Vec<TraceBuilder> = (0..n).map(|_| TraceBuilder::new()).collect();
    for round in 0..per_src {
        let _ = round;
        for src in 1..n {
            traces[src].send(0, bytes);
            traces[0].recv(src);
        }
    }
    for src in 1..n {
        traces[0].send(src, 0);
        traces[src].recv(0);
    }
    ("fanin", traces.into_iter().map(|t| t.build()).collect())
}

/// Ping-pong: the adversarial case — every reception is followed by a
/// gated send, so batching degenerates to per-event flushes and must not
/// hurt latency.
fn pingpong(iters: usize) -> (&'static str, Vec<Vec<Op>>) {
    let mut a = TraceBuilder::new();
    let mut b = TraceBuilder::new();
    for _ in 0..iters {
        a.send(1, 0);
        a.recv(1);
        b.recv(0);
        b.send(0, 0);
    }
    ("pingpong", vec![a.build(), b.build()])
}

fn main() {
    let quick = quick_mode();
    let (msgs, per_src, iters) = if quick {
        (128, 16, 32)
    } else {
        (1024, 64, 256)
    };
    let batch_sweep: &[u64] = &[1, 4, 16, 64];

    let workloads: Vec<(&'static str, Vec<Vec<Op>>, usize)> = vec![
        {
            let (name, t) = stream(msgs, 1000);
            (name, t, 2)
        },
        {
            let (name, t) = fanin(8, per_src, 1000);
            (name, t, 8)
        },
        {
            let (name, t) = pingpong(iters);
            (name, t, 2)
        },
    ];

    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (name, traces, nodes) in &workloads {
        let mut eager_makespan = 0;
        // The fixed-threshold sweep, then the self-tuning policy capped at
        // the sweep's largest constant — the ROADMAP claim is that it
        // matches the best hand-tuned point without picking one.
        for (adaptive, batch) in batch_sweep
            .iter()
            .map(|&b| (false, b))
            .chain([(true, *batch_sweep.last().unwrap())])
        {
            let mut cfg = ClusterConfig::paper_cluster(Protocol::V2, *nodes);
            cfg.el_batch_max = batch;
            cfg.el_batch_adaptive = adaptive;
            let rep = simulate(cfg, traces.clone());
            if batch == 1 {
                eager_makespan = rep.makespan;
            }
            let rt = rep.el_requests as f64 / rep.msgs_delivered.max(1) as f64;
            let gate_wait = rep.gate_wait.summary();
            let el_ack_rtt = rep.el_ack_rtt.summary();
            // Every batched log request lands one RTT sample, minus acks
            // still in flight when the last rank finishes (at most one
            // final-flush ack per rank).
            assert!(
                el_ack_rtt.count <= rep.el_requests
                    && rep.el_requests - el_ack_rtt.count <= *nodes as u64,
                "{name}: {} RTT samples vs {} EL requests",
                el_ack_rtt.count,
                rep.el_requests
            );
            rows.push(vec![
                name.to_string(),
                if adaptive {
                    format!("adapt≤{batch}")
                } else {
                    batch.to_string()
                },
                rep.msgs_delivered.to_string(),
                rep.el_events.to_string(),
                rep.el_requests.to_string(),
                format!("{rt:.3}"),
                format!("{:.1}", gate_wait.p50 as f64 / 1e3),
                format!("{:.1}", el_ack_rtt.p50 as f64 / 1e3),
                format!("{:.2}x", eager_makespan as f64 / rep.makespan.max(1) as f64),
            ]);
            out.push(Row {
                workload: name,
                adaptive,
                el_batch_max: batch,
                msgs_delivered: rep.msgs_delivered,
                el_events: rep.el_events,
                el_requests: rep.el_requests,
                round_trips_per_message: rt,
                makespan_s: rep.seconds(),
                gate_wait,
                el_ack_rtt,
            });
        }
    }

    print_table(
        "EL batching — event-logger round-trips per application message",
        &[
            "workload",
            "batch",
            "msgs",
            "events",
            "requests",
            "rt/msg",
            "gate_p50_us",
            "rtt_p50_us",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\nreading: eager logging (batch=1) pays ~1 EL round-trip per message; lazy\n\
         batching drops burst workloads (stream, fanin) well below 1.0 while the\n\
         adversarial ping-pong stays at 1.0 — a gated send always forces a flush,\n\
         so the pessimism guarantee (§4.1/§4.5) is unchanged."
    );
    write_json("BENCH_el_batching", &out);

    // Self-check the acceptance claims so CI fails loudly if the model
    // drifts: batched burst workloads < 1.0, eager ≈ 1.0.
    for r in &out {
        if r.el_batch_max == 1 && !r.adaptive {
            assert!(
                (r.round_trips_per_message - 1.0).abs() < 0.05,
                "{}: eager logging should be ~1.0 rt/msg, got {}",
                r.workload,
                r.round_trips_per_message
            );
        }
        if r.el_batch_max >= 16 && r.workload != "pingpong" {
            assert!(
                r.round_trips_per_message < 1.0,
                "{}: batching should amortize round-trips, got {}",
                r.workload,
                r.round_trips_per_message
            );
        }
    }
    // The self-tuning policy must track the best fixed threshold: on
    // burst workloads it amortizes like the widest constant; on the
    // adversarial ping-pong it must not regress the makespan (it narrows
    // back to per-event flushes).
    for (name, _, _) in &workloads {
        let adapt = out
            .iter()
            .find(|r| r.workload == *name && r.adaptive)
            .unwrap();
        let best_fixed = out
            .iter()
            .filter(|r| r.workload == *name && !r.adaptive)
            .map(|r| r.makespan_s)
            .fold(f64::INFINITY, f64::min);
        assert!(
            adapt.makespan_s <= best_fixed * 1.10,
            "{name}: adaptive makespan {:.4}s vs best fixed {:.4}s",
            adapt.makespan_s,
            best_fixed
        );
        if *name != "pingpong" {
            assert!(
                adapt.round_trips_per_message < 1.0,
                "{name}: adaptive batching should amortize round-trips, got {}",
                adapt.round_trips_per_message
            );
        }
    }
}
