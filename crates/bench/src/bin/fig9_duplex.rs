//! Figure 9: bandwidth of the synthetic BT/SP-like pattern (10 ISend +
//! 10 IRecv + Waitall, both directions at once), MPICH-P4 vs MPICH-V2.
//!
//! Paper anchor: "MPICH-V2 performs better for non-blocking
//! communications than MPICH-P4, reaching twice the P4 bandwidth for
//! 64Kbytes messages" (full-duplex driver), with P4 ahead at small sizes
//! (latency-dominated).

use mvr_bench::{fmt_bytes, print_table, write_json};
use mvr_simnet::{simulate, ClusterConfig, Protocol, SEC};
use mvr_workloads::pattern9;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    bytes: u64,
    p4_mb_s: f64,
    v2_mb_s: f64,
    v2_over_p4: f64,
}

/// Aggregate pattern bandwidth: bytes moved (both directions) per second.
fn pattern_bw(protocol: Protocol, bytes: u64) -> f64 {
    let rounds = 5;
    let cfg = ClusterConfig::paper_cluster(protocol, 2);
    let rep = simulate(cfg, pattern9(rounds, bytes));
    let moved = (2 * rounds * 10) as f64 * bytes as f64;
    moved / (rep.makespan as f64 / SEC as f64) / 1e6
}

fn main() {
    let sizes: Vec<u64> = (8..=20).map(|p| 1u64 << p).collect();
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &bytes in &sizes {
        let p4 = pattern_bw(Protocol::P4, bytes);
        let v2 = pattern_bw(Protocol::V2, bytes);
        rows.push(vec![
            fmt_bytes(bytes),
            format!("{p4:.2}"),
            format!("{v2:.2}"),
            format!("{:.2}x", v2 / p4),
        ]);
        points.push(Point {
            bytes,
            p4_mb_s: p4,
            v2_mb_s: v2,
            v2_over_p4: v2 / p4,
        });
    }
    print_table(
        "Figure 9 — synthetic Isend/Irecv/Waitall pattern bandwidth (MB/s, both directions)",
        &["size", "MPICH-P4", "MPICH-V2", "V2/P4"],
        &rows,
    );
    let at64k = points
        .iter()
        .find(|p| p.bytes == 64 << 10)
        .expect("64k in sweep");
    println!(
        "\nat 64kB: V2/P4 = {:.2}x (paper: ~2x); at small sizes P4 leads (latency)",
        at64k.v2_over_p4
    );
    write_json("fig9_duplex", &points);
}
