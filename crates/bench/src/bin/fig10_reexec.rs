//! Figure 10: re-execution performance. An asynchronous token ring on 8
//! nodes; after a complete run, restart x ∈ {1..8} nodes from the
//! beginning (no checkpoints) and measure their completion time against
//! the 0-restart reference, sweeping the message size.
//!
//! Paper anchors: all restart curves sit below the reference; the
//! 1-restart curve is the lowest ("about half of the reference": only
//! the receptions are replayed); the curves converge toward (but stay
//! below) the reference as x grows (EL communication is not replayed);
//! a non-linearity appears between 64 kB and 128 kB (eager→rendezvous).

use mvr_bench::{fmt_bytes, print_table, quick_mode, write_json};
use mvr_simnet::{simulate, simulate_replay, ClusterConfig, Protocol};
use mvr_workloads::token_ring;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    bytes: u64,
    restarts: usize,
    seconds: f64,
}

fn main() {
    let n = 8usize;
    let laps = 20usize;
    let sizes: Vec<u64> = if quick_mode() {
        vec![1 << 10, 16 << 10, 64 << 10, 256 << 10]
    } else {
        (10..=18).map(|p| 1u64 << p).collect() // 1 kB .. 256 kB
    };
    let restart_counts = [0usize, 1, 2, 4, 8];
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &bytes in &sizes {
        let traces = token_ring(n, laps, bytes);
        let mut row = vec![fmt_bytes(bytes)];
        for &x in &restart_counts {
            let cfg = ClusterConfig::paper_cluster(Protocol::V2, n);
            let secs = if x == 0 {
                simulate(cfg, traces.clone()).seconds()
            } else {
                let restarted: Vec<usize> = (0..x).collect();
                simulate_replay(cfg, traces.clone(), &restarted).seconds()
            };
            row.push(format!("{secs:.3}"));
            points.push(Point {
                bytes,
                restarts: x,
                seconds: secs,
            });
        }
        rows.push(row);
    }
    print_table(
        "Figure 10 — token-ring re-execution time (s) vs message size",
        &[
            "size",
            "0-restart",
            "1-restart",
            "2-restart",
            "4-restart",
            "8-restart",
        ],
        &rows,
    );
    println!(
        "\nexpected: every x-restart curve below the reference; 1-restart lowest; \
         8-restart just below the reference; eager→rendezvous kink past 128kB"
    );
    write_json("fig10_reexec", &points);
}
