//! Figure 5: ping-pong bandwidth vs message size for MPICH-P4, MPICH-V1
//! and MPICH-V2.
//!
//! Paper anchors: P4 peaks at 11.3 MB/s, V2 at 10.7 MB/s ("slightly
//! slower ... but remains always close"), V1 "down to two times slower"
//! (every byte store-and-forwarded through a Channel Memory).

use mvr_bench::{fmt_bytes, print_table, quick_mode, write_json};
use mvr_simnet::{simulate, ClusterConfig, Protocol, SEC};
use mvr_workloads::pingpong;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    bytes: u64,
    protocol: &'static str,
    bandwidth_mb_s: f64,
}

fn bandwidth(protocol: Protocol, bytes: u64) -> f64 {
    let rounds = if bytes >= (1 << 20) { 5 } else { 20 };
    let cfg = ClusterConfig::paper_cluster(protocol, 2);
    let rep = simulate(cfg, pingpong(rounds, bytes));
    let one_way_s = rep.makespan as f64 / (2.0 * rounds as f64) / SEC as f64;
    bytes as f64 / one_way_s / 1e6
}

fn main() {
    let max_pow = if quick_mode() { 20 } else { 23 };
    let sizes: Vec<u64> = (6..=max_pow).map(|p| 1u64 << p).collect();
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &bytes in &sizes {
        let mut row = vec![fmt_bytes(bytes)];
        for proto in Protocol::all() {
            let bw = bandwidth(proto, bytes);
            row.push(format!("{bw:.2}"));
            points.push(Point {
                bytes,
                protocol: proto.label(),
                bandwidth_mb_s: bw,
            });
        }
        rows.push(row);
    }
    print_table(
        "Figure 5 — ping-pong bandwidth (MB/s)",
        &["size", "MPICH-P4", "MPICH-V1", "MPICH-V2"],
        &rows,
    );
    let p4_peak = bandwidth(Protocol::P4, 4 << 20);
    let v2_peak = bandwidth(Protocol::V2, 4 << 20);
    let v1_peak = bandwidth(Protocol::V1, 4 << 20);
    println!(
        "\npeaks: P4 {p4_peak:.1} MB/s (paper: 11.3), V2 {v2_peak:.1} (paper: 10.7), \
         V1 {v1_peak:.1} (paper: ~half of P4)"
    );
    write_json("fig5_bandwidth", &points);
}
