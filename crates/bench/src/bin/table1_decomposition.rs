//! Table 1: time spent inside MPI_(I)send / MPI_Irecv / MPI_Wait for the
//! BT-A-9 and CG-A-8 benchmarks, MPICH-P4 vs MPICH-V2.
//!
//! Paper anchors (seconds): BT A 9 — P4: Isend 44.9, Wait 4, total 49.2;
//! V2: Isend 3.4, Wait 17.5, total 21.2 (V2 posts a notification in
//! ISend and transmits under Wait, and wins overall on BT). CG A 8 —
//! P4 total 5.1 vs V2 14.4 (the factor-~3 communication blowup).

use mvr_bench::{print_table, write_json};
use mvr_simnet::{as_secs_f64, simulate, ClusterConfig, Protocol};
use mvr_workloads::nas::{traces, Class, NasBenchmark};
use serde::Serialize;

#[derive(Serialize)]
struct Decomp {
    case: String,
    protocol: &'static str,
    isend_s: f64,
    irecv_s: f64,
    wait_s: f64,
    send_recv_s: f64,
    total_comm_s: f64,
}

fn main() {
    let cases = [
        (NasBenchmark::BT, Class::A, 9usize),
        (NasBenchmark::CG, Class::A, 8usize),
    ];
    let mut out = Vec::new();
    for (bench, class, p) in cases {
        for proto in [Protocol::P4, Protocol::V2] {
            let cfg = ClusterConfig::paper_cluster(proto, p);
            let rep = simulate(cfg, traces(bench, class, p));
            // Per-rank averages, matching the per-process numbers of the
            // paper's table.
            let n = p as f64;
            let isend = as_secs_f64(rep.per_rank.iter().map(|r| r.isend).sum::<u64>()) / n;
            let irecv = as_secs_f64(rep.per_rank.iter().map(|r| r.irecv).sum::<u64>()) / n;
            let wait = as_secs_f64(rep.per_rank.iter().map(|r| r.wait).sum::<u64>()) / n;
            let sr = as_secs_f64(rep.per_rank.iter().map(|r| r.send + r.recv).sum::<u64>()) / n;
            out.push(Decomp {
                case: format!("{} {} {}", bench.name(), class.name(), p),
                protocol: proto.label(),
                isend_s: isend,
                irecv_s: irecv,
                wait_s: wait,
                send_recv_s: sr,
                total_comm_s: isend + irecv + wait + sr,
            });
        }
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|d| {
            vec![
                d.case.clone(),
                d.protocol.to_string(),
                format!("{:.2}", d.isend_s),
                format!("{:.4}", d.irecv_s),
                format!("{:.2}", d.wait_s),
                format!("{:.2}", d.send_recv_s),
                format!("{:.2}", d.total_comm_s),
            ]
        })
        .collect();
    print_table(
        "Table 1 — MPI communication-function decomposition (s/rank)",
        &[
            "case",
            "impl",
            "MPI_(I)send",
            "MPI_Irecv",
            "MPI_Wait",
            "Send/Recv",
            "total",
        ],
        &rows,
    );
    println!(
        "\nexpected: P4 pays in ISend (payload pushed in the call), V2 pays in Wait; \
         V2 total lower for BT, ~3x higher for CG"
    );
    write_json("table1_decomposition", &out);
}
