//! Debug-build bug hunter: loops a short stream pipeline under a
//! high-rekill crash storm plus link turbulence, a fresh seed per
//! iteration, verifying bit-exact results every time. Run it from a
//! *debug* build (the engine's exactly-once `debug_assert`s fire at the
//! exact corruption point) and run several instances in parallel — the
//! deep incarnation races only surface under scheduler load.
//!
//!     cargo build --workspace
//!     for j in 1 2 3 4 5; do ./target/debug/chaos_hunt 150 $j & done; wait
//!
//! `chaos_hunt <iters> <base>` derives seed `base*1_000_003 + i`; with
//! `iters == 1`, `base` is the exact seed to replay (as printed by a
//! failure). Flight recorders run throughout: any failure — cluster
//! error or payload mismatch — dumps the merged clock-ordered timeline
//! (JSONL + Chrome trace + triage note) into `chaos_dumps/hunt-<base>/`
//! and prints the paths. `MVR_ENGINE_TRACE=1` additionally mirrors every
//! record to stderr as it happens. Complements the release-build
//! `chaos_soak` scenario suite.
//!
//! Triage: a *timeout* whose dump shows live threads and small restart
//! counts, on a machine oversubscribed well beyond the 5-hunter load,
//! is usually the 120 s budget expiring on a slow-but-progressing debug
//! run — replay the printed seed on a quiet machine before digging. A
//! wrong result, a protocol error, or a replayable timeout is always a
//! real bug.

use mvr_core::{Payload, Rank};
use mvr_mpi::{MpiResult, Source, Tag};
use mvr_obs::{ProtoEvent, RecorderConfig, DISPATCHER_RANK};
use mvr_runtime::{
    ChaosConfig, Cluster, ClusterConfig, NodeMpi, SchedulerConfig, TurbulenceConfig,
};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Duration;

const WORLD: u32 = 4;
const MSGS: u32 = 160;

#[derive(Clone, Serialize, Deserialize)]
struct IterState {
    iter: u32,
    acc: u64,
}

fn stream_app(msgs: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let mut st: IterState = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).expect("valid state"),
            None => IterState { iter: 0, acc: 0 },
        };
        let me = mpi.rank().0;
        let n = mpi.size();
        while st.iter < msgs {
            let w = if me == 0 {
                let w = st.iter as u64;
                mpi.send(Rank(1), 5, &w.to_le_bytes())?;
                w
            } else {
                let (_, _, body) = mpi.recv(Source::Rank(Rank(me - 1)), Tag::Value(5))?;
                let v = u64::from_le_bytes(body.as_slice().try_into().expect("8 bytes"));
                let w = v.wrapping_mul(31).wrapping_add(me as u64);
                if me + 1 < n {
                    mpi.send(Rank(me + 1), 5, &w.to_le_bytes())?;
                }
                w
            };
            st.acc = st.acc.wrapping_mul(131).wrapping_add(w);
            st.iter += 1;
            mpi.checkpoint_site(&bincode::serialize(&st).expect("serializable"))?;
        }
        Ok(Payload::from_vec(st.acc.to_le_bytes().to_vec()))
    }
}

fn expected_stream(me: u32, msgs: u32) -> u64 {
    let mut acc: u64 = 0;
    for i in 0..msgs {
        let mut w = i as u64;
        for r in 1..=me {
            w = w.wrapping_mul(31).wrapping_add(r as u64);
        }
        acc = acc.wrapping_mul(131).wrapping_add(w);
    }
    acc
}

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let base: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    // Flight recorders stay on for the whole hunt; any failure dumps the
    // merged timeline here (per-instance dir so parallel hunters don't
    // clobber each other's dumps).
    let dump_dir = PathBuf::from(format!("chaos_dumps/hunt-{base}"));
    for i in 0..iters {
        // With a single iteration, `base` is the exact seed to replay.
        let seed = if iters == 1 {
            base
        } else {
            base.wrapping_mul(1_000_003).wrapping_add(i)
        };
        let cfg = ClusterConfig {
            world: WORLD,
            checkpointing: Some(SchedulerConfig {
                interval: Duration::from_millis(1),
                ..Default::default()
            }),
            chaos: Some(ChaosConfig {
                seed,
                kills: 6,
                min_gap: Duration::from_millis(2),
                max_gap: Duration::from_millis(7),
                max_burst: 2,
                cs_kill_pct: 0,
                rekill_pct: 80,
                ..Default::default()
            }),
            turbulence: Some(TurbulenceConfig::delays(seed ^ 0x7A17, 50)),
            obs: RecorderConfig::enabled(),
            obs_dump_dir: Some(dump_dir.clone()),
            ..Default::default()
        };
        let cluster = Cluster::launch(cfg, stream_app(MSGS));
        // Keep a handle on the recorders: payload mismatches are detected
        // here, after the dispatcher is gone, and still want a timeline.
        let hub = cluster.recorder_hub();
        let report = match cluster.wait_report(Duration::from_secs(120)) {
            Ok(r) => r,
            Err(e) => {
                // The dispatcher already dumped the timeline (obs_dump_dir).
                eprintln!("seed {seed}: cluster error: {e}");
                eprintln!("triage: flight-recorder dump in {}", dump_dir.display());
                std::process::exit(1);
            }
        };
        for (r, p) in report.results.iter().enumerate() {
            let got = u64::from_le_bytes(p.as_slice().try_into().expect("8 bytes"));
            let want = expected_stream(r as u32, MSGS);
            if got != want {
                let detail = format!("seed {seed}: rank {r} got {got:#x} want {want:#x}");
                eprintln!("{detail}");
                hub.recorder(DISPATCHER_RANK)
                    .record(0, ProtoEvent::Divergence { detail });
                match hub.dump(&dump_dir, "divergence") {
                    Ok(paths) => eprintln!("triage: {}", paths.summary()),
                    Err(e) => eprintln!("triage: flight-recorder dump failed: {e}"),
                }
                std::process::exit(1);
            }
        }
        if i % 20 == 19 {
            eprintln!("  ...{} clean (last seed {seed})", i + 1);
        }
    }
    eprintln!("all {iters} iterations clean");
}
