//! End-to-end tests for the `obs_diff` binary: synthesize a dump, run
//! the real executable, and check the exit-status contract (0 clean,
//! 1 regression naming the metric, verdict JSON always written).

use mvr_obs::{write_jsonl, FlightRecord, ProtoEvent, SendDisposition};
use std::path::{Path, PathBuf};
use std::process::Command;

fn rec(rank: u32, clock: u64, ts_ns: u64, event: ProtoEvent) -> FlightRecord {
    FlightRecord {
        rank,
        clock,
        ts_ns,
        event,
    }
}

/// A small but causally connected timeline: sends, deliveries, gate
/// waits and EL acks, with `gate_scale` multiplying the gate-wait
/// durations (1 = baseline, larger = injected slowdown).
fn synthetic_timeline(gate_scale: u64) -> Vec<FlightRecord> {
    let mut t = Vec::new();
    for i in 0..20u64 {
        let base = 1_000_000 * (i + 1);
        t.push(rec(
            0,
            i + 1,
            base,
            ProtoEvent::Send {
                to: 1,
                clock: i + 1,
                bytes: 64,
                disposition: SendDisposition::Wire,
            },
        ));
        t.push(rec(
            1,
            i + 1,
            base + 120_000,
            ProtoEvent::Deliver {
                from: 0,
                sender_clock: i + 1,
                receiver_clock: i + 1,
                replay: false,
            },
        ));
        t.push(rec(
            1,
            i + 1,
            base + 200_000,
            ProtoEvent::GateOpen {
                released: 1,
                waited_ns: 50_000 * gate_scale,
            },
        ));
        t.push(rec(
            1,
            i + 1,
            base + 400_000,
            ProtoEvent::ElAck {
                up_to: i + 1,
                batches_retired: 1,
                rtt_ns: 150_000,
            },
        ));
    }
    t.sort_by_key(|r| r.ts_ns);
    t
}

fn write_dump(dir: &Path, name: &str, gate_scale: u64) -> PathBuf {
    let path = dir.join(name);
    write_jsonl(&path, &synthetic_timeline(gate_scale), 0).expect("write dump");
    path
}

fn run_obs_diff(dir: &Path, args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_obs_diff"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn obs_diff");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("obs_diff_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn self_diff_of_a_dump_is_clean_and_writes_a_verdict() {
    let dir = temp_dir("self");
    let dump = write_dump(&dir, "run.jsonl", 1);
    let dump = dump.to_str().unwrap();
    let (code, stdout, stderr) = run_obs_diff(&dir, &["--tolerance-pct", "0", dump, dump]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("obs_diff: ok"), "{stdout}");
    let verdict = std::fs::read_to_string(dir.join("obs_diff.verdict.json")).expect("verdict");
    assert!(verdict.contains("\"regressions\": []"), "{verdict}");
}

#[test]
fn injected_slowdown_exits_nonzero_naming_the_regressed_metric() {
    let dir = temp_dir("slow");
    let base = write_dump(&dir, "base.jsonl", 1);
    let slow = write_dump(&dir, "slow.jsonl", 6);
    let (code, stdout, stderr) = run_obs_diff(
        &dir,
        &[
            "--tolerance-pct",
            "100",
            base.to_str().unwrap(),
            slow.to_str().unwrap(),
        ],
    );
    assert_eq!(code, 1, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(
        stderr.contains("timing/gate_wait"),
        "regression must name the metric, stderr:\n{stderr}"
    );
    let verdict = std::fs::read_to_string(dir.join("obs_diff.verdict.json")).expect("verdict");
    assert!(verdict.contains("timing/gate_wait"), "{verdict}");
    // The same pair inside tolerance in the speedup direction stays
    // clean: timing gates are one-sided.
    let (code, stdout, stderr) = run_obs_diff(
        &dir,
        &[
            "--tolerance-pct",
            "100",
            slow.to_str().unwrap(),
            base.to_str().unwrap(),
        ],
    );
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
}

#[test]
fn write_baseline_round_trips_through_profile_json() {
    let dir = temp_dir("baseline");
    let dump = write_dump(&dir, "run.jsonl", 1);
    let profile = dir.join("baseline.json");
    let (code, stdout, stderr) = run_obs_diff(
        &dir,
        &[
            "--write-baseline",
            profile.to_str().unwrap(),
            dump.to_str().unwrap(),
        ],
    );
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    // Diffing the dump against its own reduced profile is clean even
    // at zero tolerance.
    let (code, stdout, stderr) = run_obs_diff(
        &dir,
        &[
            "--tolerance-pct",
            "0",
            profile.to_str().unwrap(),
            dump.to_str().unwrap(),
        ],
    );
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
}

#[test]
fn usage_errors_exit_two() {
    let dir = temp_dir("usage");
    let (code, _, _) = run_obs_diff(&dir, &["only-one-input"]);
    assert_eq!(code, 2);
    let (code, _, stderr) = run_obs_diff(&dir, &["missing-a.json", "missing-b.json"]);
    assert_eq!(code, 2, "stderr:\n{stderr}");
}
