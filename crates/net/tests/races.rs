//! Concurrency stress tests of the fabric: kill/register/send races must
//! never panic, never deliver to a dead incarnation, and never let a dead
//! incarnation speak.

use mvr_core::{NodeId, Rank};
use mvr_net::{Fabric, RecvError, SendError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn cn(r: u32) -> NodeId {
    NodeId::Computing(Rank(r))
}

#[test]
fn kill_register_send_race_storm() {
    let fabric = Fabric::new();
    let stop = Arc::new(AtomicBool::new(false));
    let delivered = Arc::new(AtomicU64::new(0));
    let refused = Arc::new(AtomicU64::new(0));

    // The victim node cycles through incarnations; each incarnation
    // drains its mailbox until killed.
    let victim_cycler = {
        let fabric = fabric.clone();
        let stop = stop.clone();
        let delivered = delivered.clone();
        thread::spawn(move || {
            let mut incarnations = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let (mb, _id) = fabric.register::<u64>(cn(0));
                incarnations += 1;
                loop {
                    match mb.recv_timeout(Duration::from_micros(200)) {
                        Ok(_) => {
                            delivered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(RecvError::Killed) => break,
                        Err(RecvError::Timeout) => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                    }
                }
                // Ensure the node is dead before re-registering (the
                // killer may already have done it).
                fabric.kill(cn(0));
            }
            incarnations
        })
    };

    // The killer repeatedly crashes the victim.
    let killer = {
        let fabric = fabric.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                fabric.kill(cn(0));
                thread::sleep(Duration::from_micros(300));
            }
        })
    };

    // Senders hammer the victim from several identities.
    let senders: Vec<_> = (1..=4u32)
        .map(|s| {
            let fabric = fabric.clone();
            let stop = stop.clone();
            let refused = refused.clone();
            thread::spawn(move || {
                let (_mb, id) = fabric.register::<u64>(cn(s));
                let mut sent = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match id.send(cn(0), sent) {
                        Ok(()) => sent += 1,
                        Err(SendError::Disconnected(_)) => {
                            refused.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(SendError::SenderDead) => panic!("live sender declared dead"),
                    }
                }
                sent
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    // Unblock the cycler in case it waits on a live mailbox.
    fabric.kill(cn(0));

    let incarnations = victim_cycler.join().unwrap();
    killer.join().unwrap();
    let total_sent: u64 = senders.into_iter().map(|h| h.join().unwrap()).sum();

    assert!(
        incarnations > 3,
        "victim should have reincarnated ({incarnations})"
    );
    assert!(
        total_sent > 100,
        "senders should have made progress ({total_sent})"
    );
    // Deliveries + refusals never exceed attempts (no duplication).
    let d = delivered.load(Ordering::Relaxed);
    let r = refused.load(Ordering::Relaxed);
    assert!(d <= total_sent, "delivered {d} > sent {total_sent}");
    assert!(
        d + r >= total_sent / 2,
        "accounting wildly off: {d}+{r} vs {total_sent}"
    );
}

#[test]
fn zombie_identity_is_always_fenced() {
    let fabric = Fabric::new();
    let (_mb, _live) = fabric.register::<u64>(cn(1));
    for _ in 0..50 {
        let (_mb0, zombie) = fabric.register::<u64>(cn(0));
        fabric.kill(cn(0));
        // The dead incarnation must be refused concurrently with a new
        // registration.
        let f2 = fabric.clone();
        let reg = thread::spawn(move || {
            let (_mb, id) = f2.register::<u64>(cn(0));
            id
        });
        assert_eq!(zombie.send(cn(1), 9), Err(SendError::SenderDead));
        let _new_id = reg.join().unwrap();
        assert_eq!(zombie.send(cn(1), 9), Err(SendError::SenderDead));
        fabric.kill(cn(0));
    }
}
