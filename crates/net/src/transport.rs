//! Process-boundary transport abstraction.
//!
//! The in-process [`Fabric`](crate::Fabric) gives the protocol reliable
//! FIFO channels plus disconnection-as-fault-detector. When ranks become
//! real OS processes, something has to provide those same semantics over
//! sockets. [`Transport`] is that seam: a byte-frame mesh between
//! [`NodeId`]s with an event stream that reports peer liveness
//! transitions — [`TransportEvent::PeerDown`] is the fail-stop detector
//! the supervising dispatcher maps onto the exact `RankLost` /
//! replica-dead handling it already runs for in-process kills.
//!
//! Two backends implement the trait: [`MemTransport`](crate::MemTransport)
//! (an in-memory hub, used by transport-generic tests) and
//! [`TcpTransport`](crate::TcpTransport) (length-prefixed frames over
//! real sockets, per-peer connection actors, reconnect with capped
//! exponential backoff + jitter, and read-silence/EOF fail-stop
//! detection).

use mvr_core::ids::NodeId;
use std::fmt;
use std::time::Duration;

/// Why a peer link was declared down. The cause is diagnostic only —
/// every variant triggers the same fail-stop reaction upstream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DownCause {
    /// The peer closed the connection cleanly (EOF).
    Eof,
    /// The connection died with an I/O error (reset, broken pipe, …).
    Io(String),
    /// No bytes (not even heartbeat pings) arrived within the failure
    /// window.
    ReadTimeout,
    /// Could not (re)establish a connection before the dial deadline.
    DialFailed(String),
    /// The transport itself is shutting down.
    Closed,
    /// The frame stream was corrupt (bad magic/version/checksum) — the
    /// link cannot be trusted and is treated as dead.
    Corrupt(String),
}

impl fmt::Display for DownCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DownCause::Eof => write!(f, "eof"),
            DownCause::Io(e) => write!(f, "io: {e}"),
            DownCause::ReadTimeout => write!(f, "read-timeout"),
            DownCause::DialFailed(e) => write!(f, "dial-failed: {e}"),
            DownCause::Closed => write!(f, "closed"),
            DownCause::Corrupt(e) => write!(f, "corrupt-stream: {e}"),
        }
    }
}

/// Liveness and data events surfaced by a transport.
#[derive(Clone, Debug)]
pub enum TransportEvent {
    /// A complete, checksum-verified application frame arrived.
    Frame {
        /// Sending node.
        from: NodeId,
        /// Frame payload (opaque to the transport).
        payload: Vec<u8>,
    },
    /// A peer completed its handshake and is reachable.
    PeerUp {
        /// The peer.
        peer: NodeId,
        /// Monotonic incarnation number announced in the peer's hello;
        /// a higher incarnation for a known peer means it restarted.
        incarnation: u64,
    },
    /// A peer's link failed — the fail-stop detection signal.
    PeerDown {
        /// The peer.
        peer: NodeId,
        /// The incarnation this verdict is about — the last one this
        /// endpoint observed for the peer. A supervisor that has
        /// already launched a newer incarnation must discard verdicts
        /// naming an older one: they describe a death it already
        /// handled, not a fresh failure.
        incarnation: u64,
        /// Diagnostic cause.
        cause: DownCause,
    },
}

/// Errors from [`Transport::send`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// No route is known for the destination node.
    NoRoute(NodeId),
    /// The destination's link is currently down (fail-stop detected or
    /// never established); the frame was dropped.
    PeerDown(NodeId),
    /// The transport has been shut down.
    Closed,
    /// The payload exceeds the transport's frame bound.
    Oversized {
        /// Attempted payload length.
        len: usize,
        /// Transport's maximum payload.
        max: usize,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::NoRoute(n) => write!(f, "no route to {n}"),
            TransportError::PeerDown(n) => write!(f, "peer {n} is down"),
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Oversized { len, max } => {
                write!(f, "payload {len} bytes exceeds frame bound {max}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// A byte-frame mesh between nodes with peer-liveness events.
///
/// Semantics every backend must provide:
///
/// * **FIFO per peer**: frames queued to one destination arrive in send
///   order (or not at all, if the link fails — fail-stop, no holes).
/// * **Atomicity**: a frame is delivered whole and checksum-clean or
///   never surfaced.
/// * **Detection**: loss of a peer eventually surfaces as
///   [`TransportEvent::PeerDown`]; a restarted peer re-announces with a
///   higher incarnation and surfaces as `PeerDown` (old) then
///   [`TransportEvent::PeerUp`] (new).
pub trait Transport: Send + Sync {
    /// The node this transport endpoint speaks for.
    fn local_node(&self) -> NodeId;

    /// The address peers should dial to reach this endpoint (e.g.
    /// `127.0.0.1:41712`), if the backend has one.
    fn local_addr(&self) -> Option<String>;

    /// Install or replace the dial route for `peer`. For backends
    /// without addressing this is a no-op.
    fn set_route(&self, peer: NodeId, addr: String);

    /// Queue `payload` for FIFO delivery to `peer`. Returns once the
    /// frame is accepted by the per-peer actor — delivery remains
    /// asynchronous and fail-stop.
    fn send(&self, peer: NodeId, payload: Vec<u8>) -> Result<(), TransportError>;

    /// Wait up to `timeout` for every frame accepted by [`send`] to be
    /// handed to the OS (or dropped by a fail-stop verdict). Returns
    /// `true` once the outbound queues are empty, `false` on timeout.
    /// The explicit teardown primitive: a process about to `exit`
    /// flushes instead of sleeping an arbitrary grace period. Backends
    /// that deliver synchronously return `true` immediately.
    ///
    /// [`send`]: Transport::send
    fn flush(&self, _timeout: Duration) -> bool {
        true
    }

    /// Wait up to `timeout` for the next transport event.
    fn poll_event(&self, timeout: Duration) -> Option<TransportEvent>;

    /// Tear down all links and background actors. Idempotent.
    fn shutdown(&self);
}
