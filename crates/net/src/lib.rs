//! # mvr-net — the in-process cluster fabric
//!
//! Substrate substitute for the TCP mesh of a real MPICH-V2 deployment
//! (see DESIGN.md §2). Provides exactly the channel semantics the protocol
//! of `mvr-core` assumes:
//!
//! * reliable FIFO delivery between live nodes,
//! * atomic (all-or-nothing) messages,
//! * crash-and-recover faults: [`Fabric::kill`] empties the victim's
//!   channels, refuses future traffic, and fences the victim's own sends
//!   (fail-stop), while [`Fabric::register`] reincarnates a node with a
//!   fresh generation,
//! * disconnection as a trusty fault detector ([`SendError::Disconnected`]).
//!
//! Every node owns a single typed [`Mailbox`] — the analog of the
//! communication daemon's `select()` loop over all of its sockets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod error;
pub mod fabric;
pub mod frame;
pub mod mailbox;
pub mod mem;
pub(crate) mod ring;
pub mod tcp;
pub mod transport;

pub use chaos::{fail_stop_group, CountTrigger, ScheduledKill, TurbulenceConfig, TurbulenceStats};
pub use error::{RecvError, SendError};
pub use fabric::{Fabric, Identity};
pub use frame::{encode_frame, Frame, FrameDecoder, FrameError};
pub use mailbox::Mailbox;
pub use mem::{MemNet, MemTransport};
pub use tcp::{TcpConfig, TcpTransport};
pub use transport::{DownCause, Transport, TransportError, TransportEvent};
