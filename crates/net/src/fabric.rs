//! The fabric: a registry of node mailboxes with fail-stop kill semantics.
//!
//! The fabric plays the role of the TCP mesh of an MPICH-V2 deployment.
//! Guarantees, chosen to match exactly what the protocol assumes (§4.1):
//!
//! * **Reliable FIFO while both ends live** — a message accepted by
//!   [`Identity::send`] is delivered unless the destination crashes first,
//!   and two messages from the same sender arrive in emission order.
//! * **Atomic messages** — a message is received completely or not at all.
//! * **Crash empties channels** — [`Fabric::kill`] closes the node's
//!   mailbox *and discards everything queued in it*; in-flight sends to it
//!   fail from that point on.
//! * **Disconnection is a trusty fault detector** — senders get
//!   [`SendError::Disconnected`] for dead/unregistered peers, and a killed
//!   incarnation's own sends fail with [`SendError::SenderDead`] so zombie
//!   threads stop, enforcing fail-stop.
//!
//! Each (node, incarnation) is identified by an [`Identity`] token handed
//! out at registration; a restarted node registers again and gets a new
//! generation, so stale incarnations cannot speak for the new one.

use crate::chaos::{Turbulence, TurbulenceConfig, TurbulenceStats};
use crate::error::{RecvError, SendError};
use crate::mailbox::{MailCore, Mailbox};
use mvr_core::NodeId;
use parking_lot::RwLock;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// The sending credential of one node incarnation.
#[derive(Clone)]
pub struct Identity {
    /// The node this incarnation embodies.
    pub node: NodeId,
    generation: u64,
    fabric: Fabric,
}

impl std::fmt::Debug for Identity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Identity({} gen {})", self.node, self.generation)
    }
}

impl Identity {
    /// Send `msg` to `to`'s current incarnation.
    pub fn send<M: Send + 'static>(&self, to: NodeId, msg: M) -> Result<(), SendError> {
        self.fabric.send_checked(self, to, msg)
    }

    /// Whether this incarnation is still the live one.
    pub fn is_live(&self) -> bool {
        self.fabric.generation_of(self.node) == Some(self.generation)
    }
}

struct Slot {
    generation: u64,
    alive: bool,
    /// `Arc<MailCore<M>>` behind `dyn Any`.
    core: Box<dyn Any + Send + Sync>,
    /// Type-erased kill hook (closes + empties the mailbox).
    kill: Box<dyn Fn() + Send + Sync>,
}

#[derive(Default)]
struct Registry {
    slots: HashMap<NodeId, Slot>,
    next_generation: u64,
}

/// The shared fabric handle (cheaply cloneable).
#[derive(Clone)]
pub struct Fabric {
    reg: Arc<RwLock<Registry>>,
    /// The installed chaos layer, if any (see [`crate::chaos`]).
    turb: Arc<RwLock<Option<Arc<Turbulence>>>>,
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl Fabric {
    /// A new, empty fabric.
    pub fn new() -> Self {
        Fabric {
            reg: Arc::new(RwLock::new(Registry::default())),
            turb: Arc::new(RwLock::new(None)),
        }
    }

    /// Install a seeded chaos layer on the send/deliver path. Replaces any
    /// previously installed one (counters restart from zero).
    pub fn install_turbulence(&self, cfg: TurbulenceConfig) {
        *self.turb.write() = Some(Arc::new(Turbulence::new(cfg)));
    }

    /// Remove the chaos layer.
    pub fn clear_turbulence(&self) {
        *self.turb.write() = None;
    }

    /// Injection counters of the installed chaos layer, if any.
    pub fn turbulence_stats(&self) -> Option<TurbulenceStats> {
        self.turb.read().as_ref().map(|t| t.stats())
    }

    fn turbulence(&self) -> Option<Arc<Turbulence>> {
        self.turb.read().clone()
    }

    /// Execute scheduled (elapsed-time) kills that have come due. Called
    /// on every turbulent send so a busy fabric fires them promptly.
    fn fire_due_scheduled(&self, t: &Turbulence) {
        for group in t.due_scheduled() {
            self.kill_group(&group);
        }
    }

    /// Register (or re-register after a crash) `node` with inbound message
    /// type `M`. Returns the mailbox and the incarnation's identity.
    ///
    /// Panics if the node is currently registered and alive — a node must
    /// be [`kill`](Self::kill)ed before being reincarnated.
    pub fn register<M: Send + 'static>(&self, node: NodeId) -> (Mailbox<M>, Identity) {
        let core = MailCore::<M>::new();
        let mailbox = Mailbox { core: core.clone() };
        let mut reg = self.reg.write();
        if let Some(slot) = reg.slots.get(&node) {
            assert!(!slot.alive, "node {node} is already registered and alive");
        }
        reg.next_generation += 1;
        let generation = reg.next_generation;
        let kill_core = core.clone();
        reg.slots.insert(
            node,
            Slot {
                generation,
                alive: true,
                core: Box::new(core),
                kill: Box::new(move || kill_core.kill()),
            },
        );
        drop(reg);
        (
            mailbox,
            Identity {
                node,
                generation,
                fabric: self.clone(),
            },
        )
    }

    /// Crash `node`: close and empty its mailbox; all of its future sends
    /// and all sends to it fail until re-registration.
    pub fn kill(&self, node: NodeId) {
        self.kill_group(std::slice::from_ref(&node));
    }

    /// Crash a whole fail-stop group *atomically*: every member dies under
    /// one registry lock, so no observer ever sees the group half-dead
    /// between member kills. This matters to the dispatcher, which treats
    /// "daemon dead" as "the whole machine crashed" — a window where the
    /// daemon is dead but its co-located process still registers as alive
    /// would let a respawn race the second half of the kill.
    pub fn kill_group(&self, nodes: &[NodeId]) {
        let mut reg = self.reg.write();
        for node in nodes {
            if let Some(slot) = reg.slots.get_mut(node) {
                if slot.alive {
                    slot.alive = false;
                    (slot.kill)();
                }
            }
        }
    }

    /// Whether `node` currently has a live incarnation.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.reg
            .read()
            .slots
            .get(&node)
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    fn generation_of(&self, node: NodeId) -> Option<u64> {
        let reg = self.reg.read();
        reg.slots
            .get(&node)
            .filter(|s| s.alive)
            .map(|s| s.generation)
    }

    /// Send from an anonymous, always-live origin (used by the dispatcher,
    /// which is reliable by assumption).
    pub fn send_from_reliable<M: Send + 'static>(
        &self,
        to: NodeId,
        msg: M,
    ) -> Result<(), SendError> {
        self.deliver(to, msg)
    }

    fn send_checked<M: Send + 'static>(
        &self,
        from: &Identity,
        to: NodeId,
        msg: M,
    ) -> Result<(), SendError> {
        // Fast fail-stop check before the (possibly sleeping) chaos layer;
        // the authoritative check happens atomically with delivery below.
        if !from.is_live() {
            return Err(SendError::SenderDead);
        }
        if let Some(t) = self.turbulence() {
            self.fire_due_scheduled(&t);
            let verdict = t.on_send(from.node, to);
            if !verdict.delay.is_zero() {
                // Sleep on the sending thread, before enqueue: per-sender
                // FIFO is preserved, only interleavings are perturbed.
                std::thread::sleep(verdict.delay);
            }
            if let Some(group) = verdict.kill_sender_group {
                self.kill_group(&group);
                return Err(SendError::SenderDead);
            }
        }
        self.deliver_from(Some(from), to, msg)
    }

    fn deliver<M: Send + 'static>(&self, to: NodeId, msg: M) -> Result<(), SendError> {
        self.deliver_from(None, to, msg)
    }

    fn deliver_from<M: Send + 'static>(
        &self,
        from: Option<&Identity>,
        to: NodeId,
        msg: M,
    ) -> Result<(), SendError> {
        if let Some(t) = self.turbulence() {
            if let Some(group) = t.on_deliver(to) {
                // The receiver crashes *while receiving* this message: the
                // message is lost whole (atomicity) and the node fails stop.
                self.kill_group(&group);
                return Err(SendError::Disconnected(to));
            }
        }
        let reg = self.reg.read();
        // Fail-stop, checked atomically with delivery: `kill_group` takes
        // the registry write lock, so a kill either precedes this send
        // entirely (we fail `SenderDead` here) or follows a delivery that
        // completed while the sender was still live. Checking liveness
        // *outside* this lock left a preemption window in which a killed
        // incarnation's in-flight send could land in a reincarnated peer's
        // fresh mailbox — e.g. a zombie daemon's reply arriving in its own
        // restarted process's inbox ahead of the `InitOk`.
        if let Some(f) = from {
            let live = reg
                .slots
                .get(&f.node)
                .filter(|s| s.alive)
                .map(|s| s.generation)
                == Some(f.generation);
            if !live {
                return Err(SendError::SenderDead);
            }
        }
        let slot = reg
            .slots
            .get(&to)
            .filter(|s| s.alive)
            .ok_or(SendError::Disconnected(to))?;
        let core = slot
            .core
            .downcast_ref::<Arc<MailCore<M>>>()
            .unwrap_or_else(|| panic!("node {to} registered with a different message type"));
        if core.push(msg) {
            Ok(())
        } else {
            Err(SendError::Disconnected(to))
        }
    }

    /// Blocking receive helper that maps a kill into `RecvError::Killed`.
    /// (Provided for symmetry; `Mailbox::recv` does the same.)
    pub fn recv<M>(&self, mailbox: &Mailbox<M>) -> Result<M, RecvError> {
        mailbox.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::Rank;
    use std::thread;
    use std::time::Duration;

    fn cn(r: u32) -> NodeId {
        NodeId::Computing(Rank(r))
    }

    #[test]
    fn register_send_recv() {
        let f = Fabric::new();
        let (mb, _id1) = f.register::<u32>(cn(1));
        let (_mb0, id0) = f.register::<u32>(cn(0));
        id0.send(cn(1), 99u32).unwrap();
        assert_eq!(mb.recv().unwrap(), 99);
    }

    #[test]
    fn send_to_unregistered_is_disconnected() {
        let f = Fabric::new();
        let (_mb, id) = f.register::<u32>(cn(0));
        assert_eq!(id.send(cn(9), 1u32), Err(SendError::Disconnected(cn(9))));
    }

    #[test]
    fn kill_disconnects_both_directions() {
        let f = Fabric::new();
        let (mb1, id1) = f.register::<u32>(cn(1));
        let (_mb0, id0) = f.register::<u32>(cn(0));
        id0.send(cn(1), 1u32).unwrap();
        f.kill(cn(1));
        // Queued message lost (channel emptied), receiver sees Killed.
        assert_eq!(mb1.recv(), Err(RecvError::Killed));
        // Senders to it are refused.
        assert_eq!(id0.send(cn(1), 2u32), Err(SendError::Disconnected(cn(1))));
        // Its own incarnation may no longer speak.
        assert_eq!(id1.send(cn(0), 3u32), Err(SendError::SenderDead));
        assert!(!f.is_alive(cn(1)));
    }

    #[test]
    fn reincarnation_gets_fresh_mailbox_and_generation() {
        let f = Fabric::new();
        let (_mb, old_id) = f.register::<u32>(cn(1));
        let (_mb0, id0) = f.register::<u32>(cn(0));
        f.kill(cn(1));
        let (mb2, new_id) = f.register::<u32>(cn(1));
        assert!(new_id.is_live());
        assert!(!old_id.is_live());
        id0.send(cn(1), 42u32).unwrap();
        assert_eq!(mb2.recv().unwrap(), 42);
        // The zombie still cannot speak.
        assert_eq!(old_id.send(cn(0), 1u32), Err(SendError::SenderDead));
    }

    #[test]
    #[should_panic(expected = "already registered and alive")]
    fn double_registration_panics() {
        let f = Fabric::new();
        let _a = f.register::<u32>(cn(0));
        let _b = f.register::<u32>(cn(0));
    }

    #[test]
    fn per_sender_fifo_across_fabric() {
        let f = Fabric::new();
        let (mb, _id1) = f.register::<(u32, u32)>(cn(1));
        let mut handles = Vec::new();
        for s in 0..4u32 {
            let (_mb_s, id) = f.register::<(u32, u32)>(cn(10 + s));
            handles.push(thread::spawn(move || {
                for i in 0..500u32 {
                    id.send(cn(1), (s, i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut last = [0u32; 4];
        let mut count = 0;
        while let Some((s, i)) = mb.try_recv().unwrap() {
            if i > 0 {
                assert_eq!(last[s as usize], i - 1, "per-sender FIFO violated");
            }
            last[s as usize] = i;
            count += 1;
        }
        assert_eq!(count, 2000);
    }

    #[test]
    fn dispatcher_can_always_send() {
        let f = Fabric::new();
        let (mb, _id) = f.register::<&'static str>(cn(0));
        f.send_from_reliable(cn(0), "restart").unwrap();
        assert_eq!(mb.recv().unwrap(), "restart");
    }

    /// Once `kill` returns, nothing more from the killed incarnation may
    /// arrive anywhere — even from a sender thread that was mid-send when
    /// the kill struck. Delivery checks liveness under the same registry
    /// lock the kill takes, so there is no window in which a zombie's
    /// in-flight send can land in a reincarnated peer's fresh mailbox.
    #[test]
    fn no_delivery_from_killed_incarnation_after_kill_returns() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let f = Fabric::new();
        let (mb_b, _id_b) = f.register::<u64>(cn(1));
        for round in 0..100u64 {
            let (_mb_a, id_a) = f.register::<u64>(cn(0));
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = stop.clone();
            let spammer = thread::spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    if id_a.send(cn(1), round).is_err() {
                        break;
                    }
                }
            });
            thread::sleep(Duration::from_micros(200));
            f.kill(cn(0));
            // Anything delivered completed before the kill; drain it.
            while mb_b.try_recv().unwrap().is_some() {}
            thread::sleep(Duration::from_millis(1));
            assert_eq!(
                mb_b.try_recv().unwrap(),
                None,
                "zombie send landed after kill returned (round {round})"
            );
            stop.store(true, Ordering::Relaxed);
            spammer.join().unwrap();
        }
    }

    #[test]
    fn kill_during_blocked_recv_unblocks() {
        let f = Fabric::new();
        let (mb, _id) = f.register::<u32>(cn(0));
        let f2 = f.clone();
        let h = thread::spawn(move || mb.recv());
        thread::sleep(Duration::from_millis(20));
        f2.kill(cn(0));
        assert_eq!(h.join().unwrap(), Err(RecvError::Killed));
    }
}
