//! The fabric: a registry of node mailboxes with fail-stop kill semantics.
//!
//! The fabric plays the role of the TCP mesh of an MPICH-V2 deployment.
//! Guarantees, chosen to match exactly what the protocol assumes (§4.1):
//!
//! * **Reliable FIFO while both ends live** — a message accepted by
//!   [`Identity::send`] is delivered unless the destination crashes first,
//!   and two messages from the same sender arrive in emission order.
//! * **Atomic messages** — a message is received completely or not at all.
//! * **Crash empties channels** — [`Fabric::kill`] closes the node's
//!   mailbox *and discards everything queued in it*; in-flight sends to it
//!   fail from that point on.
//! * **Disconnection is a trusty fault detector** — senders get
//!   [`SendError::Disconnected`] for dead/unregistered peers, and a killed
//!   incarnation's own sends fail with [`SendError::SenderDead`] so zombie
//!   threads stop, enforcing fail-stop.
//!
//! Each (node, incarnation) is identified by an [`Identity`] token handed
//! out at registration; a restarted node registers again and gets a new
//! generation, so stale incarnations cannot speak for the new one.
//!
//! ## Hot path (since the SPSC-ring rework)
//!
//! The registry `RwLock` is off the per-message path. A sender resolves
//! `(dst, generation)` once, caches a lock-free SPSC lane into the
//! receiver's mailbox, and every subsequent send is: one atomic
//! fail-stop check, one killed-receiver check, a wait-free ring write,
//! and a depth-counter bump. The cache is validated per send against the
//! receiver's killed flag, so a reincarnated destination forces one
//! re-resolve and a fresh lane (rings are generation-bound — a stale
//! lane can never feed a newer incarnation's mailbox).
//!
//! Fail-stop is enforced without the registry lock by a per-incarnation
//! `SendGuard`: senders wrap every lane push in an `in_flight` window
//! and re-check `alive` inside it; `kill` flips `alive` and then spins
//! until `in_flight` drains (all four accesses SeqCst — the classic
//! store-buffer handshake). So once `kill` returns, every send of the
//! killed incarnation has either fully landed (it was accepted before
//! the crash) or will fail `SenderDead` — no zombie delivery after the
//! kill, exactly as the registry-lock version guaranteed.

use crate::chaos::{Turbulence, TurbulenceConfig, TurbulenceStats};
use crate::error::{RecvError, SendError};
use crate::mailbox::{Lane, MailCore, Mailbox};
use crate::ring::DEFAULT_RING_CAPACITY;
use mvr_core::NodeId;
use parking_lot::RwLock;
use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-incarnation fail-stop fence shared between the registry slot and
/// the incarnation's [`Identity`].
pub(crate) struct SendGuard {
    alive: AtomicBool,
    in_flight: AtomicUsize,
}

impl SendGuard {
    fn new() -> Arc<Self> {
        Arc::new(SendGuard {
            alive: AtomicBool::new(true),
            in_flight: AtomicUsize::new(0),
        })
    }

    /// Fence this incarnation and wait for in-flight pushes to land.
    fn kill_and_quiesce(&self) {
        self.alive.store(false, Ordering::SeqCst);
        let mut spins = 0u32;
        while self.in_flight.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// One cached route: a type-erased `Lane<M>` bound to the destination
/// incarnation that was live at resolve time.
struct Route {
    lane: Box<dyn Any + Send>,
}

/// Cached view of the installed turbulence layer, refreshed by epoch.
struct TurbCache {
    epoch: u64,
    layer: Option<Arc<Turbulence>>,
}

/// The sending credential of one node incarnation.
///
/// Cloning yields an independent handle with an empty route cache: each
/// handle owns its SPSC lanes (single-producer contract), so per-sender
/// FIFO is guaranteed per handle — which matches the paper's model of
/// one channel per daemon socket.
pub struct Identity {
    /// The node this incarnation embodies.
    pub node: NodeId,
    generation: u64,
    fabric: Fabric,
    guard: Arc<SendGuard>,
    routes: RefCell<HashMap<NodeId, Route>>,
    turb: RefCell<TurbCache>,
}

impl Clone for Identity {
    fn clone(&self) -> Self {
        Identity {
            node: self.node,
            generation: self.generation,
            fabric: self.fabric.clone(),
            guard: self.guard.clone(),
            // Fresh caches: lanes are single-producer and must not be
            // shared across handles.
            routes: RefCell::new(HashMap::new()),
            turb: RefCell::new(TurbCache {
                epoch: u64::MAX,
                layer: None,
            }),
        }
    }
}

impl std::fmt::Debug for Identity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Identity({} gen {})", self.node, self.generation)
    }
}

impl Identity {
    /// Send `msg` to `to`'s current incarnation.
    pub fn send<M: Send + 'static>(&self, to: NodeId, msg: M) -> Result<(), SendError> {
        self.fabric.send_checked(self, to, msg).map_err(|(e, _m)| e)
    }

    /// Like [`send`](Self::send), but hands the message back on failure
    /// so retry loops need no per-attempt clone.
    pub fn send_reclaim<M: Send + 'static>(
        &self,
        to: NodeId,
        msg: M,
    ) -> Result<(), (SendError, M)> {
        self.fabric.send_checked(self, to, msg)
    }

    /// Whether this incarnation is still the live one. Lock-free.
    pub fn is_live(&self) -> bool {
        self.guard.alive.load(Ordering::SeqCst)
    }
}

struct Slot {
    generation: u64,
    alive: bool,
    /// `Arc<MailCore<M>>` behind `dyn Any`.
    core: Box<dyn Any + Send + Sync>,
    /// Type-erased kill hook (closes + empties the mailbox).
    kill: Box<dyn Fn() + Send + Sync>,
    /// Fail-stop fence of this incarnation's *outbound* traffic.
    guard: Arc<SendGuard>,
}

#[derive(Default)]
struct Registry {
    slots: HashMap<NodeId, Slot>,
    next_generation: u64,
}

/// The shared fabric handle (cheaply cloneable).
#[derive(Clone)]
pub struct Fabric {
    reg: Arc<RwLock<Registry>>,
    /// The installed chaos layer, if any (see [`crate::chaos`]).
    turb: Arc<RwLock<Option<Arc<Turbulence>>>>,
    /// Bumped on every install/clear so senders can cache the layer.
    turb_epoch: Arc<AtomicU64>,
    /// Fast-path capacity of newly created SPSC lanes.
    ring_capacity: Arc<AtomicUsize>,
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl Fabric {
    /// A new, empty fabric.
    pub fn new() -> Self {
        Fabric {
            reg: Arc::new(RwLock::new(Registry::default())),
            turb: Arc::new(RwLock::new(None)),
            turb_epoch: Arc::new(AtomicU64::new(0)),
            ring_capacity: Arc::new(AtomicUsize::new(DEFAULT_RING_CAPACITY)),
        }
    }

    /// Set the fast-path capacity of SPSC lanes created from now on
    /// (rounded up to a power of two). Tiny capacities force the spill
    /// lane constantly — used by the chaos suite to storm backpressure.
    pub fn set_ring_capacity(&self, capacity: usize) {
        self.ring_capacity.store(capacity.max(2), Ordering::SeqCst);
    }

    /// Install a seeded chaos layer on the send/deliver path. Replaces any
    /// previously installed one (counters restart from zero).
    pub fn install_turbulence(&self, cfg: TurbulenceConfig) {
        *self.turb.write() = Some(Arc::new(Turbulence::new(cfg)));
        self.turb_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Remove the chaos layer.
    pub fn clear_turbulence(&self) {
        *self.turb.write() = None;
        self.turb_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Injection counters of the installed chaos layer, if any.
    pub fn turbulence_stats(&self) -> Option<TurbulenceStats> {
        self.turb.read().as_ref().map(|t| t.stats())
    }

    fn turbulence(&self) -> Option<Arc<Turbulence>> {
        self.turb.read().clone()
    }

    /// The turbulence layer as seen through `id`'s epoch cache: one
    /// atomic load per send while the layer is unchanged.
    fn turbulence_cached(&self, id: &Identity) -> Option<Arc<Turbulence>> {
        let epoch = self.turb_epoch.load(Ordering::SeqCst);
        let mut cache = id.turb.borrow_mut();
        if cache.epoch != epoch {
            cache.layer = self.turbulence();
            cache.epoch = epoch;
        }
        cache.layer.clone()
    }

    /// Execute scheduled (elapsed-time) kills that have come due. Called
    /// on every turbulent send so a busy fabric fires them promptly.
    fn fire_due_scheduled(&self, t: &Turbulence) {
        for group in t.due_scheduled() {
            self.kill_group(&group);
        }
    }

    /// Register (or re-register after a crash) `node` with inbound message
    /// type `M`. Returns the mailbox and the incarnation's identity.
    ///
    /// Panics if the node is currently registered and alive — a node must
    /// be [`kill`](Self::kill)ed before being reincarnated.
    pub fn register<M: Send + 'static>(&self, node: NodeId) -> (Mailbox<M>, Identity) {
        let core = MailCore::<M>::new(self.ring_capacity.load(Ordering::SeqCst));
        let mailbox = Mailbox::new(core.clone());
        let guard = SendGuard::new();
        let mut reg = self.reg.write();
        if let Some(slot) = reg.slots.get(&node) {
            assert!(!slot.alive, "node {node} is already registered and alive");
        }
        reg.next_generation += 1;
        let generation = reg.next_generation;
        let kill_core = core.clone();
        reg.slots.insert(
            node,
            Slot {
                generation,
                alive: true,
                core: Box::new(core),
                kill: Box::new(move || kill_core.kill()),
                guard: guard.clone(),
            },
        );
        drop(reg);
        (
            mailbox,
            Identity {
                node,
                generation,
                fabric: self.clone(),
                guard,
                routes: RefCell::new(HashMap::new()),
                turb: RefCell::new(TurbCache {
                    epoch: u64::MAX,
                    layer: None,
                }),
            },
        )
    }

    /// Crash `node`: close and empty its mailbox; all of its future sends
    /// and all sends to it fail until re-registration.
    pub fn kill(&self, node: NodeId) {
        self.kill_group(std::slice::from_ref(&node));
    }

    /// Crash a whole fail-stop group *atomically*: every member dies under
    /// one registry lock, so no observer ever sees the group half-dead
    /// between member kills. This matters to the dispatcher, which treats
    /// "daemon dead" as "the whole machine crashed" — a window where the
    /// daemon is dead but its co-located process still registers as alive
    /// would let a respawn race the second half of the kill.
    ///
    /// Returns only after every member's outbound traffic has quiesced:
    /// a sender mid-push when the kill struck has either completed (the
    /// message counts as delivered before the crash) or failed
    /// `SenderDead` — nothing of the killed incarnations lands later.
    pub fn kill_group(&self, nodes: &[NodeId]) {
        let mut guards = Vec::with_capacity(nodes.len());
        {
            let mut reg = self.reg.write();
            for node in nodes {
                if let Some(slot) = reg.slots.get_mut(node) {
                    if slot.alive {
                        slot.alive = false;
                        slot.guard.alive.store(false, Ordering::SeqCst);
                        (slot.kill)();
                        guards.push(slot.guard.clone());
                    }
                }
            }
        }
        // Quiesce outside the registry lock: in-flight pushes never take
        // it, so this cannot deadlock, and readers are not held up.
        for guard in guards {
            guard.kill_and_quiesce();
        }
    }

    /// Generation of `node`'s live incarnation, if any (diagnostic).
    pub fn generation_of(&self, node: NodeId) -> Option<u64> {
        let reg = self.reg.read();
        reg.slots
            .get(&node)
            .filter(|s| s.alive)
            .map(|s| s.generation)
    }

    /// Whether `node` currently has a live incarnation.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.reg
            .read()
            .slots
            .get(&node)
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    /// Send from an anonymous, always-live origin (used by the dispatcher,
    /// which is reliable by assumption). Goes through the mailbox's
    /// multi-producer control lane.
    pub fn send_from_reliable<M: Send + 'static>(
        &self,
        to: NodeId,
        msg: M,
    ) -> Result<(), SendError> {
        if let Some(t) = self.turbulence() {
            if let Some(group) = t.on_deliver(to) {
                self.kill_group(&group);
                return Err(SendError::Disconnected(to));
            }
        }
        let reg = self.reg.read();
        let slot = reg
            .slots
            .get(&to)
            .filter(|s| s.alive)
            .ok_or(SendError::Disconnected(to))?;
        let core = slot
            .core
            .downcast_ref::<Arc<MailCore<M>>>()
            .unwrap_or_else(|| panic!("node {to} registered with a different message type"));
        if core.push_control(msg) {
            Ok(())
        } else {
            Err(SendError::Disconnected(to))
        }
    }

    fn send_checked<M: Send + 'static>(
        &self,
        from: &Identity,
        to: NodeId,
        msg: M,
    ) -> Result<(), (SendError, M)> {
        // Fast fail-stop check before the (possibly sleeping) chaos layer;
        // the authoritative check happens inside the in_flight window.
        if !from.is_live() {
            return Err((SendError::SenderDead, msg));
        }
        if let Some(t) = self.turbulence_cached(from) {
            self.fire_due_scheduled(&t);
            let verdict = t.on_send(from.node, to);
            if !verdict.delay.is_zero() {
                // Sleep on the sending thread, before enqueue: per-sender
                // FIFO is preserved, only interleavings are perturbed.
                std::thread::sleep(verdict.delay);
            }
            if let Some(group) = verdict.kill_sender_group {
                self.kill_group(&group);
                return Err((SendError::SenderDead, msg));
            }
            if let Some(group) = t.on_deliver(to) {
                // The receiver crashes *while receiving* this message: the
                // message is lost whole (atomicity) and the node fails stop.
                self.kill_group(&group);
                return Err((SendError::Disconnected(to), msg));
            }
        }
        // Cached lane first; on miss or a dead lane, resolve through the
        // registry once and retry. (The cache borrow must end before
        // `resolve_and_push` re-borrows the cache mutably.)
        let mut msg = msg;
        {
            let routes = from.routes.borrow();
            if let Some(route) = routes.get(&to) {
                let lane = route.lane.downcast_ref::<Lane<M>>().unwrap_or_else(|| {
                    panic!("node {to} registered with a different message type")
                });
                if !lane.is_closed() {
                    match self.guarded_push(from, to, lane, msg) {
                        Ok(()) => return Ok(()),
                        Err((SendError::Disconnected(_), m)) => {
                            // Receiver died under us; re-resolve (it may
                            // already have a live reincarnation).
                            msg = m;
                        }
                        Err(e) => return Err(e),
                    }
                } // stale lane: fall through to re-resolve
            }
        }
        self.resolve_and_push(from, to, msg)
    }

    /// Slow path: look the destination up in the registry, attach a
    /// fresh SPSC lane to its current incarnation, cache it, push.
    fn resolve_and_push<M: Send + 'static>(
        &self,
        from: &Identity,
        to: NodeId,
        msg: M,
    ) -> Result<(), (SendError, M)> {
        let lane = {
            let reg = self.reg.read();
            let slot = match reg.slots.get(&to).filter(|s| s.alive) {
                Some(s) => s,
                None => {
                    from.routes.borrow_mut().remove(&to);
                    return Err((SendError::Disconnected(to), msg));
                }
            };
            let core = slot
                .core
                .downcast_ref::<Arc<MailCore<M>>>()
                .unwrap_or_else(|| panic!("node {to} registered with a different message type"));
            Lane::attach(core)
        };
        let res = self.guarded_push(from, to, &lane, msg);
        from.routes.borrow_mut().insert(
            to,
            Route {
                lane: Box::new(lane),
            },
        );
        res
    }

    /// Push inside the sender's fail-stop window (see module docs).
    fn guarded_push<M: Send + 'static>(
        &self,
        from: &Identity,
        to: NodeId,
        lane: &Lane<M>,
        msg: M,
    ) -> Result<(), (SendError, M)> {
        let g = &from.guard;
        g.in_flight.fetch_add(1, Ordering::SeqCst);
        let res = if !g.alive.load(Ordering::SeqCst) {
            Err((SendError::SenderDead, msg))
        } else {
            match lane.push(msg) {
                Ok(()) => Ok(()),
                Err(m) => Err((SendError::Disconnected(to), m)),
            }
        };
        g.in_flight.fetch_sub(1, Ordering::SeqCst);
        res
    }

    /// Blocking receive helper that maps a kill into `RecvError::Killed`.
    /// (Provided for symmetry; `Mailbox::recv` does the same.)
    pub fn recv<M>(&self, mailbox: &Mailbox<M>) -> Result<M, RecvError> {
        mailbox.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::Rank;
    use std::thread;
    use std::time::Duration;

    fn cn(r: u32) -> NodeId {
        NodeId::Computing(Rank(r))
    }

    #[test]
    fn register_send_recv() {
        let f = Fabric::new();
        let (mb, _id1) = f.register::<u32>(cn(1));
        let (_mb0, id0) = f.register::<u32>(cn(0));
        id0.send(cn(1), 99u32).unwrap();
        assert_eq!(mb.recv().unwrap(), 99);
    }

    #[test]
    fn send_to_unregistered_is_disconnected() {
        let f = Fabric::new();
        let (_mb, id) = f.register::<u32>(cn(0));
        assert_eq!(id.send(cn(9), 1u32), Err(SendError::Disconnected(cn(9))));
    }

    #[test]
    fn send_reclaim_hands_the_message_back() {
        let f = Fabric::new();
        let (_mb, id) = f.register::<String>(cn(0));
        let msg = String::from("precious");
        let (err, back) = id.send_reclaim(cn(9), msg).unwrap_err();
        assert_eq!(err, SendError::Disconnected(cn(9)));
        assert_eq!(back, "precious");
    }

    #[test]
    fn kill_disconnects_both_directions() {
        let f = Fabric::new();
        let (mb1, id1) = f.register::<u32>(cn(1));
        let (_mb0, id0) = f.register::<u32>(cn(0));
        id0.send(cn(1), 1u32).unwrap();
        f.kill(cn(1));
        // Queued message lost (channel emptied), receiver sees Killed.
        assert_eq!(mb1.recv(), Err(RecvError::Killed));
        // Senders to it are refused.
        assert_eq!(id0.send(cn(1), 2u32), Err(SendError::Disconnected(cn(1))));
        // Its own incarnation may no longer speak.
        assert_eq!(id1.send(cn(0), 3u32), Err(SendError::SenderDead));
        assert!(!f.is_alive(cn(1)));
    }

    #[test]
    fn reincarnation_gets_fresh_mailbox_and_generation() {
        let f = Fabric::new();
        let (_mb, old_id) = f.register::<u32>(cn(1));
        let (_mb0, id0) = f.register::<u32>(cn(0));
        // Warm id0's route cache toward the first incarnation.
        id0.send(cn(1), 7u32).unwrap();
        f.kill(cn(1));
        let (mb2, new_id) = f.register::<u32>(cn(1));
        assert!(new_id.is_live());
        assert!(!old_id.is_live());
        // The cached (now dead) lane is replaced transparently.
        id0.send(cn(1), 42u32).unwrap();
        assert_eq!(mb2.recv().unwrap(), 42);
        // The zombie still cannot speak.
        assert_eq!(old_id.send(cn(0), 1u32), Err(SendError::SenderDead));
    }

    /// A message parked in a stale incarnation's lane must never surface
    /// in the reincarnation's mailbox.
    #[test]
    fn stale_incarnation_lane_never_feeds_the_reincarnation() {
        let f = Fabric::new();
        let (mb_old, _id1) = f.register::<u32>(cn(1));
        let (_mb0, id0) = f.register::<u32>(cn(0));
        // Queue into the first incarnation's lane, undelivered.
        id0.send(cn(1), 111u32).unwrap();
        let old_gen = f.generation_of(cn(1)).unwrap();
        f.kill(cn(1));
        drop(mb_old);
        let (mb_new, _id1b) = f.register::<u32>(cn(1));
        assert!(f.generation_of(cn(1)).unwrap() > old_gen);
        id0.send(cn(1), 222u32).unwrap();
        // Only the post-reincarnation message arrives.
        assert_eq!(mb_new.recv().unwrap(), 222);
        assert_eq!(mb_new.try_recv().unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "already registered and alive")]
    fn double_registration_panics() {
        let f = Fabric::new();
        let _a = f.register::<u32>(cn(0));
        let _b = f.register::<u32>(cn(0));
    }

    #[test]
    fn per_sender_fifo_across_fabric() {
        let f = Fabric::new();
        let (mb, _id1) = f.register::<(u32, u32)>(cn(1));
        let mut handles = Vec::new();
        for s in 0..4u32 {
            let (_mb_s, id) = f.register::<(u32, u32)>(cn(10 + s));
            handles.push(thread::spawn(move || {
                for i in 0..500u32 {
                    id.send(cn(1), (s, i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut last = [0u32; 4];
        let mut count = 0;
        while let Some((s, i)) = mb.try_recv().unwrap() {
            if i > 0 {
                assert_eq!(last[s as usize], i - 1, "per-sender FIFO violated");
            }
            last[s as usize] = i;
            count += 1;
        }
        assert_eq!(count, 2000);
    }

    /// Same FIFO property with a tiny ring capacity, so every sender
    /// wraps its ring and overflows into the spill lane constantly.
    #[test]
    fn per_sender_fifo_across_fabric_under_backpressure() {
        let f = Fabric::new();
        f.set_ring_capacity(2);
        let (mb, _id1) = f.register::<(u32, u32)>(cn(1));
        let mut handles = Vec::new();
        for s in 0..4u32 {
            let (_mb_s, id) = f.register::<(u32, u32)>(cn(10 + s));
            handles.push(thread::spawn(move || {
                for i in 0..2000u32 {
                    id.send(cn(1), (s, i)).unwrap();
                }
            }));
        }
        let mut last = [None::<u32>; 4];
        let mut count = 0;
        let mut buf = Vec::with_capacity(64);
        while count < 8000 {
            buf.clear();
            count += mb.recv_many(&mut buf, 64).unwrap();
            for &(s, i) in &buf {
                if let Some(prev) = last[s as usize] {
                    assert_eq!(prev + 1, i, "per-sender FIFO under backpressure");
                }
                last[s as usize] = Some(i);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn dispatcher_can_always_send() {
        let f = Fabric::new();
        let (mb, _id) = f.register::<&'static str>(cn(0));
        f.send_from_reliable(cn(0), "restart").unwrap();
        assert_eq!(mb.recv().unwrap(), "restart");
    }

    /// Once `kill` returns, nothing more from the killed incarnation may
    /// arrive anywhere — even from a sender thread that was mid-send when
    /// the kill struck. The sender wraps every lane push in a SeqCst
    /// `in_flight` window and `kill` quiesces it, so there is no window
    /// in which a zombie's in-flight send can land in a reincarnated
    /// peer's fresh mailbox.
    #[test]
    fn no_delivery_from_killed_incarnation_after_kill_returns() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let f = Fabric::new();
        let (mb_b, _id_b) = f.register::<u64>(cn(1));
        for round in 0..100u64 {
            let (_mb_a, id_a) = f.register::<u64>(cn(0));
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = stop.clone();
            let spammer = thread::spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    if id_a.send(cn(1), round).is_err() {
                        break;
                    }
                }
            });
            thread::sleep(Duration::from_micros(200));
            f.kill(cn(0));
            // Anything delivered completed before the kill; drain it.
            while mb_b.try_recv().unwrap().is_some() {}
            thread::sleep(Duration::from_millis(1));
            assert_eq!(
                mb_b.try_recv().unwrap(),
                None,
                "zombie send landed after kill returned (round {round})"
            );
            stop.store(true, Ordering::Relaxed);
            spammer.join().unwrap();
        }
    }

    #[test]
    fn kill_during_blocked_recv_unblocks() {
        let f = Fabric::new();
        let (mb, _id) = f.register::<u32>(cn(0));
        let f2 = f.clone();
        let h = thread::spawn(move || mb.recv());
        thread::sleep(Duration::from_millis(20));
        f2.kill(cn(0));
        assert_eq!(h.join().unwrap(), Err(RecvError::Killed));
    }

    #[test]
    fn cloned_identity_gets_its_own_lanes_and_still_delivers() {
        let f = Fabric::new();
        let (mb, _id1) = f.register::<u32>(cn(1));
        let (_mb0, id0) = f.register::<u32>(cn(0));
        id0.send(cn(1), 1u32).unwrap();
        let id0b = id0.clone();
        id0b.send(cn(1), 2u32).unwrap();
        id0.send(cn(1), 3u32).unwrap();
        let mut got = [mb.recv().unwrap(), mb.recv().unwrap(), mb.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, [1, 2, 3]);
    }
}
