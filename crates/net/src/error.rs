//! Error types of the fabric.

use mvr_core::NodeId;
use std::fmt;

/// Why a send failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// The destination is not registered (never started, or crashed and
    /// not yet restarted). Matches a TCP connection refusal/reset — the
    /// "trusty fault detector" of §4.7.
    Disconnected(NodeId),
    /// The *sender's* identity is stale: its node was killed (this
    /// incarnation must stop — fail-stop semantics) .
    SenderDead,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Disconnected(n) => write!(f, "peer {n} is disconnected"),
            SendError::SenderDead => write!(f, "sender was killed (stale incarnation)"),
        }
    }
}

impl std::error::Error for SendError {}

/// Why a receive failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// This mailbox's node was killed: the owning thread must unwind.
    Killed,
    /// No message arrived within the requested timeout.
    Timeout,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Killed => write!(f, "node was killed"),
            RecvError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for RecvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::Rank;

    #[test]
    fn display_strings() {
        assert!(SendError::Disconnected(NodeId::Computing(Rank(1)))
            .to_string()
            .contains("cn1"));
        assert!(SendError::SenderDead.to_string().contains("killed"));
        assert_eq!(RecvError::Timeout.to_string(), "receive timed out");
    }
}
