//! TCP socket [`Transport`] backend with fail-stop detection.
//!
//! Topology: every endpoint binds one listener; for each destination it
//! actually talks to, a **per-peer connection actor** (one thread) owns
//! a dialed outbound stream and drains a FIFO frame queue into it —
//! preserving per-destination ordering across reconnects. Transient
//! dial/write errors are retried with capped exponential backoff plus
//! deterministic jitter (the same idiom the dispatcher uses for rank
//! respawn); only after `dial_deadline` of continuous failure does the
//! link degrade to a fail-stop verdict.
//!
//! Detection is reader-driven. Each accepted connection starts with a
//! hello frame naming the dialer and its incarnation, after which the
//! dialer keeps the stream warm with heartbeat pings. The acceptor maps
//!
//! * EOF / connection reset        → [`DownCause::Eof`] / [`DownCause::Io`]
//! * silence beyond `fail_after`   → [`DownCause::ReadTimeout`]
//! * any frame-codec violation     → [`DownCause::Corrupt`]
//!
//! onto [`TransportEvent::PeerDown`] once a peer's last live link is
//! gone — the exact signal the supervising dispatcher converts into
//! `RankLost` / replica-dead handling. A restarted peer re-dials with a
//! higher incarnation; the acceptor then synthesizes `PeerDown` (old)
//! followed by `PeerUp` (new), so reincarnation is never mistaken for
//! continuity.

use crate::frame::{
    encode_frame, FrameDecoder, FLAG_HELLO, FLAG_PING, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD,
};
use crate::transport::{DownCause, Transport, TransportError, TransportEvent};
use crossbeam_channel::{unbounded, Receiver, Sender};
use mvr_core::ids::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for [`TcpTransport`].
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Largest accepted frame payload.
    pub max_frame: usize,
    /// Idle interval after which a connection actor emits a keep-alive
    /// ping (must be well under `fail_after`).
    pub heartbeat: Duration,
    /// Reader-side silence window: no bytes for this long ⇒ the link is
    /// declared dead ([`DownCause::ReadTimeout`]).
    pub fail_after: Duration,
    /// First reconnect backoff step.
    pub dial_base: Duration,
    /// Backoff cap.
    pub dial_cap: Duration,
    /// Continuous dial failure beyond this ⇒ fail-stop
    /// ([`DownCause::DialFailed`]); queued frames are dropped (the
    /// protocol's retransmission layer owns redelivery).
    pub dial_deadline: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            max_frame: MAX_FRAME_PAYLOAD,
            heartbeat: Duration::from_millis(50),
            fail_after: Duration::from_millis(500),
            dial_base: Duration::from_millis(2),
            dial_cap: Duration::from_millis(200),
            dial_deadline: Duration::from_secs(2),
            jitter_seed: 0x6d76_7232,
        }
    }
}

/// Commands consumed by a per-peer connection actor, in FIFO order with
/// the frames themselves.
enum Cmd {
    Frame(Vec<u8>),
    /// The route changed (peer reincarnated elsewhere): drop the current
    /// stream and redial.
    Reroute,
}

struct PeerState {
    links: usize,
    incarnation: u64,
}

struct Shared {
    node: NodeId,
    incarnation: u64,
    cfg: TcpConfig,
    events: Sender<TransportEvent>,
    routes: Mutex<HashMap<NodeId, String>>,
    peers: Mutex<HashMap<NodeId, PeerState>>,
    closed: AtomicBool,
    /// Application frames accepted by `send` but not yet written to a
    /// socket (or dropped by fail-stop) — what `flush` waits on.
    inflight: AtomicU64,
}

impl Shared {
    /// Record one live link to `peer` (announced at `incarnation`),
    /// emitting `PeerUp` on the 0→1 transition and a synthetic
    /// down/up pair when a known peer reappears reincarnated.
    fn link_up(&self, peer: NodeId, incarnation: u64) {
        let mut peers = self.peers.lock();
        let st = peers.entry(peer).or_insert(PeerState {
            links: 0,
            incarnation: 0,
        });
        if st.links > 0 && incarnation > st.incarnation {
            let old = st.incarnation;
            st.incarnation = incarnation;
            // The synthetic down names the *old* incarnation — it is a
            // verdict about the predecessor, and a supervisor that
            // already respawned the peer must not mistake it for a
            // death of the replacement.
            let _ = self.events.send(TransportEvent::PeerDown {
                peer,
                incarnation: old,
                cause: DownCause::Eof,
            });
            let _ = self
                .events
                .send(TransportEvent::PeerUp { peer, incarnation });
        } else {
            st.incarnation = st.incarnation.max(incarnation);
            if st.links == 0 {
                let inc = st.incarnation;
                let _ = self.events.send(TransportEvent::PeerUp {
                    peer,
                    incarnation: inc,
                });
            }
        }
        st.links += 1;
    }

    /// Drop one live link; the last one going away fires `PeerDown`.
    fn link_down(&self, peer: NodeId, cause: DownCause) {
        let mut peers = self.peers.lock();
        if let Some(st) = peers.get_mut(&peer) {
            st.links = st.links.saturating_sub(1);
            if st.links == 0 {
                let incarnation = st.incarnation;
                let _ = self.events.send(TransportEvent::PeerDown {
                    peer,
                    incarnation,
                    cause,
                });
            }
        }
    }

    /// The last incarnation observed for `peer` (0 before any hello).
    fn known_incarnation(&self, peer: NodeId) -> u64 {
        self.peers.lock().get(&peer).map_or(0, |s| s.incarnation)
    }

    fn closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

/// Socket-backed [`Transport`] endpoint.
pub struct TcpTransport {
    shared: Arc<Shared>,
    listener_addr: String,
    writers: Mutex<HashMap<NodeId, Sender<Cmd>>>,
    events: Mutex<Receiver<TransportEvent>>,
}

fn hello_payload(node: NodeId, incarnation: u64) -> Vec<u8> {
    bincode::serialize(&(node, incarnation)).expect("hello encodes")
}

fn decode_hello(payload: &[u8]) -> Option<(NodeId, u64)> {
    bincode::deserialize(payload).ok()
}

/// xorshift64* step — deterministic jitter without pulling in `rand`.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl TcpTransport {
    /// Bind a listener at `bind_addr` (use port 0 for an ephemeral
    /// port — the respawn-safe choice, since a fresh port can never
    /// collide with the old socket lingering in TIME_WAIT) and start
    /// the accept loop. `incarnation` is announced in every hello this
    /// endpoint dials with; restarted processes must pass a strictly
    /// larger value.
    pub fn bind(
        node: NodeId,
        bind_addr: &str,
        incarnation: u64,
        cfg: TcpConfig,
    ) -> std::io::Result<TcpTransport> {
        let listener = TcpListener::bind(bind_addr)?;
        listener.set_nonblocking(true)?;
        let listener_addr = listener.local_addr()?.to_string();
        let (ev_tx, ev_rx) = unbounded();
        let shared = Arc::new(Shared {
            node,
            incarnation,
            cfg,
            events: ev_tx,
            routes: Mutex::new(HashMap::new()),
            peers: Mutex::new(HashMap::new()),
            closed: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
        });
        let accept_shared = shared.clone();
        thread::Builder::new()
            .name(format!("tcp-accept-{node}"))
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept loop");
        Ok(TcpTransport {
            shared,
            listener_addr,
            writers: Mutex::new(HashMap::new()),
            events: Mutex::new(ev_rx),
        })
    }

    /// The peer currently known incarnation, if any (diagnostics).
    pub fn incarnation_of(&self, peer: NodeId) -> Option<u64> {
        self.shared.peers.lock().get(&peer).map(|s| s.incarnation)
    }
}

impl Transport for TcpTransport {
    fn local_node(&self) -> NodeId {
        self.shared.node
    }

    fn local_addr(&self) -> Option<String> {
        Some(self.listener_addr.clone())
    }

    fn set_route(&self, peer: NodeId, addr: String) {
        let prev = self.shared.routes.lock().insert(peer, addr);
        if prev.is_some() {
            // Existing actor must abandon its stream and redial.
            if let Some(tx) = self.writers.lock().get(&peer) {
                let _ = tx.send(Cmd::Reroute);
            }
        }
    }

    fn send(&self, peer: NodeId, payload: Vec<u8>) -> Result<(), TransportError> {
        if self.shared.closed() {
            return Err(TransportError::Closed);
        }
        if payload.len() > self.shared.cfg.max_frame {
            return Err(TransportError::Oversized {
                len: payload.len(),
                max: self.shared.cfg.max_frame,
            });
        }
        let frame = encode_frame(0, &payload);
        let mut writers = self.writers.lock();
        let tx = match writers.entry(peer) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                if !self.shared.routes.lock().contains_key(&peer) {
                    return Err(TransportError::NoRoute(peer));
                }
                let (tx, rx) = unbounded();
                let shared = self.shared.clone();
                thread::Builder::new()
                    .name(format!("tcp-out-{}-{peer}", self.shared.node))
                    .spawn(move || writer_actor(peer, rx, shared))
                    .expect("spawn writer actor");
                e.insert(tx)
            }
        };
        self.shared.inflight.fetch_add(1, Ordering::AcqRel);
        tx.send(Cmd::Frame(frame)).map_err(|_| {
            self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
            TransportError::Closed
        })
    }

    fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.inflight.load(Ordering::Acquire) == 0 {
                return true;
            }
            if Instant::now() >= deadline || self.shared.closed() {
                return self.shared.inflight.load(Ordering::Acquire) == 0;
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    fn poll_event(&self, timeout: Duration) -> Option<TransportEvent> {
        self.events.lock().recv_timeout(timeout).ok()
    }

    fn shutdown(&self) {
        self.shared.closed.store(true, Ordering::Release);
        // Dropping the queues wakes every writer actor.
        self.writers.lock().clear();
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.closed() {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = shared.clone();
                let name = format!("tcp-in-{}", shared.node);
                let _ = thread::Builder::new()
                    .name(name)
                    .spawn(move || reader_conn(stream, conn_shared));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Serve one accepted connection: handshake, then decode data frames
/// until the dialer dies (EOF / error / silence) — the fail-stop
/// detection point.
fn reader_conn(stream: TcpStream, shared: Arc<Shared>) {
    let cfg = shared.cfg.clone();
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // Short read timeout so the loop can check both the silence window
    // and transport shutdown frequently.
    let tick = cfg
        .heartbeat
        .min(Duration::from_millis(50))
        .max(Duration::from_millis(5));
    if stream.set_read_timeout(Some(tick)).is_err() {
        return;
    }
    let mut stream = stream;
    let mut decoder = FrameDecoder::with_max_payload(cfg.max_frame);
    let mut peer: Option<NodeId> = None;
    let mut buf = vec![0u8; 64 * 1024];
    let mut last_byte = Instant::now();
    let down = |peer: &Option<NodeId>, cause: DownCause, shared: &Shared| {
        if let Some(p) = peer {
            shared.link_down(*p, cause);
        }
    };
    loop {
        if shared.closed() {
            down(&peer, DownCause::Closed, &shared);
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                down(&peer, DownCause::Eof, &shared);
                return;
            }
            Ok(n) => {
                last_byte = Instant::now();
                decoder.push(&buf[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(frame)) => {
                            if frame.flags & FLAG_HELLO != 0 {
                                match decode_hello(&frame.payload) {
                                    Some((node, incarnation)) if peer.is_none() => {
                                        peer = Some(node);
                                        shared.link_up(node, incarnation);
                                    }
                                    _ => {
                                        down(
                                            &peer,
                                            DownCause::Corrupt("bad hello".into()),
                                            &shared,
                                        );
                                        return;
                                    }
                                }
                            } else if frame.flags & FLAG_PING != 0 {
                                // Keep-alive: its bytes already fed the
                                // silence timer.
                            } else if let Some(from) = peer {
                                let _ = shared.events.send(TransportEvent::Frame {
                                    from,
                                    payload: frame.payload,
                                });
                            } else {
                                // Data before hello: protocol violation.
                                down(
                                    &peer,
                                    DownCause::Corrupt("frame before hello".into()),
                                    &shared,
                                );
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            down(&peer, DownCause::Corrupt(e.to_string()), &shared);
                            return;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if last_byte.elapsed() > cfg.fail_after {
                    down(&peer, DownCause::ReadTimeout, &shared);
                    return;
                }
            }
            Err(e) => {
                down(&peer, DownCause::Io(e.to_string()), &shared);
                return;
            }
        }
    }
}

/// Per-peer connection actor: owns the outbound stream to `peer`,
/// drains the FIFO command queue into it, reconnects on transient
/// failure with capped exponential backoff + jitter, and degrades to a
/// fail-stop verdict only after `dial_deadline` of continuous failure.
fn writer_actor(peer: NodeId, rx: Receiver<Cmd>, shared: Arc<Shared>) {
    let cfg = shared.cfg.clone();
    let mut jitter = cfg.jitter_seed ^ hash_node(peer) | 1;
    let mut conn: Option<TcpStream> = None;
    let mut out_link_up = false;
    let mut fail_since: Option<Instant> = None;
    let mut attempt: u32 = 0;
    let mut announced_dial_fail = false;
    loop {
        if shared.closed() {
            if out_link_up {
                shared.link_down(peer, DownCause::Closed);
            }
            return;
        }
        if conn.is_none() {
            // (Re)dial — backoff with jitter, reusing the dispatcher's
            // doubling idiom.
            let addr = match shared.routes.lock().get(&peer).cloned() {
                Some(a) => a,
                None => return,
            };
            match dial(&addr, &shared) {
                Ok(stream) => {
                    conn = Some(stream);
                    fail_since = None;
                    attempt = 0;
                    announced_dial_fail = false;
                    shared.link_up(peer, 0);
                    out_link_up = true;
                }
                Err(_) => {
                    let since = *fail_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > cfg.dial_deadline {
                        if out_link_up {
                            shared.link_down(peer, DownCause::DialFailed(addr.clone()));
                            out_link_up = false;
                        } else if !announced_dial_fail {
                            // Never-reached peer: surface the verdict
                            // once so the supervisor can act on it.
                            let _ = shared.events.send(TransportEvent::PeerDown {
                                peer,
                                incarnation: shared.known_incarnation(peer),
                                cause: DownCause::DialFailed(addr.clone()),
                            });
                            announced_dial_fail = true;
                        }
                        // Fail-stop: stale frames must not reach a
                        // future reincarnation.
                        while let Ok(cmd) = rx.try_recv() {
                            match cmd {
                                Cmd::Reroute => break,
                                Cmd::Frame(_) => {
                                    shared.inflight.fetch_sub(1, Ordering::AcqRel);
                                }
                            }
                        }
                    }
                    let exp = cfg.dial_base.saturating_mul(1u32 << attempt.min(7));
                    let capped = exp.min(cfg.dial_cap);
                    let j = Duration::from_micros(
                        xorshift(&mut jitter) % (capped.as_micros().max(1) as u64 / 2 + 1),
                    );
                    attempt = attempt.saturating_add(1);
                    thread::sleep(capped + j);
                    continue;
                }
            }
        }
        match rx.recv_timeout(cfg.heartbeat) {
            Ok(Cmd::Frame(frame)) => {
                let result = conn.as_mut().expect("connected").write_all(&frame);
                // Written or lost, the frame left the queue either way.
                shared.inflight.fetch_sub(1, Ordering::AcqRel);
                if result.is_err() {
                    // Transient write failure: drop the stream and let
                    // the redial path decide transient vs. fail-stop.
                    // The frame is lost — fail-stop links do not hide
                    // holes behind silent retransmission.
                    conn = None;
                    if out_link_up {
                        shared.link_down(peer, DownCause::Io("write failed".into()));
                        out_link_up = false;
                    }
                }
            }
            Ok(Cmd::Reroute) => {
                conn = None;
                if out_link_up {
                    shared.link_down(peer, DownCause::Closed);
                    out_link_up = false;
                }
                fail_since = None;
                attempt = 0;
                announced_dial_fail = false;
            }
            Err(RecvTimeoutError::Timeout) => {
                // Idle: keep the peer's silence detector fed.
                if let Some(stream) = conn.as_mut() {
                    if stream.write_all(&encode_frame(FLAG_PING, &[])).is_err() {
                        conn = None;
                        if out_link_up {
                            shared.link_down(peer, DownCause::Io("ping failed".into()));
                            out_link_up = false;
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                if out_link_up {
                    shared.link_down(peer, DownCause::Closed);
                }
                return;
            }
        }
    }
}

/// Dial `addr` and perform the hello handshake (announce ourselves).
fn dial(addr: &str, shared: &Shared) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let hello = encode_frame(FLAG_HELLO, &hello_payload(shared.node, shared.incarnation));
    stream.write_all(&hello)?;
    Ok(stream)
}

fn hash_node(node: NodeId) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    node.hash(&mut h);
    h.finish()
}

// Silence an unused-constant lint if header length is only used in docs.
const _: usize = FRAME_HEADER_LEN;

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::ids::{NodeId, Rank};

    fn cn(r: u32) -> NodeId {
        NodeId::Computing(Rank(r))
    }

    fn quick_cfg() -> TcpConfig {
        TcpConfig {
            heartbeat: Duration::from_millis(20),
            fail_after: Duration::from_millis(250),
            dial_base: Duration::from_millis(1),
            dial_cap: Duration::from_millis(20),
            dial_deadline: Duration::from_millis(600),
            ..TcpConfig::default()
        }
    }

    fn wait_for<F: Fn(&TransportEvent) -> bool>(
        t: &TcpTransport,
        deadline: Duration,
        pred: F,
    ) -> Option<TransportEvent> {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if let Some(ev) = t.poll_event(Duration::from_millis(50)) {
                if pred(&ev) {
                    return Some(ev);
                }
            }
        }
        None
    }

    #[test]
    fn frames_roundtrip_between_two_endpoints() {
        let a = TcpTransport::bind(cn(0), "127.0.0.1:0", 1, quick_cfg()).unwrap();
        let b = TcpTransport::bind(cn(1), "127.0.0.1:0", 1, quick_cfg()).unwrap();
        a.set_route(cn(1), b.local_addr().unwrap());
        b.set_route(cn(0), a.local_addr().unwrap());
        for i in 0..20u8 {
            a.send(cn(1), vec![i, i]).unwrap();
        }
        let mut got = Vec::new();
        while got.len() < 20 {
            match wait_for(&b, Duration::from_secs(5), |e| {
                matches!(e, TransportEvent::Frame { .. })
            }) {
                Some(TransportEvent::Frame { from, payload }) => {
                    assert_eq!(from, cn(0));
                    got.push(payload[0]);
                }
                _ => panic!("frame missing after {got:?}"),
            }
        }
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
        // Reverse direction too.
        b.send(cn(0), b"pong".to_vec()).unwrap();
        assert!(wait_for(&a, Duration::from_secs(5), |e| matches!(
            e,
            TransportEvent::Frame { payload, .. } if payload == b"pong"
        ))
        .is_some());
    }

    #[test]
    fn flush_drains_outbound_queues() {
        let a = TcpTransport::bind(cn(0), "127.0.0.1:0", 1, quick_cfg()).unwrap();
        let b = TcpTransport::bind(cn(1), "127.0.0.1:0", 1, quick_cfg()).unwrap();
        a.set_route(cn(1), b.local_addr().unwrap());
        for i in 0..50u8 {
            a.send(cn(1), vec![i; 512]).unwrap();
        }
        assert!(
            a.flush(Duration::from_secs(5)),
            "queued frames must drain to the OS"
        );
        // Everything handed to the OS before flush returned arrives.
        let mut got = 0;
        while got < 50 {
            match wait_for(&b, Duration::from_secs(5), |e| {
                matches!(e, TransportEvent::Frame { .. })
            }) {
                Some(TransportEvent::Frame { .. }) => got += 1,
                _ => panic!("only {got}/50 frames arrived"),
            }
        }
        // An idle transport flushes immediately.
        assert!(a.flush(Duration::from_millis(1)));
    }

    #[test]
    fn peer_shutdown_detected_as_peer_down() {
        let a = TcpTransport::bind(cn(0), "127.0.0.1:0", 1, quick_cfg()).unwrap();
        let b = TcpTransport::bind(cn(1), "127.0.0.1:0", 1, quick_cfg()).unwrap();
        b.set_route(cn(0), a.local_addr().unwrap());
        b.send(cn(0), b"hi".to_vec()).unwrap();
        assert!(wait_for(&a, Duration::from_secs(5), |e| matches!(
            e,
            TransportEvent::PeerUp { peer, .. } if *peer == cn(1)
        ))
        .is_some());
        b.shutdown();
        let down = wait_for(
            &a,
            Duration::from_secs(5),
            |e| matches!(e, TransportEvent::PeerDown { peer, .. } if *peer == cn(1)),
        );
        assert!(down.is_some(), "shutdown of b must fail-stop the link at a");
    }

    #[test]
    fn silent_peer_times_out() {
        let a = TcpTransport::bind(cn(0), "127.0.0.1:0", 1, quick_cfg()).unwrap();
        // Raw client: valid hello for cn(9), then total silence.
        let mut raw = TcpStream::connect(a.local_addr().unwrap()).unwrap();
        raw.write_all(&encode_frame(FLAG_HELLO, &hello_payload(cn(9), 3)))
            .unwrap();
        assert!(wait_for(&a, Duration::from_secs(2), |e| matches!(
            e,
            TransportEvent::PeerUp { peer, incarnation } if *peer == cn(9) && *incarnation == 3
        ))
        .is_some());
        let down = wait_for(&a, Duration::from_secs(3), |e| {
            matches!(
                e,
                TransportEvent::PeerDown { peer, cause: DownCause::ReadTimeout, .. } if *peer == cn(9)
            )
        });
        assert!(
            down.is_some(),
            "silence must trip the read-timeout detector"
        );
        drop(raw);
    }

    #[test]
    fn corrupt_stream_is_rejected_without_panic() {
        let a = TcpTransport::bind(cn(0), "127.0.0.1:0", 1, quick_cfg()).unwrap();
        let mut raw = TcpStream::connect(a.local_addr().unwrap()).unwrap();
        raw.write_all(b"garbage garbage garbage garbage").unwrap();
        // The connection is dropped server-side; no event (no hello ever
        // identified a peer) and the endpoint stays functional.
        thread::sleep(Duration::from_millis(100));
        let b = TcpTransport::bind(cn(1), "127.0.0.1:0", 1, quick_cfg()).unwrap();
        b.set_route(cn(0), a.local_addr().unwrap());
        b.send(cn(0), b"still alive".to_vec()).unwrap();
        assert!(wait_for(&a, Duration::from_secs(5), |e| matches!(
            e,
            TransportEvent::Frame { payload, .. } if payload == b"still alive"
        ))
        .is_some());
    }

    #[test]
    fn reroute_reaches_reincarnated_peer() {
        let a = TcpTransport::bind(cn(0), "127.0.0.1:0", 1, quick_cfg()).unwrap();
        let b1 = TcpTransport::bind(cn(1), "127.0.0.1:0", 1, quick_cfg()).unwrap();
        a.set_route(cn(1), b1.local_addr().unwrap());
        a.send(cn(1), b"one".to_vec()).unwrap();
        assert!(wait_for(&b1, Duration::from_secs(5), |e| matches!(
            e,
            TransportEvent::Frame { payload, .. } if payload == b"one"
        ))
        .is_some());
        // Reincarnate at a fresh ephemeral port (the TIME_WAIT-proof
        // respawn path) and reroute.
        b1.shutdown();
        let b2 = TcpTransport::bind(cn(1), "127.0.0.1:0", 2, quick_cfg()).unwrap();
        a.set_route(cn(1), b2.local_addr().unwrap());
        a.send(cn(1), b"two".to_vec()).unwrap();
        assert!(wait_for(&b2, Duration::from_secs(5), |e| matches!(
            e,
            TransportEvent::Frame { payload, .. } if payload == b"two"
        ))
        .is_some());
    }

    #[test]
    fn send_without_route_is_typed_error() {
        let a = TcpTransport::bind(cn(0), "127.0.0.1:0", 1, quick_cfg()).unwrap();
        assert_eq!(a.send(cn(7), vec![1]), Err(TransportError::NoRoute(cn(7))));
        let big = vec![0u8; 8];
        let mut cfg = quick_cfg();
        cfg.max_frame = 4;
        let b = TcpTransport::bind(cn(1), "127.0.0.1:0", 1, cfg).unwrap();
        b.set_route(cn(0), a.local_addr().unwrap());
        assert_eq!(
            b.send(cn(0), big),
            Err(TransportError::Oversized { len: 8, max: 4 })
        );
    }
}
