//! Blocking, killable mailboxes — the receive side of the fabric.
//!
//! A [`Mailbox`] is the single inbound queue of one node incarnation
//! (the analog of the daemon's `select()` loop over all of its sockets).
//! Since the hot-path rework it is a *bundle of SPSC lanes*: every
//! sender incarnation gets its own lock-free ring
//! (`ring::SpscRing`), created lazily at first send, plus one
//! shared mutex-protected control lane for anonymous reliable senders
//! (the dispatcher). Per-sender FIFO holds because each sender owns its
//! lane; cross-sender interleaving is round-robin at drain time, which
//! the protocol never depends on.
//!
//! The receiver is woken through an eventcount-style parker: producers
//! bump an atomic depth counter and only touch the condvar when the
//! receiver has announced it is (about to be) asleep, so an actively
//! draining receiver costs producers two atomic ops per message and no
//! lock. The depth counter doubles as a lock-free [`Mailbox::len`] for
//! diagnostics and the health endpoint.
//!
//! Killing the node closes the mailbox *and empties it* — the paper's
//! crash-and-recover step empties every channel connected to the crashed
//! process. Lanes are emptied by the receiver on observing the kill (or
//! when the lane is dropped); the control lane is emptied eagerly under
//! its lock.

use crate::error::RecvError;
use crate::ring::SpscRing;
use parking_lot::{Condvar, Mutex};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub(crate) struct MailCore<M> {
    /// All sender lanes ever attached; the consumer snapshots this.
    lanes: Mutex<Vec<Arc<SpscRing<M>>>>,
    /// Bumped on every lane attach so the consumer can refresh cheaply.
    lanes_epoch: AtomicU64,
    /// Multi-producer lane for anonymous reliable senders.
    control: Mutex<VecDeque<M>>,
    control_len: AtomicUsize,
    /// Total queued messages across all lanes (lock-free `len()`).
    depth: AtomicUsize,
    killed: AtomicBool,
    /// Receivers currently announcing intent to sleep.
    sleepers: AtomicUsize,
    /// Parker: token + condvar, touched only on the empty slow path.
    wake_token: Mutex<bool>,
    wake_cv: Condvar,
    /// Fast-path capacity of each sender lane.
    ring_capacity: usize,
}

impl<M> MailCore<M> {
    pub(crate) fn new(ring_capacity: usize) -> Arc<Self> {
        Arc::new(MailCore {
            lanes: Mutex::new(Vec::new()),
            lanes_epoch: AtomicU64::new(0),
            control: Mutex::new(VecDeque::new()),
            control_len: AtomicUsize::new(0),
            depth: AtomicUsize::new(0),
            killed: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            wake_token: Mutex::new(false),
            wake_cv: Condvar::new(),
            ring_capacity,
        })
    }

    pub(crate) fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Attach a fresh SPSC lane for one sender incarnation.
    pub(crate) fn attach_lane(&self) -> Arc<SpscRing<M>> {
        let ring = Arc::new(SpscRing::with_capacity(self.ring_capacity));
        let mut lanes = self.lanes.lock();
        lanes.push(ring.clone());
        self.lanes_epoch.fetch_add(1, Ordering::Release);
        ring
    }

    /// Account one enqueued message and wake the receiver if it is (or
    /// is about to be) parked. SeqCst on both sides closes the classic
    /// sleep/wake race: either the producer's depth increment is ordered
    /// before the consumer's pre-park depth check (consumer skips the
    /// park), or the consumer's sleeper announcement is ordered before
    /// the producer's sleeper check (producer posts the wake token).
    pub(crate) fn notify_push(&self) {
        self.depth.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            self.wake(false);
        }
    }

    /// Enqueue on the control lane; returns false if the mailbox is
    /// closed. Kill clears this lane under the same lock, so no message
    /// survives in it past a kill.
    pub(crate) fn push_control(&self, m: M) -> bool {
        if self.is_killed() {
            return false;
        }
        {
            let mut q = self.control.lock();
            if self.is_killed() {
                return false;
            }
            q.push_back(m);
            self.control_len.store(q.len(), Ordering::Release);
        }
        self.notify_push();
        true
    }

    /// Close and empty the mailbox (fail-stop crash).
    pub(crate) fn kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
        {
            let mut q = self.control.lock();
            let n = q.len();
            q.clear();
            self.control_len.store(0, Ordering::Release);
            if n > 0 {
                self.depth.fetch_sub(n, Ordering::SeqCst);
            }
        }
        self.wake(true);
    }

    fn wake(&self, all: bool) {
        let mut token = self.wake_token.lock();
        *token = true;
        drop(token);
        if all {
            self.wake_cv.notify_all();
        } else {
            self.wake_cv.notify_one();
        }
    }

    /// Park until a wake token is posted, the deadline passes, or there
    /// is observably work/kill to process. Consumes the token.
    fn park(&self, deadline: Option<Instant>) {
        let mut token = self.wake_token.lock();
        loop {
            if *token {
                *token = false;
                return;
            }
            if self.killed.load(Ordering::SeqCst) || self.depth.load(Ordering::SeqCst) > 0 {
                return;
            }
            match deadline {
                Some(d) => {
                    if self.wake_cv.wait_until(&mut token, d).timed_out() {
                        return;
                    }
                }
                None => self.wake_cv.wait(&mut token),
            }
        }
    }
}

/// The receiving end of a node's inbound queue.
///
/// Not `Sync`: the consumer side keeps a private (uncontended) snapshot
/// of its sender lanes, matching the single-consumer ring contract. The
/// mailbox still moves freely between threads.
pub struct Mailbox<M> {
    pub(crate) core: Arc<MailCore<M>>,
    /// Consumer's snapshot of the sender lanes (refreshed by epoch).
    lanes: RefCell<Vec<Arc<SpscRing<M>>>>,
    lanes_epoch: Cell<u64>,
    /// Round-robin start position across lanes, for drain fairness.
    cursor: Cell<usize>,
}

impl<M> Mailbox<M> {
    pub(crate) fn new(core: Arc<MailCore<M>>) -> Self {
        Mailbox {
            core,
            lanes: RefCell::new(Vec::new()),
            lanes_epoch: Cell::new(0),
            cursor: Cell::new(0),
        }
    }

    fn refresh_lanes(&self) {
        let epoch = self.core.lanes_epoch.load(Ordering::Acquire);
        if epoch != self.lanes_epoch.get() {
            *self.lanes.borrow_mut() = self.core.lanes.lock().clone();
            self.lanes_epoch.set(epoch);
        }
    }

    /// Pop one message from any lane (round-robin) or the control lane.
    fn poll_once(&self) -> Option<M> {
        self.refresh_lanes();
        let lanes = self.lanes.borrow();
        let n = lanes.len();
        if n > 0 {
            let start = self.cursor.get() % n;
            for i in 0..n {
                let idx = (start + i) % n;
                if let Some(m) = lanes[idx].pop() {
                    self.core.depth.fetch_sub(1, Ordering::SeqCst);
                    self.cursor.set(idx + 1);
                    return Some(m);
                }
            }
        }
        if self.core.control_len.load(Ordering::Acquire) > 0 {
            let mut q = self.core.control.lock();
            if let Some(m) = q.pop_front() {
                self.core.control_len.store(q.len(), Ordering::Release);
                drop(q);
                self.core.depth.fetch_sub(1, Ordering::SeqCst);
                return Some(m);
            }
        }
        None
    }

    /// Discard everything queued (crash empties channels).
    fn drain_all(&self) {
        while self.poll_once().is_some() {}
    }

    /// Blocking receive. Returns [`RecvError::Killed`] when the node was
    /// crashed, which the hosting thread uses to unwind fail-stop.
    pub fn recv(&self) -> Result<M, RecvError> {
        loop {
            if self.core.is_killed() {
                self.drain_all();
                return Err(RecvError::Killed);
            }
            if let Some(m) = self.poll_once() {
                return Ok(m);
            }
            self.core.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.core.depth.load(Ordering::SeqCst) == 0 && !self.core.is_killed() {
                self.core.park(None);
            }
            self.core.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<M, RecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.core.is_killed() {
                self.drain_all();
                return Err(RecvError::Killed);
            }
            if let Some(m) = self.poll_once() {
                return Ok(m);
            }
            if Instant::now() >= deadline {
                return Err(RecvError::Timeout);
            }
            self.core.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.core.depth.load(Ordering::SeqCst) == 0 && !self.core.is_killed() {
                self.core.park(Some(deadline));
            }
            self.core.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Non-blocking receive; `Ok(None)` when empty.
    pub fn try_recv(&self) -> Result<Option<M>, RecvError> {
        if self.core.is_killed() {
            self.drain_all();
            return Err(RecvError::Killed);
        }
        Ok(self.poll_once())
    }

    /// Blocking batched receive: waits for at least one message, then
    /// drains up to `max` without further blocking. One parker wakeup is
    /// amortized over the whole burst. Appends to `out` and returns the
    /// number received.
    pub fn recv_many(&self, out: &mut Vec<M>, max: usize) -> Result<usize, RecvError> {
        if max == 0 {
            return Ok(0);
        }
        let first = self.recv()?;
        out.push(first);
        let mut n = 1;
        while n < max && !self.core.is_killed() {
            match self.poll_once() {
                Some(m) => {
                    out.push(m);
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }

    /// Number of queued messages (lock-free; diagnostic).
    pub fn len(&self) -> usize {
        self.core.depth.load(Ordering::SeqCst)
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the node incarnation owning this mailbox was killed.
    pub fn is_killed(&self) -> bool {
        self.core.is_killed()
    }
}

/// The sending half of one sender incarnation's SPSC lane into a
/// mailbox. Exactly one producer may use it (the SPSC contract) — the
/// fabric guarantees this by caching at most one lane per
/// (identity handle, destination) and never sharing identity handles'
/// route caches.
pub(crate) struct Lane<M> {
    core: Arc<MailCore<M>>,
    ring: Arc<SpscRing<M>>,
}

impl<M> Lane<M> {
    pub(crate) fn attach(core: &Arc<MailCore<M>>) -> Self {
        Lane {
            core: core.clone(),
            ring: core.attach_lane(),
        }
    }

    /// Whether the receiving mailbox was killed (lane is dead).
    pub(crate) fn is_closed(&self) -> bool {
        self.core.is_killed()
    }

    /// Enqueue `m`; hands the message back if the mailbox is closed so
    /// callers can reclaim it without cloning.
    pub(crate) fn push(&self, m: M) -> Result<(), M> {
        if self.is_closed() {
            return Err(m);
        }
        self.ring.push(m);
        self.core.notify_push();
        Ok(())
    }
}

/// A producer handle for one SPSC lane, as handed to the `hotpath`
/// bench. Single producer per handle (the SPSC contract).
#[doc(hidden)]
pub struct BenchSender<M>(Lane<M>);

impl<M> BenchSender<M> {
    /// Enqueue a message; `false` if the mailbox was killed.
    pub fn send(&self, m: M) -> bool {
        self.0.push(m).is_ok()
    }
}

/// Build a raw (producer lane, mailbox) pair outside the fabric — the
/// `hotpath` bench's microbench handle, bypassing registry and routing.
#[doc(hidden)]
pub fn bench_pair<M>(ring_capacity: usize) -> (BenchSender<M>, Mailbox<M>) {
    let (mut senders, mb) = bench_lanes(ring_capacity, 1);
    (senders.pop().expect("one lane"), mb)
}

/// Build `producers` independent SPSC lanes feeding one mailbox — the
/// multi-producer shape of the `hotpath` throughput bench.
#[doc(hidden)]
pub fn bench_lanes<M>(ring_capacity: usize, producers: usize) -> (Vec<BenchSender<M>>, Mailbox<M>) {
    let core = MailCore::new(ring_capacity);
    let senders = (0..producers)
        .map(|_| BenchSender(Lane::attach(&core)))
        .collect();
    (senders, Mailbox::new(core))
}

/// The pre-rework mutex+condvar mailbox, retained verbatim as the
/// *before* baseline of the `hotpath` bench (BENCH_hotpath.json compares
/// this against the SPSC-ring mailbox above). Not used by the fabric.
pub mod legacy {
    use crate::error::RecvError;
    use parking_lot::{Condvar, Mutex};
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Shared core of the legacy mailbox: one mutex-protected queue.
    pub struct LegacyMailCore<M> {
        queue: Mutex<VecDeque<M>>,
        cv: Condvar,
        killed: AtomicBool,
    }

    impl<M> LegacyMailCore<M> {
        /// A fresh legacy core.
        pub fn new() -> Arc<Self> {
            Arc::new(LegacyMailCore {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                killed: AtomicBool::new(false),
            })
        }

        /// Enqueue a message; returns false if the mailbox is closed.
        pub fn push(&self, m: M) -> bool {
            if self.killed.load(Ordering::Acquire) {
                return false;
            }
            let mut q = self.queue.lock();
            if self.killed.load(Ordering::Acquire) {
                return false;
            }
            q.push_back(m);
            drop(q);
            self.cv.notify_one();
            true
        }

        /// Close and empty the mailbox.
        pub fn kill(&self) {
            let mut q = self.queue.lock();
            self.killed.store(true, Ordering::Release);
            q.clear();
            drop(q);
            self.cv.notify_all();
        }
    }

    /// Receiving end of the legacy mailbox.
    pub struct LegacyMailbox<M> {
        core: Arc<LegacyMailCore<M>>,
    }

    impl<M> LegacyMailbox<M> {
        /// Wrap a legacy core.
        pub fn new(core: Arc<LegacyMailCore<M>>) -> Self {
            LegacyMailbox { core }
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<M, RecvError> {
            let mut q = self.core.queue.lock();
            loop {
                if self.core.killed.load(Ordering::Acquire) {
                    return Err(RecvError::Killed);
                }
                if let Some(m) = q.pop_front() {
                    return Ok(m);
                }
                self.core.cv.wait(&mut q);
            }
        }

        /// Blocking receive with a timeout. Same contract as
        /// [`Mailbox::recv_timeout`]: a kill beats a concurrent timeout,
        /// and a message that raced the deadline is still delivered.
        ///
        /// [`Mailbox::recv_timeout`]: crate::Mailbox::recv_timeout
        pub fn recv_timeout(&self, timeout: Duration) -> Result<M, RecvError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.core.queue.lock();
            loop {
                if self.core.killed.load(Ordering::Acquire) {
                    return Err(RecvError::Killed);
                }
                if let Some(m) = q.pop_front() {
                    return Ok(m);
                }
                if self.core.cv.wait_until(&mut q, deadline).timed_out() {
                    if self.core.killed.load(Ordering::Acquire) {
                        return Err(RecvError::Killed);
                    }
                    return match q.pop_front() {
                        Some(m) => Ok(m),
                        None => Err(RecvError::Timeout),
                    };
                }
            }
        }

        /// Non-blocking receive; `Ok(None)` when empty.
        pub fn try_recv(&self) -> Result<Option<M>, RecvError> {
            if self.core.killed.load(Ordering::Acquire) {
                return Err(RecvError::Killed);
            }
            Ok(self.core.queue.lock().pop_front())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// A mailbox plus a producer lane, mimicking one fabric sender.
    fn pair() -> (Lane<u32>, Mailbox<u32>) {
        let core = MailCore::new(crate::ring::DEFAULT_RING_CAPACITY);
        (Lane::attach(&core), Mailbox::new(core))
    }

    fn tiny_pair(cap: usize) -> (Lane<u32>, Mailbox<u32>) {
        let core = MailCore::new(cap);
        (Lane::attach(&core), Mailbox::new(core))
    }

    #[test]
    fn push_then_recv() {
        let (lane, mb) = pair();
        assert!(lane.push(7).is_ok());
        assert_eq!(mb.recv().unwrap(), 7);
    }

    #[test]
    fn fifo_order() {
        let (lane, mb) = pair();
        for i in 0..100 {
            lane.push(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(mb.recv().unwrap(), i);
        }
    }

    #[test]
    fn fifo_order_across_wraparound() {
        // Lane capacity far below the message count: the ring wraps and
        // spills repeatedly while the consumer drains concurrently.
        let (lane, mb) = tiny_pair(4);
        let producer = thread::spawn(move || {
            for i in 0..50_000u32 {
                lane.push(i).unwrap();
            }
        });
        for i in 0..50_000u32 {
            assert_eq!(mb.recv().unwrap(), i, "per-sender FIFO across wrap");
        }
        producer.join().unwrap();
    }

    #[test]
    fn recv_blocks_until_push() {
        let (lane, mb) = pair();
        let h = thread::spawn(move || mb.recv().unwrap());
        thread::sleep(Duration::from_millis(20));
        lane.push(42).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn kill_empties_and_wakes() {
        let (lane, mb) = pair();
        lane.push(1).unwrap();
        mb.core.kill();
        assert_eq!(mb.recv(), Err(RecvError::Killed));
        assert!(lane.push(2).is_err(), "push into killed mailbox must fail");
        assert_eq!(mb.len(), 0, "kill + drain leaves no accounted depth");
    }

    #[test]
    fn kill_wakes_blocked_receiver() {
        let (lane, mb) = pair();
        let h = thread::spawn(move || mb.recv());
        thread::sleep(Duration::from_millis(20));
        lane.core.kill();
        assert_eq!(h.join().unwrap(), Err(RecvError::Killed));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_lane, mb) = pair();
        let t0 = Instant::now();
        assert_eq!(
            mb.recv_timeout(Duration::from_millis(30)),
            Err(RecvError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn try_recv_nonblocking() {
        let (lane, mb) = pair();
        assert_eq!(mb.try_recv().unwrap(), None);
        lane.push(5).unwrap();
        assert_eq!(mb.try_recv().unwrap(), Some(5));
    }

    #[test]
    fn control_lane_delivers_and_dies_with_the_mailbox() {
        let core = MailCore::new(8);
        let mb = Mailbox::new(core.clone());
        assert!(core.push_control(11));
        assert_eq!(mb.recv().unwrap(), 11);
        assert!(core.push_control(12));
        core.kill();
        assert!(!core.push_control(13));
        assert_eq!(mb.recv(), Err(RecvError::Killed));
    }

    #[test]
    fn concurrent_senders_all_delivered() {
        let core = MailCore::new(16);
        let mb = Mailbox::new(core.clone());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let lane = Lane::attach(&core);
            handles.push(thread::spawn(move || {
                for i in 0..1000u32 {
                    assert!(lane.push(t * 1000 + i).is_ok());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..8000 {
            got.push(mb.recv().unwrap());
        }
        got.sort_unstable();
        let expected: Vec<u32> = (0..8u32)
            .flat_map(|t| (0..1000).map(move |i| t * 1000 + i))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn per_sender_order_preserved() {
        let (lane, mb) = pair();
        let h = thread::spawn(move || {
            for i in 0..5000u32 {
                lane.push(i).unwrap();
            }
        });
        h.join().unwrap();
        let mut last = None;
        while let Some(v) = mb.try_recv().unwrap() {
            if let Some(l) = last {
                assert!(v > l);
            }
            last = Some(v);
        }
        assert_eq!(last, Some(4999));
    }

    #[test]
    fn recv_many_drains_a_burst_in_one_call() {
        let (lane, mb) = pair();
        for i in 0..10u32 {
            lane.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(mb.recv_many(&mut out, 8).unwrap(), 8);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(mb.recv_many(&mut out, 8).unwrap(), 2);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn recv_many_blocks_for_the_first_message() {
        let (lane, mb) = pair();
        let h = thread::spawn(move || {
            let mut out = Vec::new();
            mb.recv_many(&mut out, 4).unwrap();
            out
        });
        thread::sleep(Duration::from_millis(20));
        lane.push(9).unwrap();
        assert_eq!(h.join().unwrap(), vec![9]);
    }

    #[test]
    fn len_is_lock_free_and_tracks_depth() {
        let (lane, mb) = pair();
        assert!(mb.is_empty());
        for i in 0..5 {
            lane.push(i).unwrap();
        }
        assert_eq!(mb.len(), 5);
        mb.recv().unwrap();
        assert_eq!(mb.len(), 4);
    }

    #[test]
    fn eight_producer_stress_with_tiny_rings() {
        // Rings of capacity 2 force constant wraparound + spill while 8
        // producers hammer and the consumer drains with recv_many.
        let core = MailCore::new(2);
        let mb = Mailbox::new(core.clone());
        // Miri interprets ~1000× slower than native; shrink the hammer
        // (CI runs this test under Miri to check the atomics).
        const PER: u32 = if cfg!(miri) { 300 } else { 20_000 };
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let lane = Lane::attach(&core);
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    lane.push((t << 24) | i).unwrap();
                }
            }));
        }
        let mut last = [None::<u32>; 8];
        let mut total = 0u32;
        let mut buf = Vec::with_capacity(256);
        while total < 8 * PER {
            buf.clear();
            let n = mb.recv_many(&mut buf, 256).unwrap();
            for &v in &buf {
                let (t, i) = ((v >> 24) as usize, v & 0x00FF_FFFF);
                if let Some(prev) = last[t] {
                    assert_eq!(prev + 1, i, "per-sender FIFO under stress");
                }
                last[t] = Some(i);
            }
            total += n as u32;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(mb.is_empty());
    }

    mod legacy_baseline {
        use crate::error::RecvError;
        use crate::mailbox::legacy::{LegacyMailCore, LegacyMailbox};
        use crate::mailbox::{Lane, MailCore, Mailbox};
        use std::time::{Duration, Instant};

        #[test]
        fn legacy_still_works_as_bench_baseline() {
            let core = LegacyMailCore::new();
            let mb = LegacyMailbox::new(core.clone());
            assert!(core.push(1u32));
            assert_eq!(mb.recv().unwrap(), 1);
            core.kill();
            assert!(!core.push(2));
            assert_eq!(mb.recv(), Err(RecvError::Killed));
        }

        // The legacy mailbox is the semantic reference for the ring
        // rework: every observable behaviour the protocol relies on —
        // timeout expiry, kill-empties-channels, stale incarnations
        // fenced off from their successor — must be identical across
        // the two implementations. A hotpath-bench comparison is only
        // honest if both sides play the same game.

        #[test]
        fn parity_recv_timeout_expiry() {
            // Both mailboxes time out on silence...
            let lcore = LegacyMailCore::<u32>::new();
            let lmb = LegacyMailbox::new(lcore.clone());
            let rcore = MailCore::<u32>::new(8);
            let rmb = Mailbox::new(rcore.clone());
            let t0 = Instant::now();
            assert_eq!(
                lmb.recv_timeout(Duration::from_millis(30)),
                Err(RecvError::Timeout)
            );
            assert!(t0.elapsed() >= Duration::from_millis(25));
            let t0 = Instant::now();
            assert_eq!(
                rmb.recv_timeout(Duration::from_millis(30)),
                Err(RecvError::Timeout)
            );
            assert!(t0.elapsed() >= Duration::from_millis(25));
            // ...and both deliver a queued message without waiting out
            // the deadline.
            assert!(lcore.push(7));
            assert!(rcore.push_control(7));
            assert_eq!(lmb.recv_timeout(Duration::from_secs(5)), Ok(7));
            assert_eq!(rmb.recv_timeout(Duration::from_secs(5)), Ok(7));
        }

        #[test]
        fn parity_kill_empties_channels() {
            // §4.1: a crash empties every channel of the crashed
            // process. Queued messages must not survive the kill in
            // either implementation, and recv reports Killed, never a
            // stale message.
            let lcore = LegacyMailCore::<u32>::new();
            let lmb = LegacyMailbox::new(lcore.clone());
            assert!(lcore.push(1));
            lcore.kill();
            assert_eq!(
                lmb.recv_timeout(Duration::from_secs(1)),
                Err(RecvError::Killed)
            );
            assert!(!lcore.push(2));

            let rcore = MailCore::<u32>::new(8);
            let rmb = Mailbox::new(rcore.clone());
            let lane = Lane::attach(&rcore);
            assert!(lane.push(1).is_ok());
            rcore.kill();
            assert_eq!(
                rmb.recv_timeout(Duration::from_secs(1)),
                Err(RecvError::Killed)
            );
            assert!(lane.push(2).is_err());
            assert_eq!(rmb.len(), 0, "kill + drain leaves no accounted depth");
        }

        #[test]
        fn parity_stale_incarnation_fencing() {
            // A sender still holding the dead incarnation's mailbox
            // handle must not be able to reach the successor: the new
            // incarnation gets a fresh core, and pushes into the killed
            // one keep failing. (The fabric enforces this by minting a
            // new core per registration; the mailbox-level contract is
            // that a killed core never accepts or yields anything.)
            let old = LegacyMailCore::<u32>::new();
            let _old_mb = LegacyMailbox::new(old.clone());
            old.kill();
            let new = LegacyMailCore::<u32>::new();
            let new_mb = LegacyMailbox::new(new.clone());
            assert!(!old.push(1), "stale legacy handle stays fenced");
            assert!(new.push(2));
            assert_eq!(new_mb.recv_timeout(Duration::from_secs(1)), Ok(2));

            let old = MailCore::<u32>::new(8);
            let old_lane = Lane::attach(&old);
            let _old_mb = Mailbox::new(old.clone());
            old.kill();
            let new = MailCore::<u32>::new(8);
            let new_mb = Mailbox::new(new.clone());
            let new_lane = Lane::attach(&new);
            assert!(old_lane.push(1).is_err(), "stale ring lane stays fenced");
            assert!(new_lane.push(2).is_ok());
            assert_eq!(new_mb.recv_timeout(Duration::from_secs(1)), Ok(2));
            assert!(
                new_mb.is_empty(),
                "nothing from the dead incarnation leaked across"
            );
        }
    }
}
