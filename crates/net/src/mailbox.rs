//! Blocking, killable mailboxes — the receive side of the fabric.
//!
//! A [`Mailbox`] is the single inbound queue of one node incarnation
//! (the analog of the daemon's `select()` loop over all of its sockets).
//! Messages from any number of senders are interleaved in arrival order;
//! per-sender FIFO order is preserved because each sender enqueues under
//! the same lock in program order.
//!
//! Killing the node closes the mailbox *and empties it* — the paper's
//! crash-and-recover step empties every channel connected to the crashed
//! process.

use crate::error::RecvError;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub(crate) struct MailCore<M> {
    pub(crate) queue: Mutex<VecDeque<M>>,
    pub(crate) cv: Condvar,
    pub(crate) killed: AtomicBool,
}

impl<M> MailCore<M> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(MailCore {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            killed: AtomicBool::new(false),
        })
    }

    /// Enqueue a message; returns false if the mailbox is closed.
    pub(crate) fn push(&self, m: M) -> bool {
        if self.killed.load(Ordering::Acquire) {
            return false;
        }
        let mut q = self.queue.lock();
        // Re-check under the lock: kill() also takes it.
        if self.killed.load(Ordering::Acquire) {
            return false;
        }
        q.push_back(m);
        drop(q);
        self.cv.notify_one();
        true
    }

    /// Close and empty the mailbox (fail-stop crash).
    pub(crate) fn kill(&self) {
        let mut q = self.queue.lock();
        self.killed.store(true, Ordering::Release);
        q.clear();
        drop(q);
        self.cv.notify_all();
    }
}

/// The receiving end of a node's inbound queue.
pub struct Mailbox<M> {
    pub(crate) core: Arc<MailCore<M>>,
}

impl<M> Mailbox<M> {
    /// Blocking receive. Returns [`RecvError::Killed`] when the node was
    /// crashed, which the hosting thread uses to unwind fail-stop.
    pub fn recv(&self) -> Result<M, RecvError> {
        let mut q = self.core.queue.lock();
        loop {
            if self.core.killed.load(Ordering::Acquire) {
                return Err(RecvError::Killed);
            }
            if let Some(m) = q.pop_front() {
                return Ok(m);
            }
            self.core.cv.wait(&mut q);
        }
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<M, RecvError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.core.queue.lock();
        loop {
            if self.core.killed.load(Ordering::Acquire) {
                return Err(RecvError::Killed);
            }
            if let Some(m) = q.pop_front() {
                return Ok(m);
            }
            if self.core.cv.wait_until(&mut q, deadline).timed_out() {
                return if self.core.killed.load(Ordering::Acquire) {
                    Err(RecvError::Killed)
                } else if let Some(m) = q.pop_front() {
                    Ok(m)
                } else {
                    Err(RecvError::Timeout)
                };
            }
        }
    }

    /// Non-blocking receive; `Ok(None)` when empty.
    pub fn try_recv(&self) -> Result<Option<M>, RecvError> {
        if self.core.killed.load(Ordering::Acquire) {
            return Err(RecvError::Killed);
        }
        Ok(self.core.queue.lock().pop_front())
    }

    /// Number of queued messages (diagnostic).
    pub fn len(&self) -> usize {
        self.core.queue.lock().len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the node incarnation owning this mailbox was killed.
    pub fn is_killed(&self) -> bool {
        self.core.killed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn pair() -> (Arc<MailCore<u32>>, Mailbox<u32>) {
        let core = MailCore::new();
        (core.clone(), Mailbox { core })
    }

    #[test]
    fn push_then_recv() {
        let (core, mb) = pair();
        assert!(core.push(7));
        assert_eq!(mb.recv().unwrap(), 7);
    }

    #[test]
    fn fifo_order() {
        let (core, mb) = pair();
        for i in 0..100 {
            core.push(i);
        }
        for i in 0..100 {
            assert_eq!(mb.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_blocks_until_push() {
        let (core, mb) = pair();
        let h = thread::spawn(move || mb.recv().unwrap());
        thread::sleep(Duration::from_millis(20));
        core.push(42);
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn kill_empties_and_wakes() {
        let (core, mb) = pair();
        core.push(1);
        core.kill();
        assert_eq!(mb.recv(), Err(RecvError::Killed));
        assert!(!core.push(2), "push into killed mailbox must fail");
    }

    #[test]
    fn kill_wakes_blocked_receiver() {
        let (core, mb) = pair();
        let h = thread::spawn(move || mb.recv());
        thread::sleep(Duration::from_millis(20));
        core.kill();
        assert_eq!(h.join().unwrap(), Err(RecvError::Killed));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_core, mb) = pair();
        let t0 = std::time::Instant::now();
        assert_eq!(
            mb.recv_timeout(Duration::from_millis(30)),
            Err(RecvError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn try_recv_nonblocking() {
        let (core, mb) = pair();
        assert_eq!(mb.try_recv().unwrap(), None);
        core.push(5);
        assert_eq!(mb.try_recv().unwrap(), Some(5));
    }

    #[test]
    fn concurrent_senders_all_delivered() {
        let (core, mb) = pair();
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let c = core.clone();
            handles.push(thread::spawn(move || {
                for i in 0..1000u32 {
                    assert!(c.push(t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..8000 {
            got.push(mb.recv().unwrap());
        }
        got.sort_unstable();
        let expected: Vec<u32> = (0..8u32)
            .flat_map(|t| (0..1000).map(move |i| t * 1000 + i))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn per_sender_order_preserved() {
        let (core, mb) = pair();
        let c = core.clone();
        let h = thread::spawn(move || {
            for i in 0..5000u32 {
                c.push(i);
            }
        });
        h.join().unwrap();
        let mut last = None;
        while let Some(v) = mb.try_recv().unwrap() {
            if let Some(l) = last {
                assert!(v > l);
            }
            last = Some(v);
        }
        assert_eq!(last, Some(4999));
    }
}
