//! Bounded lock-free SPSC ring with an unbounded spill lane.
//!
//! One ring carries the traffic of exactly one (sender incarnation,
//! receiver incarnation) pair — the in-process analog of one TCP socket.
//! The common case (ring not full) is wait-free on both sides: the
//! producer writes a slot and publishes it with one `Release` store of
//! `tail`; the consumer observes it with one `Acquire` load and retires
//! it with one `Release` store of `head`. No mutex, no syscall, no
//! allocation per message.
//!
//! When the ring fills (receiver stalled), the producer overflows into a
//! mutex-protected *spill lane* instead of blocking. Blocking here would
//! deadlock two daemons resending to each other during a restart storm,
//! and dropping would violate the §4.1 "reliable while both ends live"
//! contract — so the bounded ring bounds the *fast path*, not delivery.
//!
//! FIFO across the two lanes holds by construction:
//!
//! * the producer pushes to the ring only while it observes the spill
//!   empty (`spilled == 0`), and spills otherwise;
//! * the consumer drains the ring before touching the spill.
//!
//! So if a spill item S and a ring item R are simultaneously queued, R
//! was pushed while the spill was observed empty — i.e. after S had
//! already been consumed, a contradiction — hence R is older than S and
//! the consumer's ring-first order is emission order. `spilled` is only
//! ever raised by the producer and lowered by the consumer (both under
//! the spill mutex), so a stale lock-free read can only send the
//! producer to the (always-correct) spill path, never past it.

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default fast-path capacity of one ring (messages). Power of two.
pub(crate) const DEFAULT_RING_CAPACITY: usize = 256;

/// Pad to a cache line so `head` and `tail` do not false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// The single-producer / single-consumer ring. `push` may only ever be
/// called by one thread at a time, `pop` by one thread at a time (they
/// may be different threads, or the same).
pub(crate) struct SpscRing<M> {
    buf: Box<[UnsafeCell<MaybeUninit<M>>]>,
    mask: usize,
    /// Consumer position (next slot to read). Only the consumer stores.
    head: CachePadded<AtomicUsize>,
    /// Producer position (next slot to write). Only the producer stores.
    tail: CachePadded<AtomicUsize>,
    /// Overflow lane; unbounded so the producer never blocks or drops.
    spill: Mutex<VecDeque<M>>,
    /// Length of `spill`, maintained under its mutex, readable lock-free.
    spilled: AtomicUsize,
}

// SAFETY: the slot buffer is only touched according to the SPSC
// publication protocol (write before Release-store of tail; read after
// Acquire-load of tail), so sending the ring between threads and sharing
// it by reference is sound whenever `M` itself can move between threads.
unsafe impl<M: Send> Send for SpscRing<M> {}
unsafe impl<M: Send> Sync for SpscRing<M> {}

impl<M> SpscRing<M> {
    /// A ring with at least `capacity` fast-path slots (rounded up to a
    /// power of two, minimum 2).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buf = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscRing {
            buf,
            mask: cap - 1,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
            spill: Mutex::new(VecDeque::new()),
            spilled: AtomicUsize::new(0),
        }
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Enqueue `m`. Never blocks (beyond the brief spill mutex) and never
    /// fails: overflow goes to the spill lane. Single producer only.
    pub(crate) fn push(&self, m: M) {
        // FIFO: once anything is spilled, keep spilling until the
        // consumer has drained the spill back to empty.
        if self.spilled.load(Ordering::Acquire) > 0 {
            return self.spill_push(m);
        }
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.capacity() {
            return self.spill_push(m);
        }
        // SAFETY: the slot at `tail` is unoccupied — the consumer frees
        // slots strictly below `head + capacity`, and we checked
        // `tail - head < capacity`. Single producer, so no other writer.
        unsafe {
            (*self.buf[tail & self.mask].get()).write(m);
        }
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
    }

    fn spill_push(&self, m: M) {
        let mut q = self.spill.lock();
        q.push_back(m);
        self.spilled.store(q.len(), Ordering::Release);
    }

    /// Dequeue the oldest message, ring first then spill. Single
    /// consumer only.
    pub(crate) fn pop(&self) -> Option<M> {
        loop {
            let head = self.head.0.load(Ordering::Relaxed);
            let tail = self.tail.0.load(Ordering::Acquire);
            if head != tail {
                // SAFETY: `head < tail` means the producer published this
                // slot (Acquire above pairs with its Release), and the
                // single consumer has not yet consumed it.
                let m = unsafe { (*self.buf[head & self.mask].get()).assume_init_read() };
                self.head.0.store(head.wrapping_add(1), Ordering::Release);
                return Some(m);
            }
            if self.spilled.load(Ordering::Acquire) == 0 {
                return None;
            }
            // Spill nonempty. The Acquire above pairs with the producer's
            // Release store of `spilled`, making every ring publication
            // that *preceded* the spill visible — our `tail` read at the
            // top may have been stale and missed an older ring item.
            // Re-check the ring; only pop the spill once the ring is
            // confirmed drained. (While the spill is nonempty the
            // producer keeps spilling, so no newer item can enter the
            // ring under us.)
            if self.tail.0.load(Ordering::Acquire) != head {
                continue;
            }
            let mut q = self.spill.lock();
            let m = q.pop_front();
            self.spilled.store(q.len(), Ordering::Release);
            return m;
        }
    }

    /// Whether both lanes are observably empty (racy, diagnostic only).
    #[cfg(test)]
    pub(crate) fn is_empty_hint(&self) -> bool {
        self.head.0.load(Ordering::Acquire) == self.tail.0.load(Ordering::Acquire)
            && self.spilled.load(Ordering::Acquire) == 0
    }
}

impl<M> Drop for SpscRing<M> {
    fn drop(&mut self) {
        // Drain remaining occupied slots so their destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let r = SpscRing::with_capacity(8);
        for i in 0..8 {
            r.push(i);
        }
        for i in 0..8 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn fifo_across_wraparound() {
        let r = SpscRing::with_capacity(4);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        // Push/pop in a skewed pattern so head/tail wrap many times.
        for step in 0..1000 {
            let burst = (step % 3) + 1;
            for _ in 0..burst {
                r.push(next_in);
                next_in += 1;
            }
            for _ in 0..(step % 4) {
                if let Some(v) = r.pop() {
                    assert_eq!(v, next_out);
                    next_out += 1;
                }
            }
        }
        while let Some(v) = r.pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, next_in);
    }

    #[test]
    fn overflow_spills_and_preserves_order() {
        let r = SpscRing::with_capacity(4);
        for i in 0..100u32 {
            r.push(i);
        }
        for i in 0..100u32 {
            assert_eq!(r.pop(), Some(i), "order across ring+spill");
        }
        assert_eq!(r.pop(), None);
        // After the spill drains, the fast path is used again.
        r.push(7);
        assert!(!r.is_empty_hint());
        assert_eq!(r.pop(), Some(7));
    }

    #[test]
    fn concurrent_producer_consumer_ordered() {
        let r = Arc::new(SpscRing::with_capacity(16));
        let p = r.clone();
        // Shrunk under Miri (CI runs this interpreted, ~1000× slower).
        const N: u64 = if cfg!(miri) { 500 } else { 100_000 };
        let producer = thread::spawn(move || {
            for i in 0..N {
                p.push(i);
            }
        });
        let mut expect = 0u64;
        while expect < N {
            if let Some(v) = r.pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn drop_runs_destructors_of_queued_messages() {
        let counter = Arc::new(AtomicUsize::new(0));
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let r = SpscRing::with_capacity(4);
        for _ in 0..10 {
            r.push(Probe(counter.clone())); // 4 in ring, 6 spilled
        }
        drop(r);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
