//! In-memory [`Transport`] backend.
//!
//! [`MemNet`] is a process-local hub that connects any number of
//! [`MemTransport`] endpoints with the same frame/event semantics the
//! socket backend provides — FIFO frames, `PeerUp` on attach,
//! `PeerDown` broadcast on [`MemNet::kill`]. It exists so the gateway
//! layer and the fail-stop plumbing can be tested transport-generically
//! (and deterministically) without opening sockets.

use crate::transport::{DownCause, Transport, TransportError, TransportEvent};
use crossbeam_channel::{unbounded, Receiver, Sender};
use mvr_core::ids::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

struct Endpoint {
    events: Sender<TransportEvent>,
    incarnation: u64,
}

#[derive(Default)]
struct Hub {
    endpoints: HashMap<NodeId, Endpoint>,
    next_incarnation: u64,
}

/// Process-local hub wiring [`MemTransport`] endpoints together.
#[derive(Clone, Default)]
pub struct MemNet {
    hub: Arc<Mutex<Hub>>,
}

impl MemNet {
    /// A fresh, empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a new endpoint for `node`. Existing endpoints observe
    /// `PeerUp` for it (and it observes `PeerUp` for each of them), so
    /// liveness bookkeeping matches the socket handshake. Re-attaching
    /// a node that already died yields a fresh, higher incarnation.
    pub fn attach(&self, node: NodeId) -> MemTransport {
        let (tx, rx) = unbounded();
        let mut hub = self.hub.lock();
        hub.next_incarnation += 1;
        let incarnation = hub.next_incarnation;
        for (&peer, ep) in hub.endpoints.iter() {
            let _ = ep.events.send(TransportEvent::PeerUp {
                peer: node,
                incarnation,
            });
            let _ = tx.send(TransportEvent::PeerUp {
                peer,
                incarnation: ep.incarnation,
            });
        }
        hub.endpoints.insert(
            node,
            Endpoint {
                events: tx,
                incarnation,
            },
        );
        MemTransport {
            hub: self.hub.clone(),
            node,
            events: Mutex::new(rx),
        }
    }

    /// Fail-stop `node`: detach its endpoint and broadcast `PeerDown`
    /// to every surviving endpoint. Its own transport handle stops
    /// receiving and can no longer send.
    pub fn kill(&self, node: NodeId) {
        let mut hub = self.hub.lock();
        if let Some(dead) = hub.endpoints.remove(&node) {
            for ep in hub.endpoints.values() {
                let _ = ep.events.send(TransportEvent::PeerDown {
                    peer: node,
                    incarnation: dead.incarnation,
                    cause: DownCause::Eof,
                });
            }
        }
    }

    /// Whether `node` currently has a live endpoint.
    pub fn is_attached(&self, node: NodeId) -> bool {
        self.hub.lock().endpoints.contains_key(&node)
    }
}

/// One endpoint on a [`MemNet`] hub.
pub struct MemTransport {
    hub: Arc<Mutex<Hub>>,
    node: NodeId,
    events: Mutex<Receiver<TransportEvent>>,
}

impl Transport for MemTransport {
    fn local_node(&self) -> NodeId {
        self.node
    }

    fn local_addr(&self) -> Option<String> {
        None
    }

    fn set_route(&self, _peer: NodeId, _addr: String) {}

    fn send(&self, peer: NodeId, payload: Vec<u8>) -> Result<(), TransportError> {
        let hub = self.hub.lock();
        if !hub.endpoints.contains_key(&self.node) {
            return Err(TransportError::Closed);
        }
        match hub.endpoints.get(&peer) {
            Some(ep) => {
                let _ = ep.events.send(TransportEvent::Frame {
                    from: self.node,
                    payload,
                });
                Ok(())
            }
            None => Err(TransportError::PeerDown(peer)),
        }
    }

    fn poll_event(&self, timeout: Duration) -> Option<TransportEvent> {
        self.events.lock().recv_timeout(timeout).ok()
    }

    fn shutdown(&self) {
        let mut hub = self.hub.lock();
        if let Some(dead) = hub.endpoints.remove(&self.node) {
            for ep in hub.endpoints.values() {
                let _ = ep.events.send(TransportEvent::PeerDown {
                    peer: self.node,
                    incarnation: dead.incarnation,
                    cause: DownCause::Closed,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::ids::{NodeId, Rank};

    fn cn(r: u32) -> NodeId {
        NodeId::Computing(Rank(r))
    }

    fn drain_until<F: Fn(&TransportEvent) -> bool>(t: &MemTransport, pred: F) -> TransportEvent {
        for _ in 0..64 {
            if let Some(ev) = t.poll_event(Duration::from_millis(100)) {
                if pred(&ev) {
                    return ev;
                }
            }
        }
        panic!("expected event not observed");
    }

    #[test]
    fn frames_flow_fifo_between_endpoints() {
        let net = MemNet::new();
        let a = net.attach(cn(0));
        let b = net.attach(cn(1));
        for i in 0..10u8 {
            a.send(cn(1), vec![i]).unwrap();
        }
        let mut seen = Vec::new();
        while seen.len() < 10 {
            if let TransportEvent::Frame { from, payload } =
                b.poll_event(Duration::from_millis(200)).expect("frame")
            {
                assert_eq!(from, cn(0));
                seen.push(payload[0]);
            }
        }
        assert_eq!(seen, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn kill_broadcasts_peer_down_and_fences_sender() {
        let net = MemNet::new();
        let a = net.attach(cn(0));
        let b = net.attach(cn(1));
        drain_until(
            &b,
            |e| matches!(e, TransportEvent::PeerUp { peer, .. } if *peer == cn(0)),
        );
        net.kill(cn(0));
        match drain_until(&b, |e| matches!(e, TransportEvent::PeerDown { .. })) {
            TransportEvent::PeerDown { peer, cause, .. } => {
                assert_eq!(peer, cn(0));
                assert_eq!(cause, DownCause::Eof);
            }
            _ => unreachable!(),
        }
        assert_eq!(a.send(cn(1), vec![1]), Err(TransportError::Closed));
        assert_eq!(b.send(cn(0), vec![1]), Err(TransportError::PeerDown(cn(0))));
    }

    #[test]
    fn reattach_gets_higher_incarnation() {
        let net = MemNet::new();
        let b = net.attach(cn(1));
        let _a1 = net.attach(cn(0));
        let first = match drain_until(
            &b,
            |e| matches!(e, TransportEvent::PeerUp { peer, .. } if *peer == cn(0)),
        ) {
            TransportEvent::PeerUp { incarnation, .. } => incarnation,
            _ => unreachable!(),
        };
        net.kill(cn(0));
        drain_until(
            &b,
            |e| matches!(e, TransportEvent::PeerDown { peer, .. } if *peer == cn(0)),
        );
        let _a2 = net.attach(cn(0));
        let second = match drain_until(
            &b,
            |e| matches!(e, TransportEvent::PeerUp { peer, .. } if *peer == cn(0)),
        ) {
            TransportEvent::PeerUp { incarnation, .. } => incarnation,
            _ => unreachable!(),
        };
        assert!(second > first);
    }
}
