//! The seeded chaos layer of the fabric ("turbulence").
//!
//! The paper's whole point is surviving *volatile* nodes; this module is
//! the systematic fault injector that exercises that claim. A
//! [`TurbulenceConfig`] installed on a [`Fabric`](crate::Fabric) hooks the
//! send/deliver path and injects, all from **one RNG seed**:
//!
//! * **per-link message delay** — every send sleeps a deterministic
//!   pseudo-random duration derived from `(seed, from, to, nth-send)`,
//!   perturbing thread interleavings without breaking the per-sender FIFO
//!   guarantee (the delay happens on the sending thread, before enqueue);
//! * **crash-on-Nth-send / crash-on-Nth-receive** ([`CountTrigger`]) —
//!   when a watched node's cumulative send (or delivery) counter reaches
//!   the trigger count, a whole fail-stop group of nodes is killed. Count
//!   triggers place a crash at an exact point in a node's own causal
//!   history (e.g. "mid-replay", "mid-checkpoint-upload"), which
//!   wall-clock sleeps can never do reliably;
//! * **scheduled kills** ([`ScheduledKill`]) — kill groups fired once the
//!   fabric observes (on any traffic) that their deadline has elapsed.
//!
//! Determinism contract: the *schedule* — which node dies at which point
//! of its own message history, and every injected delay value — is a pure
//! function of the seed and the configuration. (Thread interleaving
//! between nodes still varies across runs; the protocol must tolerate
//! every interleaving, which is exactly what the chaos soak asserts.)

use mvr_core::{NodeId, Rank};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Kill `kill` when `watch`'s monitored counter reaches `at`.
///
/// Counters are cumulative across incarnations of the same [`NodeId`], so
/// a second trigger at a higher count lands on the *reincarnation* —
/// typically while it is still replaying (crash-during-replay).
#[derive(Clone, Debug)]
pub struct CountTrigger {
    /// The node whose counter is watched.
    pub watch: NodeId,
    /// Fire when the counter reaches this value (1-based).
    pub at: u64,
    /// The fail-stop group to kill (usually the watched node plus its
    /// co-located twin, see [`fail_stop_group`]).
    pub kill: Vec<NodeId>,
}

/// Kill `kill` once `after` has elapsed since turbulence installation.
/// Fires lazily, on the next fabric activity past the deadline.
#[derive(Clone, Debug)]
pub struct ScheduledKill {
    /// Elapsed-time deadline.
    pub after: Duration,
    /// The fail-stop group to kill.
    pub kill: Vec<NodeId>,
}

/// The seeded fault plan installed on a fabric.
#[derive(Clone, Debug, Default)]
pub struct TurbulenceConfig {
    /// The single RNG seed everything derives from.
    pub seed: u64,
    /// Upper bound (µs) of the deterministic per-link send delay; 0
    /// disables delay injection.
    pub max_delay_us: u64,
    /// Crash when a node completes its Nth send.
    pub crash_on_send: Vec<CountTrigger>,
    /// Crash when a node's mailbox accepts its Nth message.
    pub crash_on_recv: Vec<CountTrigger>,
    /// Elapsed-time kills.
    pub kill_at: Vec<ScheduledKill>,
}

impl TurbulenceConfig {
    /// Delay-only turbulence: seeded per-link jitter, no crashes.
    pub fn delays(seed: u64, max_delay_us: u64) -> Self {
        TurbulenceConfig {
            seed,
            max_delay_us,
            ..Default::default()
        }
    }
}

/// The fail-stop unit of a computing node: its communication daemon plus
/// its co-located MPI process (a machine crash takes both, §4.1).
pub fn fail_stop_group(rank: Rank) -> Vec<NodeId> {
    vec![NodeId::Computing(rank), NodeId::Process(rank)]
}

/// Counters describing what the turbulence layer actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TurbulenceStats {
    /// Sends that were delayed.
    pub delays_injected: u64,
    /// Total injected delay (µs).
    pub delay_us_total: u64,
    /// Count-trigger crashes fired (send + receive).
    pub count_crashes: u64,
    /// Scheduled kills fired.
    pub scheduled_crashes: u64,
}

/// SplitMix64 finalizer: a statistically solid 64-bit mixer, used to
/// derive independent per-(link, message) values from the single seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stable small code per node identity, fed into the delay hash.
fn node_code(n: NodeId) -> u64 {
    match n {
        NodeId::Computing(r) => 0x0100 + r.0 as u64,
        NodeId::Process(r) => 0x0200 + r.0 as u64,
        NodeId::EventLogger(i) => 0x0300 + i as u64,
        NodeId::CheckpointServer(i) => 0x0400 + i as u64,
        NodeId::CheckpointScheduler => 0x0500,
        NodeId::Dispatcher => 0x0600,
        NodeId::ChannelMemory(i) => 0x0700 + i as u64,
    }
}

/// What the fabric must do for one send, as decided by the chaos layer.
pub(crate) struct SendVerdict {
    /// Sleep this long before enqueueing (sender thread; preserves FIFO).
    pub delay: Duration,
    /// Kill these nodes, then fail the send with `SenderDead`.
    pub kill_sender_group: Option<Vec<NodeId>>,
}

pub(crate) struct Turbulence {
    cfg: TurbulenceConfig,
    started: Instant,
    sends: Mutex<HashMap<NodeId, u64>>,
    recvs: Mutex<HashMap<NodeId, u64>>,
    /// One fired flag per `kill_at` entry.
    scheduled_fired: Mutex<Vec<bool>>,
    delays_injected: AtomicU64,
    delay_us_total: AtomicU64,
    count_crashes: AtomicU64,
    scheduled_crashes: AtomicU64,
}

impl Turbulence {
    pub(crate) fn new(cfg: TurbulenceConfig) -> Self {
        let n = cfg.kill_at.len();
        Turbulence {
            cfg,
            started: Instant::now(),
            sends: Mutex::new(HashMap::new()),
            recvs: Mutex::new(HashMap::new()),
            scheduled_fired: Mutex::new(vec![false; n]),
            delays_injected: AtomicU64::new(0),
            delay_us_total: AtomicU64::new(0),
            count_crashes: AtomicU64::new(0),
            scheduled_crashes: AtomicU64::new(0),
        }
    }

    pub(crate) fn stats(&self) -> TurbulenceStats {
        TurbulenceStats {
            delays_injected: self.delays_injected.load(Ordering::Relaxed),
            delay_us_total: self.delay_us_total.load(Ordering::Relaxed),
            count_crashes: self.count_crashes.load(Ordering::Relaxed),
            scheduled_crashes: self.scheduled_crashes.load(Ordering::Relaxed),
        }
    }

    /// Scheduled kill groups whose deadline has elapsed (each fires once).
    pub(crate) fn due_scheduled(&self) -> Vec<Vec<NodeId>> {
        if self.cfg.kill_at.is_empty() {
            return Vec::new();
        }
        let elapsed = self.started.elapsed();
        let mut fired = self.scheduled_fired.lock();
        let mut due = Vec::new();
        for (i, k) in self.cfg.kill_at.iter().enumerate() {
            if !fired[i] && elapsed >= k.after {
                fired[i] = true;
                due.push(k.kill.clone());
            }
        }
        if !due.is_empty() {
            self.scheduled_crashes
                .fetch_add(due.len() as u64, Ordering::Relaxed);
        }
        due
    }

    /// Account one send from `from` to `to`; decide delay and crash.
    pub(crate) fn on_send(&self, from: NodeId, to: NodeId) -> SendVerdict {
        let count = {
            let mut sends = self.sends.lock();
            let c = sends.entry(from).or_insert(0);
            *c += 1;
            *c
        };
        let delay = if self.cfg.max_delay_us == 0 {
            Duration::ZERO
        } else {
            let h = mix(self
                .cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(node_code(from) << 32)
                .wrapping_add(node_code(to) << 16)
                .wrapping_add(count));
            let us = h % (self.cfg.max_delay_us + 1);
            if us > 0 {
                self.delays_injected.fetch_add(1, Ordering::Relaxed);
                self.delay_us_total.fetch_add(us, Ordering::Relaxed);
            }
            Duration::from_micros(us)
        };
        let kill_sender_group = self
            .cfg
            .crash_on_send
            .iter()
            .find(|t| t.watch == from && t.at == count)
            .map(|t| {
                self.count_crashes.fetch_add(1, Ordering::Relaxed);
                t.kill.clone()
            });
        SendVerdict {
            delay,
            kill_sender_group,
        }
    }

    /// Account one delivery into `to`'s mailbox; decide whether the
    /// receiver crashes *instead of* accepting the message.
    pub(crate) fn on_deliver(&self, to: NodeId) -> Option<Vec<NodeId>> {
        if self.cfg.crash_on_recv.is_empty() {
            return None;
        }
        let count = {
            let mut recvs = self.recvs.lock();
            let c = recvs.entry(to).or_insert(0);
            *c += 1;
            *c
        };
        self.cfg
            .crash_on_recv
            .iter()
            .find(|t| t.watch == to && t.at == count)
            .map(|t| {
                self.count_crashes.fetch_add(1, Ordering::Relaxed);
                t.kill.clone()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_deterministic_in_the_seed() {
        let a = Turbulence::new(TurbulenceConfig::delays(7, 500));
        let b = Turbulence::new(TurbulenceConfig::delays(7, 500));
        let c = Turbulence::new(TurbulenceConfig::delays(8, 500));
        let from = NodeId::Computing(Rank(0));
        let to = NodeId::Computing(Rank(1));
        let da: Vec<Duration> = (0..32).map(|_| a.on_send(from, to).delay).collect();
        let db: Vec<Duration> = (0..32).map(|_| b.on_send(from, to).delay).collect();
        let dc: Vec<Duration> = (0..32).map(|_| c.on_send(from, to).delay).collect();
        assert_eq!(da, db, "same seed, same delays");
        assert_ne!(da, dc, "different seed, different delays");
        assert!(da.iter().all(|d| *d <= Duration::from_micros(500)));
    }

    #[test]
    fn send_trigger_fires_exactly_once_at_the_count() {
        let t = Turbulence::new(TurbulenceConfig {
            crash_on_send: vec![CountTrigger {
                watch: NodeId::Computing(Rank(2)),
                at: 3,
                kill: fail_stop_group(Rank(2)),
            }],
            ..Default::default()
        });
        let from = NodeId::Computing(Rank(2));
        let to = NodeId::Computing(Rank(0));
        assert!(t.on_send(from, to).kill_sender_group.is_none());
        assert!(t.on_send(from, to).kill_sender_group.is_none());
        let g = t.on_send(from, to).kill_sender_group.expect("3rd send");
        assert_eq!(g.len(), 2);
        assert!(t.on_send(from, to).kill_sender_group.is_none());
        assert_eq!(t.stats().count_crashes, 1);
    }

    #[test]
    fn recv_trigger_counts_cumulatively() {
        let t = Turbulence::new(TurbulenceConfig {
            crash_on_recv: vec![
                CountTrigger {
                    watch: NodeId::Computing(Rank(1)),
                    at: 2,
                    kill: fail_stop_group(Rank(1)),
                },
                CountTrigger {
                    watch: NodeId::Computing(Rank(1)),
                    at: 4,
                    kill: fail_stop_group(Rank(1)),
                },
            ],
            ..Default::default()
        });
        let n = NodeId::Computing(Rank(1));
        assert!(t.on_deliver(n).is_none());
        assert!(t.on_deliver(n).is_some(), "2nd delivery crashes");
        assert!(t.on_deliver(n).is_none());
        assert!(
            t.on_deliver(n).is_some(),
            "counter keeps running across the reincarnation"
        );
        assert_eq!(t.stats().count_crashes, 2);
    }

    #[test]
    fn scheduled_kill_fires_once_after_deadline() {
        let t = Turbulence::new(TurbulenceConfig {
            kill_at: vec![ScheduledKill {
                after: Duration::from_millis(5),
                kill: fail_stop_group(Rank(0)),
            }],
            ..Default::default()
        });
        assert!(t.due_scheduled().is_empty(), "not due yet");
        std::thread::sleep(Duration::from_millis(8));
        assert_eq!(t.due_scheduled().len(), 1);
        assert!(t.due_scheduled().is_empty(), "fires once");
        assert_eq!(t.stats().scheduled_crashes, 1);
    }
}
