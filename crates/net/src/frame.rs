//! Length-prefixed wire framing for the socket transport.
//!
//! Every frame is `header ‖ payload`. The 16-byte little-endian header
//! carries a magic, a codec version, per-frame flags, the payload
//! length, and an FNV-1a checksum of the payload:
//!
//! ```text
//! offset  size  field
//!      0     2  magic  (0x564D, "MV")
//!      2     1  version (1)
//!      3     1  flags   (bit 0 = ping, bit 1 = hello)
//!      4     4  payload length
//!      8     8  FNV-1a-64 checksum of the payload
//! ```
//!
//! The decoder is incremental (feed it whatever `read` returned, pull
//! complete frames out) and **never panics on malformed input**: a bad
//! magic, an unknown version, an oversized length declaration or a
//! checksum mismatch each surface as a typed [`FrameError`], and a
//! stream that ends mid-frame is reported as [`FrameError::Truncated`]
//! by [`FrameDecoder::finish`]. Once a decoder has returned an error
//! the stream is unsynchronized and must be dropped — exactly the
//! fail-stop reaction the transport wants.

use std::fmt;

/// First two header bytes, little-endian `0x564D` — `"MV"` on the wire.
pub const FRAME_MAGIC: u16 = 0x564D;

/// Codec version this build writes and accepts.
pub const FRAME_VERSION: u8 = 1;

/// Header length in bytes.
pub const FRAME_HEADER_LEN: usize = 16;

/// Default upper bound on a payload (checkpoint images dominate frame
/// sizes; 64 MiB leaves generous headroom while still rejecting a
/// corrupt length prefix before it allocates the machine away).
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Frame flag: an empty keep-alive ping (feeds the peer's read-silence
/// detector, carries no message).
pub const FLAG_PING: u8 = 0b01;

/// Frame flag: a transport-level handshake (payload identifies the
/// sending node), not an application message.
pub const FLAG_HELLO: u8 = 0b10;

/// Typed decode errors. Any of these means the byte stream is corrupt
/// or hostile; the connection must be dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The first two header bytes were not [`FRAME_MAGIC`].
    BadMagic {
        /// What arrived instead.
        found: u16,
    },
    /// The version byte named a codec this build does not speak.
    BadVersion {
        /// What arrived instead.
        found: u8,
    },
    /// The header declared a payload larger than the decoder's bound.
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The decoder's configured maximum.
        max: usize,
    },
    /// The payload checksum did not match the header's.
    BadChecksum {
        /// Checksum the header promised.
        expected: u64,
        /// Checksum of the bytes that actually arrived.
        found: u64,
    },
    /// The stream ended in the middle of a frame (EOF mid-header or
    /// mid-payload). Only reported by [`FrameDecoder::finish`].
    Truncated {
        /// Bytes still buffered when the stream ended.
        have: usize,
        /// Bytes the current frame still needed.
        needed: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { found } => write!(f, "bad frame magic {found:#06x}"),
            FrameError::BadVersion { found } => write!(f, "unsupported frame version {found}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload {len} bytes exceeds bound {max}")
            }
            FrameError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#x}, payload {found:#x}"
                )
            }
            FrameError::Truncated { have, needed } => {
                write!(
                    f,
                    "stream truncated mid-frame ({have} buffered, {needed} more needed)"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Header flags ([`FLAG_PING`], [`FLAG_HELLO`], or 0 for data).
    pub flags: u8,
    /// Payload bytes (verified against the header checksum).
    pub payload: Vec<u8>,
}

/// FNV-1a 64-bit over `bytes` — cheap, dependency-free corruption
/// detection (TCP already guards against line noise; this guards
/// against framing bugs and truncated writes).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode one frame into `out` (header + payload appended).
pub fn encode_frame_into(flags: u8, payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.push(FRAME_VERSION);
    out.push(flags);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encode one frame as a fresh buffer.
pub fn encode_frame(flags: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    encode_frame_into(flags, payload, &mut out);
    out
}

/// Incremental frame decoder: push raw bytes in, pull verified frames
/// out. Sticky on error — after any [`FrameError`] the stream has lost
/// sync and every further call returns the same error.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pos: usize,
    max_payload: usize,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// A decoder enforcing the default payload bound.
    pub fn new() -> Self {
        Self::with_max_payload(MAX_FRAME_PAYLOAD)
    }

    /// A decoder with an explicit payload bound.
    pub fn with_max_payload(max_payload: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_payload,
            poisoned: None,
        }
    }

    /// Feed raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned.is_some() {
            return;
        }
        // Compact once the consumed prefix dominates the buffer.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn poison(&mut self, e: FrameError) -> FrameError {
        self.poisoned = Some(e.clone());
        e
    }

    /// Try to decode the next complete frame. `Ok(None)` means more
    /// bytes are needed — not an error until the stream actually ends
    /// (see [`finish`](Self::finish)).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let magic = u16::from_le_bytes([avail[0], avail[1]]);
        if magic != FRAME_MAGIC {
            return Err(self.poison(FrameError::BadMagic { found: magic }));
        }
        let version = avail[2];
        if version != FRAME_VERSION {
            return Err(self.poison(FrameError::BadVersion { found: version }));
        }
        let flags = avail[3];
        let len = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]) as usize;
        if len > self.max_payload {
            let max = self.max_payload;
            return Err(self.poison(FrameError::Oversized { len, max }));
        }
        let expected = u64::from_le_bytes(avail[8..16].try_into().expect("8 header bytes"));
        if avail.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let payload = avail[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len].to_vec();
        let found = fnv1a(&payload);
        if found != expected {
            return Err(self.poison(FrameError::BadChecksum { expected, found }));
        }
        self.pos += FRAME_HEADER_LEN + len;
        Ok(Some(Frame { flags, payload }))
    }

    /// Declare the stream ended (EOF). Leftover bytes mean the peer
    /// died mid-frame.
    pub fn finish(&self) -> Result<(), FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let have = self.buffered();
        if have == 0 {
            return Ok(());
        }
        let needed = if have < FRAME_HEADER_LEN {
            FRAME_HEADER_LEN - have
        } else {
            let avail = &self.buf[self.pos..];
            let len = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]) as usize;
            (FRAME_HEADER_LEN + len).saturating_sub(have)
        };
        Err(FrameError::Truncated { have, needed })
    }
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(bytes: &[u8]) -> Result<Vec<Frame>, FrameError> {
        let mut dec = FrameDecoder::new();
        dec.push(bytes);
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame()? {
            out.push(f);
        }
        dec.finish()?;
        Ok(out)
    }

    #[test]
    fn roundtrip_single_and_multiple_frames() {
        let a = encode_frame(0, b"hello");
        let b = encode_frame(FLAG_PING, b"");
        let c = encode_frame(0, &vec![7u8; 10_000]);
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        stream.extend_from_slice(&c);
        let frames = decode_all(&stream).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].payload, b"hello");
        assert_eq!(frames[1].flags, FLAG_PING);
        assert!(frames[1].payload.is_empty());
        assert_eq!(frames[2].payload.len(), 10_000);
    }

    #[test]
    fn roundtrip_survives_any_split_point() {
        let mut stream = encode_frame(0, b"first");
        stream.extend_from_slice(&encode_frame(FLAG_HELLO, b"second payload"));
        for split in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            dec.push(&stream[..split]);
            let mut got = Vec::new();
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
            dec.push(&stream[split..]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
            dec.finish().unwrap();
            assert_eq!(got.len(), 2, "split at {split}");
            assert_eq!(got[0].payload, b"first");
            assert_eq!(got[1].payload, b"second payload");
        }
    }

    #[test]
    fn corruption_injection_every_byte_yields_typed_error_not_panic() {
        let clean = encode_frame(0, b"corruption target payload");
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0xA5;
            let mut dec = FrameDecoder::new();
            dec.push(&bad);
            // Either a typed decode error, or (length-field corruption
            // shrinking the frame) a parse that then trips the checksum
            // or leaves truncated residue. Never a panic, never a clean
            // full-length frame with altered bytes going unnoticed.
            match dec.next_frame() {
                Err(
                    FrameError::BadMagic { .. }
                    | FrameError::BadVersion { .. }
                    | FrameError::Oversized { .. }
                    | FrameError::BadChecksum { .. },
                ) => {}
                Err(FrameError::Truncated { .. }) => unreachable!("only finish() truncates"),
                Ok(None) => {
                    // Length grew: stream is now short — finish must flag it.
                    assert!(dec.finish().is_err(), "byte {i}: silent acceptance");
                }
                Ok(Some(frame)) => {
                    // A shrunk length can still checksum-match only for
                    // the degenerate empty prefix — the flags byte is the
                    // one header byte with no integrity coverage.
                    assert!(
                        i == 3 && frame.payload == b"corruption target payload",
                        "byte {i}: corrupted frame decoded cleanly"
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_declaration_rejected_before_buffering_payload() {
        let mut dec = FrameDecoder::with_max_payload(1024);
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        hdr.push(FRAME_VERSION);
        hdr.push(0);
        hdr.extend_from_slice(&(u32::MAX).to_le_bytes());
        hdr.extend_from_slice(&0u64.to_le_bytes());
        dec.push(&hdr);
        match dec.next_frame() {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // Sticky: the decoder stays poisoned.
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn truncated_stream_reported_at_finish() {
        let frame = encode_frame(0, b"full frame");
        let mut dec = FrameDecoder::new();
        dec.push(&frame[..frame.len() - 3]);
        assert_eq!(dec.next_frame().unwrap(), None);
        match dec.finish() {
            Err(FrameError::Truncated { have, needed }) => {
                assert!(have > 0);
                assert_eq!(needed, 3);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Mid-header truncation too.
        let mut dec = FrameDecoder::new();
        dec.push(&frame[..5]);
        assert!(matches!(dec.finish(), Err(FrameError::Truncated { .. })));
    }

    #[test]
    fn checksum_catches_payload_swap() {
        let mut f = encode_frame(0, b"payload-a");
        let other = encode_frame(0, b"payload-b");
        // Splice payload B under header A.
        f.truncate(FRAME_HEADER_LEN);
        f.extend_from_slice(&other[FRAME_HEADER_LEN..]);
        let mut dec = FrameDecoder::new();
        dec.push(&f);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadChecksum { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = FrameError::Oversized { len: 9, max: 4 };
        assert!(e.to_string().contains("9"));
        assert!(FrameError::BadMagic { found: 0xDEAD }
            .to_string()
            .contains("magic"));
    }
}
