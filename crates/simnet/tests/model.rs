//! Model validation against the paper's measured anchors:
//! * P4 / V1 / V2 ping-pong latency (77 / ~154 / ~237 µs at 0 bytes);
//! * P4 / V1 / V2 ping-pong bandwidth (11.3 / ~5.6 / 10.7 MB/s);
//! * the Fig. 9 duplex advantage of V2 for the Isend/Irecv/Waitall
//!   pattern;
//! * Fig. 10 re-execution behaviour (1 restart ≈ ½ reference; all
//!   restarted slightly below reference);
//! * Fig. 11 faulty-execution behaviour (smooth degradation, < 2× at 9
//!   faults).

use mvr_simnet::{
    secs, simulate, simulate_replay, simulate_with_faults, usecs, ClusterConfig, FaultPlan, Op,
    Protocol, TraceBuilder, SEC,
};

fn pingpong(rounds: usize, bytes: u64) -> Vec<Vec<Op>> {
    let mut a = TraceBuilder::new();
    let mut b = TraceBuilder::new();
    for _ in 0..rounds {
        a.send(1, bytes);
        a.recv(1);
        b.recv(0);
        b.send(0, bytes);
    }
    vec![a.build(), b.build()]
}

/// One-way time in µs for a ping-pong of `bytes`.
fn one_way_us(protocol: Protocol, bytes: u64) -> f64 {
    let rounds = 50;
    let cfg = ClusterConfig::paper_cluster(protocol, 2);
    let rep = simulate(cfg, pingpong(rounds, bytes));
    rep.makespan as f64 / (2.0 * rounds as f64) / 1_000.0
}

/// Ping-pong bandwidth in MB/s for `bytes`.
fn bandwidth_mbs(protocol: Protocol, bytes: u64) -> f64 {
    let rounds = 10;
    let cfg = ClusterConfig::paper_cluster(protocol, 2);
    let rep = simulate(cfg, pingpong(rounds, bytes));
    let one_way_s = rep.makespan as f64 / (2.0 * rounds as f64) / SEC as f64;
    bytes as f64 / one_way_s / 1e6
}

fn assert_close(val: f64, expect: f64, tol_frac: f64, what: &str) {
    let err = (val - expect).abs() / expect;
    assert!(
        err <= tol_frac,
        "{what}: got {val:.2}, expected {expect:.2} (±{:.0}%)",
        tol_frac * 100.0
    );
}

#[test]
fn p4_zero_byte_latency_is_77us() {
    assert_close(one_way_us(Protocol::P4, 0), 77.0, 0.05, "P4 0-byte latency");
}

#[test]
fn v2_zero_byte_latency_is_about_237us() {
    // 3 serialized messages per direction: payload + event + ack.
    assert_close(
        one_way_us(Protocol::V2, 0),
        237.0,
        0.10,
        "V2 0-byte latency",
    );
}

#[test]
fn v1_latency_sits_between_p4_and_v2() {
    let p4 = one_way_us(Protocol::P4, 0);
    let v1 = one_way_us(Protocol::V1, 0);
    let v2 = one_way_us(Protocol::V2, 0);
    assert!(
        p4 < v1 && v1 < v2,
        "expected P4 {p4:.0} < V1 {v1:.0} < V2 {v2:.0}"
    );
    assert_close(v1, 154.0, 0.15, "V1 0-byte latency (two hops)");
}

#[test]
fn p4_peak_bandwidth_is_11_3_mbs() {
    assert_close(
        bandwidth_mbs(Protocol::P4, 4 << 20),
        11.3,
        0.05,
        "P4 4MB bandwidth",
    );
}

#[test]
fn v2_peak_bandwidth_is_about_10_7_mbs() {
    assert_close(
        bandwidth_mbs(Protocol::V2, 4 << 20),
        10.7,
        0.07,
        "V2 4MB bandwidth",
    );
}

#[test]
fn v1_bandwidth_is_about_half_of_p4() {
    let v1 = bandwidth_mbs(Protocol::V1, 4 << 20);
    let p4 = bandwidth_mbs(Protocol::P4, 4 << 20);
    let ratio = p4 / v1;
    assert!(
        (1.7..=2.3).contains(&ratio),
        "V1 should halve the bandwidth (store-and-forward): P4 {p4:.1} vs V1 {v1:.1}"
    );
}

#[test]
fn bandwidth_monotonic_in_message_size() {
    for proto in Protocol::all() {
        let mut last = 0.0;
        for bytes in [1_000u64, 10_000, 100_000, 1_000_000] {
            let bw = bandwidth_mbs(proto, bytes);
            assert!(
                bw >= last * 0.95,
                "{proto:?}: bandwidth should grow with size ({bw:.2} after {last:.2})"
            );
            last = bw;
        }
    }
}

/// The Fig. 9 pattern: ping-pong of 10 Isend + 10 Irecv + Waitall.
fn pattern9(rounds: usize, bytes: u64) -> Vec<Vec<Op>> {
    let mut out = Vec::new();
    for me in 0..2usize {
        let peer = 1 - me;
        let mut t = TraceBuilder::new();
        for _ in 0..rounds {
            for _ in 0..10 {
                t.isend(peer, bytes);
            }
            for _ in 0..10 {
                t.irecv(peer);
            }
            t.waitall();
        }
        out.push(t.build());
    }
    out
}

#[test]
fn fig9_v2_duplex_beats_p4_at_64kb() {
    let rounds = 5;
    let bytes = 64 * 1024u64;
    let run = |p| {
        let cfg = ClusterConfig::paper_cluster(p, 2);
        simulate(cfg, pattern9(rounds, bytes)).makespan as f64
    };
    let p4 = run(Protocol::P4);
    let v2 = run(Protocol::V2);
    let speedup = p4 / v2;
    assert!(
        speedup > 1.5,
        "V2 should approach 2x P4 on the bidirectional pattern, got {speedup:.2}x"
    );
    assert!(
        speedup < 2.4,
        "speedup cannot exceed the duplex bound, got {speedup:.2}x"
    );
}

#[test]
fn fig9_p4_wins_at_small_sizes() {
    let run = |p| {
        let cfg = ClusterConfig::paper_cluster(p, 2);
        simulate(cfg, pattern9(5, 256)).makespan as f64
    };
    assert!(
        run(Protocol::P4) < run(Protocol::V2),
        "latency-dominated small messages favour P4"
    );
}

/// Asynchronous token ring (the Fig. 10 benchmark): every node injects a
/// token and forwards its neighbour's, `laps` times, with nonblocking ops
/// — all nodes stay busy.
fn token_ring(n: usize, laps: usize, bytes: u64) -> Vec<Vec<Op>> {
    (0..n)
        .map(|r| {
            let mut t = TraceBuilder::new();
            let next = (r + 1) % n;
            let prev = (r + n - 1) % n;
            for _ in 0..laps {
                let s = t.isend(next, bytes);
                t.recv(prev);
                t.wait(s);
            }
            t.build()
        })
        .collect()
}

#[test]
fn fig10_single_restart_well_below_the_reference() {
    // Paper: "re-execution time for one single restart is about half of
    // the reference" — only the receptions are replayed, with no
    // event-logger traffic. Our mechanistic model reproduces the
    // qualitative claim (single restart is the fastest curve, well below
    // the reference); the exact factor depends on how much the original
    // emission schedule paced the receptions (see EXPERIMENTS.md).
    let traces = token_ring(8, 20, 16 * 1024);
    let cfg = ClusterConfig::paper_cluster(Protocol::V2, 8);
    let reference = simulate(cfg.clone(), traces.clone()).makespan as f64;
    let one = simulate_replay(cfg, traces, &[3]).makespan as f64;
    let ratio = one / reference;
    assert!(
        (0.05..=0.80).contains(&ratio),
        "1-restart should sit clearly below the reference, got {ratio:.2}"
    );
}

#[test]
fn fig10_full_restart_close_to_but_below_reference() {
    let traces = token_ring(8, 20, 16 * 1024);
    let cfg = ClusterConfig::paper_cluster(Protocol::V2, 8);
    let reference = simulate(cfg.clone(), traces.clone()).makespan as f64;
    let all = simulate_replay(cfg, traces, &[0, 1, 2, 3, 4, 5, 6, 7]).makespan as f64;
    let ratio = all / reference;
    assert!(
        (0.5..1.0).contains(&ratio),
        "full re-execution is below the reference (no EL traffic), got {ratio:.2}"
    );
}

#[test]
fn fig10_reexecution_time_increases_with_restart_count() {
    let traces = token_ring(8, 20, 16 * 1024);
    let cfg = ClusterConfig::paper_cluster(Protocol::V2, 8);
    let mut last = 0.0;
    for x in [1usize, 2, 4, 8] {
        let restarted: Vec<usize> = (0..x).collect();
        let t = simulate_replay(cfg.clone(), traces.clone(), &restarted).makespan as f64;
        assert!(
            t >= last * 0.9,
            "re-execution time should grow with restarts"
        );
        last = t;
    }
}

/// A BT-like compute/exchange loop with checkpoint sites.
fn compute_exchange(n: usize, iters: usize, bytes: u64, compute_ns: u64) -> Vec<Vec<Op>> {
    (0..n)
        .map(|r| {
            let mut t = TraceBuilder::new();
            let next = (r + 1) % n;
            let prev = (r + n - 1) % n;
            for _ in 0..iters {
                t.compute(compute_ns);
                t.sendrecv(next, bytes, prev);
                t.checkpoint_site();
            }
            t.build()
        })
        .collect()
}

#[test]
fn fig11_no_fault_checkpoint_overhead_is_low() {
    let traces = compute_exchange(4, 50, 64 * 1024, 50_000_000);
    let mut cfg = ClusterConfig::paper_cluster(Protocol::V2, 4);
    cfg.process_state_bytes = 2 << 20; // keep images small vs. run length
    let base = simulate(cfg.clone(), traces.clone()).makespan as f64;
    let plan = FaultPlan {
        continuous_checkpointing: true,
        seed: 7,
        ..Default::default()
    };
    let rep = simulate_with_faults(cfg, traces, &plan);
    assert!(
        rep.checkpoints > 0,
        "continuous checkpointing must checkpoint"
    );
    let overhead = rep.makespan as f64 / base;
    assert!(
        overhead < 1.30,
        "checkpointing is overlapped; overhead should be low, got {overhead:.2}x"
    );
}

#[test]
fn fig11_degradation_is_smooth_and_bounded() {
    let traces = compute_exchange(4, 50, 64 * 1024, 50_000_000);
    let mut cfg = ClusterConfig::paper_cluster(Protocol::V2, 4);
    cfg.process_state_bytes = 2 << 20;
    let base = simulate(cfg.clone(), traces.clone()).makespan as f64;
    let mut times = Vec::new();
    for nfaults in [0usize, 3, 6, 9] {
        let faults: Vec<(u64, usize)> = (0..nfaults)
            .map(|i| {
                (
                    secs(1) + i as u64 * (base as u64 / 12).max(usecs(100)),
                    i % 4,
                )
            })
            .collect();
        let plan = FaultPlan {
            faults,
            continuous_checkpointing: true,
            seed: 11,
        };
        let rep = simulate_with_faults(cfg.clone(), traces.clone(), &plan);
        // A crash scheduled while the victim is still down is skipped.
        assert!(
            rep.faults as usize >= nfaults.saturating_sub(2),
            "faults {} of {nfaults}",
            rep.faults
        );
        times.push(rep.makespan as f64);
    }
    for w in times.windows(2) {
        assert!(
            w[1] >= w[0] * 0.95,
            "degradation should be monotone-ish: {times:?}"
        );
    }
    assert!(
        times[3] < 2.5 * base,
        "9 faults should stay within ~2x of the reference: {:.2}x",
        times[3] / base
    );
}

#[test]
fn deterministic_given_same_inputs() {
    let traces = token_ring(4, 10, 8192);
    let cfg = ClusterConfig::paper_cluster(Protocol::V2, 4);
    let a = simulate(cfg.clone(), traces.clone());
    let b = simulate(cfg, traces);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.msgs_delivered, b.msgs_delivered);
    assert_eq!(a.el_events, b.el_events);
}

#[test]
fn conservation_every_message_delivered_once() {
    let traces = token_ring(5, 12, 4096);
    let (msgs, bytes) = mvr_simnet::traffic_summary(&traces);
    for proto in Protocol::all() {
        let cfg = ClusterConfig::paper_cluster(proto, 5);
        let rep = simulate(cfg, traces.clone());
        assert_eq!(rep.msgs_delivered, msgs, "{proto:?}: message conservation");
        assert_eq!(rep.bytes_delivered, bytes, "{proto:?}: byte conservation");
    }
}

#[test]
fn v2_log_volume_tracks_sent_bytes() {
    let traces = token_ring(4, 10, 100_000);
    let cfg = ClusterConfig::paper_cluster(Protocol::V2, 4);
    let rep = simulate(cfg, traces);
    // Each rank sends 10 x 100kB (no GC without checkpoints).
    assert_eq!(rep.max_log_bytes, 1_000_000);
    assert!(!rep.spilled);
    assert!(!rep.infeasible);
}

#[test]
fn log_capacity_exceeded_marks_infeasible() {
    let mut cfg = ClusterConfig::paper_cluster(Protocol::V2, 2);
    cfg.log_ram_budget = 50_000;
    cfg.log_capacity = 100_000;
    let traces = pingpong(200, 10_000); // 2 MB each way >> capacity
    let rep = simulate(cfg, traces);
    assert!(
        rep.infeasible,
        "run must be declared infeasible (the FT-class-B case)"
    );
}

#[test]
fn disk_spill_slows_v2_down() {
    let mk = |ram: u64| {
        let mut cfg = ClusterConfig::paper_cluster(Protocol::V2, 2);
        cfg.log_ram_budget = ram;
        cfg.log_capacity = u64::MAX;
        simulate(cfg, pingpong(50, 100_000)).makespan as f64
    };
    let fast = mk(u64::MAX);
    let slow = mk(10_000); // spills almost immediately
    assert!(
        slow > fast * 1.3,
        "disk spill should hurt: {fast} -> {slow}"
    );
}

#[test]
fn rendezvous_kink_exists_for_v2() {
    // Crossing the 128 kB threshold adds the REQ/CTS handshake (plus its
    // EL ack under V2): the marginal cost of extra bytes jumps at the
    // boundary (the Fig. 10 non-linearity between 64 kB and 128 kB).
    let t = |bytes: u64| one_way_us(Protocol::V2, bytes);
    let marginal_below = t(120_000) - t(104_000); // 16 kB inside eager
    let marginal_across = t(136_000) - t(120_000); // 16 kB across the kink
    assert!(
        marginal_across > marginal_below * 1.10,
        "marginal cost should step up across the rendezvous threshold: \
         {marginal_below:.1}us vs {marginal_across:.1}us"
    );
}
