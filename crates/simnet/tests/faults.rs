//! Fault-model scenarios on the simulator across workload families:
//! conservation and completion under crash schedules, checkpoint
//! interaction, and replay-specific behaviours.

use mvr_simnet::{
    secs, simulate, simulate_with_faults, ClusterConfig, FaultPlan, Op, Protocol, TraceBuilder,
};
use mvr_workloads::nas::{traces, Class, NasBenchmark};
use mvr_workloads::token_ring;

fn v2(n: usize) -> ClusterConfig {
    ClusterConfig::paper_cluster(Protocol::V2, n)
}

#[test]
fn every_nas_kernel_survives_a_fault_with_checkpointing() {
    for bench in NasBenchmark::all() {
        // 4 is both a perfect square and a power of two, so every kernel
        // (BT/SP included) accepts it.
        let p = 4;
        assert!(bench.valid_procs(p), "{}", bench.name());
        let t = traces(bench, Class::S, p);
        let base = simulate(v2(p), t.clone());
        let plan = FaultPlan {
            faults: vec![(base.makespan / 3, 1)],
            continuous_checkpointing: true,
            seed: 5,
        };
        let rep = simulate_with_faults(v2(p), t, &plan);
        assert_eq!(rep.faults, 1, "{}", bench.name());
        // Completion itself is the invariant (every planned reception was
        // consumed); replayed re-deliveries make the count >= fault-free.
        assert!(
            rep.msgs_delivered >= base.msgs_delivered,
            "{}: lost messages under faults",
            bench.name()
        );
    }
}

#[test]
fn fault_without_checkpointing_replays_from_scratch() {
    let t = token_ring(4, 30, 8 << 10);
    let base = simulate(v2(4), t.clone());
    let plan = FaultPlan {
        faults: vec![(base.makespan / 2, 2)],
        continuous_checkpointing: false,
        seed: 1,
    };
    let rep = simulate_with_faults(v2(4), t, &plan);
    assert_eq!(rep.checkpoints, 0);
    assert!(rep.msgs_delivered >= base.msgs_delivered);
    assert!(rep.makespan > base.makespan);
}

#[test]
fn back_to_back_faults_on_the_same_rank() {
    let t = token_ring(4, 40, 4 << 10);
    let base = simulate(v2(4), t.clone());
    let plan = FaultPlan {
        faults: vec![
            (base.makespan / 4, 1),
            (base.makespan / 2, 1),
            (3 * base.makespan / 4, 1),
        ],
        continuous_checkpointing: true,
        seed: 9,
    };
    let rep = simulate_with_faults(v2(4), t, &plan);
    assert!(
        rep.faults >= 1,
        "at least one fault must land (got {})",
        rep.faults
    );
    assert!(rep.msgs_delivered >= base.msgs_delivered);
}

#[test]
fn fault_during_checkpoint_transfer_is_survived() {
    // Make images big and the run short so a crash reliably lands during
    // an image transfer.
    let mut cfg = v2(3);
    cfg.process_state_bytes = 8 << 20;
    let mut b = Vec::new();
    for r in 0..3usize {
        let mut t = TraceBuilder::new();
        for _ in 0..40 {
            t.compute(5_000_000);
            t.sendrecv((r + 1) % 3, 16 << 10, (r + 2) % 3);
            t.checkpoint_site();
        }
        b.push(t.build());
    }
    let base = simulate(cfg.clone(), b.clone());
    let plan = FaultPlan {
        faults: vec![(base.makespan / 3, 0), (base.makespan / 2, 0)],
        continuous_checkpointing: true,
        seed: 3,
    };
    let rep = simulate_with_faults(cfg, b, &plan);
    assert!(rep.msgs_delivered >= base.msgs_delivered);
}

#[test]
fn rendezvous_messages_survive_receiver_crash() {
    // Big (rendezvous) messages in flight when the receiver dies: the
    // handshake must be re-established by the re-sends.
    let mut b = Vec::new();
    for r in 0..2usize {
        let mut t = TraceBuilder::new();
        for _ in 0..10 {
            t.sendrecv(1 - r, 300_000, 1 - r); // > rndv threshold
            t.checkpoint_site();
        }
        b.push(t.build());
    }
    let base = simulate(v2(2), b.clone());
    let plan = FaultPlan {
        faults: vec![(base.makespan / 3, 1)],
        continuous_checkpointing: true,
        seed: 7,
    };
    let rep = simulate_with_faults(v2(2), b, &plan);
    assert!(rep.msgs_delivered >= base.msgs_delivered);
}

#[test]
fn v2_log_gc_through_checkpoints_bounds_occupancy() {
    // With continuous checkpointing, the sender logs are periodically
    // garbage-collected; without, they grow to the full traffic volume.
    // Small images keep the checkpoint cadence well inside the run.
    // (token_ring has no checkpoint sites; build a ring that does.)
    // Compute gaps leave tx-lane slack so image transfers make progress.
    let t: Vec<Vec<Op>> = (0..4usize)
        .map(|r| {
            let mut b = TraceBuilder::new();
            for _ in 0..200 {
                b.compute(10_000_000);
                let s = b.isend((r + 1) % 4, 64 << 10);
                b.recv((r + 3) % 4);
                b.wait(s);
                b.checkpoint_site();
            }
            b.build()
        })
        .collect();
    let mut cfg = v2(4);
    cfg.process_state_bytes = 64 << 10;
    let no_ckpt = simulate(cfg.clone(), t.clone());
    let plan = FaultPlan {
        continuous_checkpointing: true,
        seed: 11,
        ..Default::default()
    };
    let with_ckpt = simulate_with_faults(cfg, t, &plan);
    assert!(with_ckpt.checkpoints > 0);
    assert!(
        with_ckpt.max_log_bytes < no_ckpt.max_log_bytes,
        "GC should bound the log: {} !< {}",
        with_ckpt.max_log_bytes,
        no_ckpt.max_log_bytes
    );
    assert_eq!(no_ckpt.max_log_bytes, 200 * 64 * 1024);
}

#[test]
fn blocking_op_breakdown_is_attributed() {
    // Compute/send/recv buckets must roughly add up to the makespan for a
    // serial two-rank exchange.
    let mut a = TraceBuilder::new();
    let mut b = TraceBuilder::new();
    for _ in 0..20 {
        a.compute(1_000_000);
        a.send(1, 32 << 10);
        a.recv(1);
        b.compute(1_000_000);
        b.recv(0);
        b.send(0, 32 << 10);
    }
    let rep = simulate(v2(2), vec![a.build(), b.build()]);
    for r in &rep.per_rank {
        let accounted = r.compute + r.comm();
        let frac = accounted as f64 / rep.makespan as f64;
        assert!(
            frac > 0.8,
            "breakdown should cover most of the run, got {frac:.2}"
        );
    }
}

#[test]
fn isend_cost_attribution_differs_between_p4_and_v2() {
    // The Table-1 mechanism at unit-test scale.
    let mk = || {
        let mut a = TraceBuilder::new();
        let mut b = TraceBuilder::new();
        for _ in 0..10 {
            let s = a.isend(1, 100 << 10);
            a.wait(s);
            b.recv(0);
        }
        vec![a.build(), b.build()]
    };
    let p4 = simulate(ClusterConfig::paper_cluster(Protocol::P4, 2), mk());
    let v2r = simulate(v2(2), mk());
    assert!(
        p4.per_rank[0].isend > 10 * v2r.per_rank[0].isend,
        "P4 pays in ISend ({} ns) vs V2 ({} ns)",
        p4.per_rank[0].isend,
        v2r.per_rank[0].isend
    );
    assert!(
        v2r.per_rank[0].wait > p4.per_rank[0].wait,
        "V2 pays in Wait ({} ns) vs P4 ({} ns)",
        v2r.per_rank[0].wait,
        p4.per_rank[0].wait
    );
}

#[test]
fn multiple_event_loggers_reduce_v2_makespan_on_message_heavy_runs() {
    let t = traces(NasBenchmark::LU, Class::S, 8);
    let one = simulate(v2(8), t.clone());
    let mut cfg = v2(8);
    cfg.event_loggers = 4;
    let four = simulate(cfg, t);
    assert!(
        four.makespan <= one.makespan,
        "more ELs cannot hurt: {} vs {}",
        four.makespan,
        one.makespan
    );
}

#[test]
fn faults_do_not_occur_after_completion() {
    let t = token_ring(3, 5, 1024);
    let base = simulate(v2(3), t.clone());
    let plan = FaultPlan {
        faults: vec![(base.makespan + secs(10), 0)],
        continuous_checkpointing: false,
        seed: 1,
    };
    let rep = simulate_with_faults(v2(3), t, &plan);
    assert_eq!(rep.faults, 0, "post-completion crash must be a no-op");
    assert_eq!(rep.makespan, base.makespan);
}
