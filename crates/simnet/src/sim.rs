//! The discrete-event cluster simulator.
//!
//! Interprets per-rank [`Op`] traces under one of the three protocol
//! models (P4 / V1 / V2, see `config.rs`), with chunk-pipelined transfers
//! over FIFO lanes, the V2 event-logger gating, sender-based log volume
//! accounting (RAM → disk spill → infeasible), checkpointing overlapped
//! with execution, crash-and-recover faults, and log-driven re-execution.
//!
//! Faithfulness notes (what maps to what in the paper):
//! * V2 sends queue behind unacknowledged reception events (§4.5);
//! * V2 `MPI_Isend` only posts; the payload moves asynchronously and the
//!   app pays in `MPI_Wait` (Table 1); P4 pushes during `MPI_Isend`;
//! * the P4 driver is half-duplex (shared lane), V2 full-duplex (Fig. 9);
//! * V1 store-and-forwards whole messages through the receiver's Channel
//!   Memory (bandwidth ÷ 2, Fig. 5);
//! * replaying nodes receive re-sent payloads from their peers' logs and
//!   suppress re-transmission of messages the peers already received; no
//!   event-logger traffic is replayed (Fig. 10);
//! * checkpoints ship `process state + sender log` to the checkpoint
//!   server over the node's own tx lane, overlapped with execution, and
//!   completion garbage-collects the peers' logs (Fig. 11).

use crate::config::{ClusterConfig, Protocol};
use crate::lane::Lane;
use crate::report::{RankBreakdown, SimReport};
use crate::time::{transfer_ns, SimTime};
use crate::trace::Op;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};

type Nid = usize;

/// Pending rendezvous sends: (destination, index) → (bytes, blocking-send
/// token, request op).
type RndvPending = HashMap<(usize, u64), (u64, Option<u64>, Option<usize>)>;

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Resume a rank's interpreter (compute done, send accepted, ...),
    /// valid only for the stamped incarnation.
    RankReady(usize, u32),
    /// A transfer chunk reaches the destination's rx lane.
    ChunkArrive { tid: usize, bytes: u64, last: bool },
    /// Chain the next chunk of an interleaved (V1/V2) transfer.
    TxNextChunk { tid: usize },
    /// A whole message finished its rx stage.
    Delivered { tid: usize },
    /// A blocking-send / isend completion token fired (tx finished),
    /// valid only for the stamped incarnation.
    SendTxDone { rank: usize, token: u64, gen: u32 },
    /// Crash rank now.
    Crash(usize),
    /// Restart rank now (image fetched, peers notified).
    Restart(usize),
    /// Kick the continuous checkpoint scheduler.
    SchedulerKick,
}

#[derive(PartialEq, Eq)]
struct HeapEv {
    t: SimTime,
    seq: u64,
    ev: Ev,
}

impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t, self.seq).cmp(&(other.t, other.seq))
    }
}

impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------------
// Transfers
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum TKind {
    /// Application payload (eager or rendezvous data).
    Payload {
        from: usize,
        to: usize,
        index: u64,
        bytes: u64,
        rndv: bool,
    },
    /// Rendezvous announcement.
    RndvReq {
        from: usize,
        to: usize,
        index: u64,
        bytes: u64,
    },
    /// Clear-to-send for (sender, index).
    RndvCts {
        sender: usize,
        receiver: usize,
        index: u64,
    },
    /// Reception events to an event-logger replica (one copy of a
    /// batched request; with replication the same batch rides `R`
    /// transfers, one per replica of the owner's shard). `shipped` is
    /// the instant the daemon put the batch on the wire — carried
    /// through to the ack so the round-trip can be measured.
    ElEvent {
        owner: usize,
        events: u64,
        shipped: SimTime,
        replica: usize,
    },
    /// Event-logger acknowledgement, covering `events` receptions.
    /// The batch retires on the quorum-th ack; stragglers only tally
    /// (replica lanes are symmetric, so the ack needs no replica id).
    ElAck {
        owner: usize,
        events: u64,
        shipped: SimTime,
    },
    /// V1: payload pushed to the receiver's Channel Memory.
    CmPush {
        from: usize,
        to: usize,
        index: u64,
        bytes: u64,
    },
    /// V1: pull request from the CM owner.
    CmPull { owner: usize },
    /// V1: stored message forwarded to its owner.
    CmForward {
        from: usize,
        to: usize,
        index: u64,
        bytes: u64,
    },
    /// Checkpoint image to the checkpoint server.
    CkptImage { rank: usize },
}

#[derive(Clone, Debug)]
struct Transfer {
    kind: TKind,
    src: Nid,
    dst: Nid,
    /// Destination rank generation at initiation (drop if stale).
    dst_gen: u32,
    /// Source rank generation (drop chunks of a crashed sender).
    src_rank: Option<usize>,
    src_gen: u32,
    /// Total payload bytes.
    bytes: u64,
    /// Bytes already transmitted (chained mode).
    sent: u64,
    /// Fire `SendTxDone { rank, token }` when the last chunk leaves.
    tx_notify: Option<(usize, u64)>,
    /// P4 large-eager transfer: stalls the single-threaded driver on both
    /// ends (blocking `write()` past the socket buffer; the driver neither
    /// writes other sockets nor reads incoming meanwhile) — the Fig. 9
    /// half-duplex effect and the paper's BT observation. Rendezvous
    /// transfers go through the chunked progress engine and interleave.
    p4_stall: bool,
}

// ---------------------------------------------------------------------
// Per-rank state
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Live,
    /// Re-executing; switches to Live when `pc` reaches `until`.
    Replay {
        until: usize,
    },
    /// Crashed, awaiting restart.
    Dead,
    /// Completed its trace before this (replay-mode) run began.
    Finished,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Block {
    Compute,
    Send { token: u64 },
    Recv { src: usize },
    WaitReq { op: usize },
    WaitAll,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    Compute,
    Send,
    Recv,
    Isend,
    Wait,
}

#[derive(Clone, Debug)]
enum Arrival {
    Eager {
        bytes: u64,
    },
    /// Announced rendezvous: `bytes` is carried for diagnostics; the
    /// authoritative size rides with the payload.
    RndvAnnounce {
        #[allow(dead_code)]
        bytes: u64,
        cts_sent: bool,
    },
    RndvHere {
        bytes: u64,
    },
}

impl Arrival {
    fn consumable(&self) -> bool {
        matches!(self, Arrival::Eager { .. } | Arrival::RndvHere { .. })
    }
}

#[derive(Clone, Debug)]
enum Waiter {
    /// The rank itself blocks in a `Recv` op.
    Blocking,
    /// An `Irecv` request (trace op index).
    Req(usize),
}

/// What a checkpoint image captures.
#[derive(Clone, Debug)]
struct Snapshot {
    pc: usize,
    sent_count: Vec<u64>,
    consumed_count: Vec<u64>,
    arrived_count: Vec<u64>,
    log_bytes: u64,
    image_bytes: u64,
}

#[derive(Clone, Debug)]
enum SendSpec {
    /// A payload or rendezvous-request initiation deferred by the gate.
    Payload {
        dst: usize,
        index: u64,
        bytes: u64,
        token: Option<u64>,
        op: Option<usize>,
    },
    /// A CTS deferred by the gate.
    Cts { sender: usize, index: u64 },
    /// A granted rendezvous payload (bypasses the size re-check).
    RndvData {
        dst: usize,
        index: u64,
        bytes: u64,
        token: Option<u64>,
        op: Option<usize>,
    },
}

struct RankSim {
    trace: Vec<Op>,
    pc: usize,
    mode: Mode,
    generation: u32,
    blocked: Option<Block>,
    block_kind: OpClass,
    block_start: SimTime,
    /// Requests by trace op index: true = complete.
    reqs: HashMap<usize, bool>,
    incomplete_reqs: HashSet<usize>,
    /// Per destination rank.
    sent_count: Vec<u64>,
    /// Size log per destination (sim bookkeeping; the semantic sender log
    /// is the prefix up to `sent_count`, minus GC).
    sent_sizes: Vec<Vec<u64>>,
    gc_watermark: Vec<u64>,
    /// Per source rank.
    arrived_count: Vec<u64>,
    arrivals: Vec<BTreeMap<u64, Arrival>>,
    consumed_count: Vec<u64>,
    reserved_count: Vec<u64>,
    waiters: Vec<VecDeque<Waiter>>,
    /// V2 pessimism gate.
    outstanding_acks: u32,
    /// Reception events delivered but not yet shipped to the EL (lazy
    /// batching). They already count in `outstanding_acks`; a crash
    /// loses them harmlessly (no transmission depended on them).
    pending_el: u64,
    /// Sends parked behind the closed gate, with the instant each was
    /// parked (for the gate-wait histogram).
    gated: VecDeque<(SendSpec, SimTime)>,
    /// Rendezvous sends awaiting CTS.
    rndv_pending: RndvPending,
    /// Recovery re-sends, streamed sequentially (FIFO on the daemon's
    /// connection) rather than all at once.
    resend_q: VecDeque<(usize, u64, u64)>,
    /// Token of the in-flight re-send (chains the queue).
    resend_token: Option<u64>,
    /// Sender-based log occupancy.
    log_bytes: u64,
    max_log_bytes: u64,
    spilled: bool,
    /// Checkpointing.
    ckpt_ordered: bool,
    ckpt_in_progress: bool,
    snapshot: Option<Snapshot>,
    pc_at_crash: usize,
    next_token: u64,
    finish: Option<SimTime>,
    breakdown: RankBreakdown,
    // --- flight-recorder bookkeeping (records are only written when a
    // recorder hub is attached; the counters are cheap either way) ---
    /// Monotone per-rank sender clock; assigned once per (dst, index)
    /// and reused on re-execution, so spans key stably across crashes.
    send_clock: u64,
    /// Per destination: index → assigned sender clock.
    sent_clocks: Vec<Vec<u64>>,
    /// Monotone receiver clock (never reset across incarnations).
    recv_clock: u64,
    /// Receiver-clock watermarks of in-flight EL batches (FIFO).
    el_ship_q: VecDeque<u64>,
    /// Replica acks tallied for the head in-flight batch (acks arrive
    /// batch-FIFO because every replica lane is symmetric and the
    /// owner's tx lane serializes the fan-out in batch order).
    el_ack_tally: u32,
    /// Live batch threshold under `el_batch_adaptive` (unused otherwise):
    /// doubled on under-budget acks, halved on gate deferrals.
    el_limit: u64,
    ckpt_seq: u64,
    ckpt_begin_t: SimTime,
    replayed_n: u64,
    replay_start_t: SimTime,
}

impl RankSim {
    fn new(trace: Vec<Op>, n: usize) -> Self {
        RankSim {
            trace,
            pc: 0,
            mode: Mode::Live,
            generation: 0,
            blocked: None,
            block_kind: OpClass::Compute,
            block_start: 0,
            reqs: HashMap::new(),
            incomplete_reqs: HashSet::new(),
            sent_count: vec![0; n],
            sent_sizes: vec![Vec::new(); n],
            gc_watermark: vec![0; n],
            arrived_count: vec![0; n],
            arrivals: vec![BTreeMap::new(); n],
            consumed_count: vec![0; n],
            reserved_count: vec![0; n],
            waiters: vec![VecDeque::new(); n],
            outstanding_acks: 0,
            pending_el: 0,
            gated: VecDeque::new(),
            rndv_pending: HashMap::new(),
            resend_q: VecDeque::new(),
            resend_token: None,
            log_bytes: 0,
            max_log_bytes: 0,
            spilled: false,
            ckpt_ordered: false,
            ckpt_in_progress: false,
            snapshot: None,
            pc_at_crash: 0,
            next_token: 0,
            finish: None,
            breakdown: RankBreakdown::default(),
            send_clock: 0,
            sent_clocks: vec![Vec::new(); n],
            recv_clock: 0,
            el_ship_q: VecDeque::new(),
            el_ack_tally: 0,
            el_limit: 1,
            ckpt_seq: 0,
            ckpt_begin_t: 0,
            replayed_n: 0,
            replay_start_t: 0,
        }
    }

    fn replaying(&self) -> bool {
        matches!(self.mode, Mode::Replay { .. })
    }
}

// ---------------------------------------------------------------------
// Fault / replay plans
// ---------------------------------------------------------------------

/// Fault-injection and checkpointing plan for a simulation.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Scheduled crashes: (virtual time, victim rank).
    pub faults: Vec<(SimTime, usize)>,
    /// Run the continuous random-victim checkpoint scheduler (Fig. 11:
    /// "the system is always checkpointing a node").
    pub continuous_checkpointing: bool,
    /// Seed for the random checkpoint-victim policy.
    pub seed: u64,
}

// ---------------------------------------------------------------------
// The simulator
// ---------------------------------------------------------------------

/// The simulator state. Construct with [`Sim::new`], run with
/// [`Sim::run_with_plan`] (or use the [`simulate`]/
/// [`simulate_with_faults`]/[`simulate_replay`] helpers).
pub struct Sim {
    cfg: ClusterConfig,
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<HeapEv>>,
    ranks: Vec<RankSim>,
    tx: Vec<Lane>,
    rx: Vec<Lane>,
    /// P4 only: the per-node single-threaded driver. Large-eager
    /// transfers occupy it on both ends, serializing the node's tx and rx
    /// work — the Fig. 9 half-duplex effect. Other protocols' daemons
    /// (and P4 rendezvous) interleave chunks (full duplex).
    driver: Vec<Lane>,
    transfers: Vec<Transfer>,
    pending_second_notify: HashMap<usize, (usize, u64)>,
    n: usize,
    el_base: Nid,
    cm_base: Nid,
    cs_nid: Nid,
    // V1 Channel Memories: per owner rank: stored forwards + pull state.
    cm_store: Vec<VecDeque<(usize, u64, u64)>>, // (from, index, bytes)
    cm_pulled: Vec<u64>,
    cm_forwarded: Vec<u64>,
    // Stats
    msgs_delivered: u64,
    bytes_delivered: u64,
    el_events: u64,
    el_requests: u64,
    checkpoints: u64,
    faults: u64,
    /// Virtual-time protocol latency histograms (V2 only; see
    /// [`SimReport::gate_wait`] / [`SimReport::el_ack_rtt`]).
    gate_wait: mvr_obs::LogHistogram,
    el_ack_rtt: mvr_obs::LogHistogram,
    /// Per-rank flight recorders (empty when no hub is attached).
    obs: Vec<mvr_obs::Recorder>,
    /// Pseudo-rank recorder for fault-plan interventions.
    obs_dispatch: Option<mvr_obs::Recorder>,
    infeasible: bool,
    // Continuous checkpointing
    ckpt_continuous: bool,
    ckpt_rng: u64,
    ckpt_victim: Option<usize>,
}

impl Sim {
    /// Build a simulator over the given per-rank traces.
    pub fn new(cfg: ClusterConfig, traces: Vec<Vec<Op>>) -> Self {
        let n = traces.len();
        assert_eq!(cfg.nodes, n, "config.nodes must match trace count");
        let num_els = cfg.event_loggers.max(1) * cfg.el_replicas.max(1);
        let num_cms = if cfg.channel_memories == 0 {
            n
        } else {
            cfg.channel_memories
        };
        let el_base = n;
        let cm_base = el_base + num_els;
        let cs_nid = cm_base + num_cms;
        let total = cs_nid + 1;
        Sim {
            ranks: traces.into_iter().map(|t| RankSim::new(t, n)).collect(),
            cfg,
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            tx: vec![Lane::new(); total],
            rx: vec![Lane::new(); total],
            driver: vec![Lane::new(); total],
            transfers: Vec::new(),
            pending_second_notify: HashMap::new(),
            n,
            el_base,
            cm_base,
            cs_nid,
            cm_store: vec![VecDeque::new(); n],
            cm_pulled: vec![0; n],
            cm_forwarded: vec![0; n],
            msgs_delivered: 0,
            bytes_delivered: 0,
            el_events: 0,
            el_requests: 0,
            checkpoints: 0,
            faults: 0,
            gate_wait: mvr_obs::LogHistogram::default(),
            el_ack_rtt: mvr_obs::LogHistogram::default(),
            obs: Vec::new(),
            obs_dispatch: None,
            infeasible: false,
            ckpt_continuous: false,
            ckpt_rng: 1,
            ckpt_victim: None,
        }
    }

    /// Mint one recorder per rank (plus a dispatcher pseudo-rank for
    /// fault-plan interventions) from `hub`. Records are written with
    /// [`mvr_obs::Recorder::record_at`] at the *virtual* clock, so a
    /// seeded run dumps a byte-identical timeline on every execution.
    pub fn attach_recorder(&mut self, hub: &mvr_obs::RecorderHub) {
        self.obs = (0..self.n).map(|r| hub.recorder(r as u32)).collect();
        self.obs_dispatch = Some(hub.recorder(mvr_obs::DISPATCHER_RANK));
    }

    /// Write a record for `r` at the current virtual time.
    fn rec(&self, r: usize, clock: u64, ev: mvr_obs::ProtoEvent) {
        if let Some(rc) = self.obs.get(r) {
            rc.record_at(clock, self.now, ev);
        }
    }

    /// As [`Sim::rec`] at an explicit virtual timestamp (used to order
    /// a `GateOpen` strictly after the `ElAck` that produced it).
    fn rec_at(&self, r: usize, clock: u64, ts: SimTime, ev: mvr_obs::ProtoEvent) {
        if let Some(rc) = self.obs.get(r) {
            rc.record_at(clock, ts, ev);
        }
    }

    /// Sender clock assigned to `(u → v, index)`, with a deterministic
    /// fallback for pre-seeded logs (`simulate_replay` finished ranks).
    fn sender_clock_of(&self, u: usize, v: usize, index: u64) -> u64 {
        self.ranks[u].sent_clocks[v]
            .get(index as usize)
            .copied()
            .unwrap_or(index + 1)
    }

    /// Node id of `replica` within the shard serving `rank`. Shards
    /// partition ranks round-robin (a cost model, not the runtime's
    /// consistent hash); a shard's replicas occupy contiguous ids.
    fn el_nid(&self, rank: usize, replica: usize) -> Nid {
        let reps = self.cfg.el_replicas.max(1);
        let shards = (self.cm_base - self.el_base) / reps;
        self.el_base + (rank % shards) * reps + replica
    }

    /// Acks that must arrive before a batch retires: a majority of the
    /// shard's replicas, so one is exactly the unreplicated behaviour.
    fn el_quorum(&self) -> u32 {
        (self.cfg.el_replicas.max(1) / 2 + 1) as u32
    }

    fn cm_for(&self, rank: usize) -> Nid {
        self.cm_base + rank % (self.cs_nid - self.cm_base)
    }

    fn cm_owner_slot(&self, rank: usize) -> usize {
        rank // cm_store is indexed by owner rank directly
    }

    fn push_ev(&mut self, t: SimTime, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse(HeapEv {
            t,
            seq: self.seq,
            ev,
        }));
    }

    /// Schedule a RankReady for the current incarnation of `r`.
    fn push_ready(&mut self, t: SimTime, r: usize) {
        let gen = self.ranks[r].generation;
        self.push_ev(t, Ev::RankReady(r, gen));
    }

    /// Schedule a SendTxDone for the current incarnation of `r`.
    fn push_tx_done(&mut self, t: SimTime, r: usize, token: u64) {
        let gen = self.ranks[r].generation;
        self.push_ev(
            t,
            Ev::SendTxDone {
                rank: r,
                token,
                gen,
            },
        );
    }

    // ------------------------------------------------------------------
    // Transfers
    // ------------------------------------------------------------------

    /// Start a transfer on the source's tx lane; chunks pipeline into the
    /// destination's rx lane. `head` is extra source-side time (payload
    /// copy, EL service).
    ///
    /// Under P4 the whole message occupies the sender's (shared) lane as
    /// one block — the half-duplex driver behaviour. Under V1/V2 chunks
    /// are chained one reservation at a time, so concurrent transfers
    /// (application traffic, checkpoint images, EL events) interleave
    /// fairly, as the paper describes for the V2 driver.
    fn start_transfer(&mut self, src: Nid, dst: Nid, bytes: u64, head: SimTime, kind: TKind) {
        self.start_transfer_notify(src, dst, bytes, head, kind, None, None);
    }

    /// As [`start_transfer`], with completion notifications fired when the
    /// last byte leaves the source (blocking-send unblock + request
    /// completion).
    #[allow(clippy::too_many_arguments)]
    fn start_transfer_notify(
        &mut self,
        src: Nid,
        dst: Nid,
        bytes: u64,
        head: SimTime,
        kind: TKind,
        token: Option<(usize, u64)>,
        op: Option<(usize, usize)>,
    ) {
        let src_rank = if src < self.n { Some(src) } else { None };
        let src_gen = src_rank.map(|r| self.ranks[r].generation).unwrap_or(0);
        let dst_gen = if dst < self.n {
            self.ranks[dst].generation
        } else {
            0
        };
        let tid = self.transfers.len();
        let mut notify: Vec<(usize, u64)> = Vec::new();
        if let Some((r, tk)) = token {
            notify.push((r, tk));
        }
        if let Some((r, o)) = op {
            notify.push((r, u64::MAX - o as u64));
        }
        let p4_stall = self.cfg.protocol == Protocol::P4
            && src < self.n
            && dst < self.n
            && bytes > self.cfg.p4_socket_buffer
            && bytes < self.cfg.rndv_threshold;
        self.transfers.push(Transfer {
            kind,
            src,
            dst,
            dst_gen,
            src_rank,
            src_gen,
            bytes,
            sent: 0,
            tx_notify: None,
            p4_stall,
        });
        // Chained mode for every protocol: the first chunk carries the
        // head costs; concurrent transfers interleave chunk-by-chunk.
        self.transfers[tid].tx_notify = notify.first().copied();
        if notify.len() > 1 {
            // At most two notifications (blocking token + request).
            self.pending_second_notify.insert(tid, notify[1]);
        }
        self.tx_chunk(tid, head + self.cfg.send_overhead);
    }

    /// Transmit the next chunk of a chained transfer.
    fn tx_chunk(&mut self, tid: usize, head: SimTime) {
        let (src, src_rank, src_gen, bytes, sent) = {
            let t = &self.transfers[tid];
            (t.src, t.src_rank, t.src_gen, t.bytes, t.sent)
        };
        if let Some(sr) = src_rank {
            if self.ranks[sr].generation != src_gen {
                return; // sender crashed: remaining chunks are lost
            }
        }
        let chunk = self.cfg.chunk_bytes.max(1);
        let this_chunk = (bytes - sent).min(chunk);
        let last = sent + this_chunk >= bytes;
        let dur = head + transfer_ns(this_chunk, self.cfg.bandwidth);
        let stall = self.transfers[tid].p4_stall;
        let (_, end) = self.reserve_lane(true, src, self.now, dur, stall);
        self.transfers[tid].sent = sent + this_chunk;
        self.push_ev(
            end + self.cfg.wire_latency,
            Ev::ChunkArrive {
                tid,
                bytes: this_chunk,
                last,
            },
        );
        if last {
            if let Some((r, tk)) = self.transfers[tid].tx_notify {
                self.push_tx_done(end, r, tk);
            }
            if let Some((r, tk)) = self.pending_second_notify.remove(&tid) {
                self.push_tx_done(end, r, tk);
            }
        } else {
            self.push_ev(end, Ev::TxNextChunk { tid });
        }
    }

    /// Reserve a node lane, optionally coupled with the node's P4 driver
    /// lane (large-eager transfers stall the single-threaded driver).
    fn reserve_lane(
        &mut self,
        tx_side: bool,
        nid: Nid,
        now: SimTime,
        dur: SimTime,
        stall_driver: bool,
    ) -> (SimTime, SimTime) {
        let lane_avail = if tx_side {
            self.tx[nid].available_at()
        } else {
            self.rx[nid].available_at()
        };
        if stall_driver && nid < self.n {
            let start = now.max(lane_avail).max(self.driver[nid].available_at());
            let end = start + dur;
            self.driver[nid].reserve(start, dur);
            if tx_side {
                self.tx[nid].reserve(start, dur);
            } else {
                self.rx[nid].reserve(start, dur);
            }
            (start, end)
        } else if tx_side {
            self.tx[nid].reserve(now, dur)
        } else {
            self.rx[nid].reserve(now, dur)
        }
    }

    fn on_chunk_arrive(&mut self, tid: usize, chunk_bytes: u64, last: bool) {
        let (dst, dst_gen, src_rank, src_gen) = {
            let t = &self.transfers[tid];
            (t.dst, t.dst_gen, t.src_rank, t.src_gen)
        };
        // Drop stale chunks (either end crashed since initiation).
        if dst < self.n && self.ranks[dst].generation != dst_gen {
            return;
        }
        if let Some(sr) = src_rank {
            if self.ranks[sr].generation != src_gen {
                return;
            }
        }
        let rx_dur = transfer_ns(chunk_bytes, self.cfg.bandwidth)
            + if last { self.cfg.recv_overhead } else { 0 };
        let stall = self.transfers[tid].p4_stall;
        let (_, end) = self.reserve_lane(false, dst, self.now, rx_dur, stall);
        if last {
            self.push_ev(end, Ev::Delivered { tid });
        }
    }

    fn on_delivered_ev(&mut self, tid: usize) {
        let (dst, dst_gen, src_rank, src_gen, kind) = {
            let t = &self.transfers[tid];
            (t.dst, t.dst_gen, t.src_rank, t.src_gen, t.kind.clone())
        };
        if let Some(sr) = src_rank {
            if self.ranks[sr].generation != src_gen {
                return;
            }
        }
        self.on_delivered_inner(dst, dst_gen, kind);
    }

    // ------------------------------------------------------------------
    // Delivery dispatch
    // ------------------------------------------------------------------

    fn on_delivered_inner(&mut self, dst: Nid, dst_gen: u32, kind: TKind) {
        if dst < self.n && self.ranks[dst].generation != dst_gen {
            return;
        }
        match kind {
            TKind::Payload {
                from,
                to,
                index,
                bytes,
                rndv,
            } => {
                debug_assert_eq!(to, dst);
                let arr = if rndv {
                    Arrival::RndvHere { bytes }
                } else {
                    Arrival::Eager { bytes }
                };
                self.rank_arrival(to, from, index, arr);
            }
            TKind::RndvReq {
                from,
                to,
                index,
                bytes,
            } => {
                self.rank_arrival(
                    to,
                    from,
                    index,
                    Arrival::RndvAnnounce {
                        bytes,
                        cts_sent: false,
                    },
                );
            }
            TKind::RndvCts {
                sender,
                receiver,
                index,
            } => {
                // CTS reception is a channel message: logged like any other.
                self.log_reception_if_live(sender);
                if let Some((bytes, token, op)) =
                    self.ranks[sender].rndv_pending.remove(&(receiver, index))
                {
                    self.initiate_payload(sender, receiver, index, bytes, token, op);
                }
            }
            TKind::ElEvent {
                owner,
                events,
                shipped,
                replica,
            } => {
                // One EL service pass per batch per replica, then one
                // coalesced high-watermark ack back from each (the
                // round-trip amortization).
                let el = self.el_nid(owner, replica);
                self.start_transfer(
                    el,
                    owner,
                    self.cfg.event_bytes,
                    self.cfg.el_service,
                    TKind::ElAck {
                        owner,
                        events,
                        shipped,
                    },
                );
            }
            TKind::ElAck {
                owner,
                events,
                shipped,
            } => {
                // Quorum gate: the head batch retires on the Q-th replica
                // ack; sub-quorum acks and post-quorum stragglers only
                // move the tally. Replica lanes are symmetric and the
                // owner's tx lane serializes the fan-out in batch order,
                // so acks arrive batch-FIFO and a modular tally suffices.
                // With one replica Q == 1 and every ack retires a batch —
                // the paper's unreplicated path, on identical events.
                let reps = self.cfg.el_replicas.max(1) as u32;
                let quorum = self.el_quorum();
                let tally = {
                    let rk = &mut self.ranks[owner];
                    rk.el_ack_tally += 1;
                    let t = rk.el_ack_tally;
                    if t == reps {
                        rk.el_ack_tally = 0;
                    }
                    t
                };
                if tally != quorum {
                    return;
                }
                let rtt = self.now.saturating_sub(shipped);
                self.el_ack_rtt.record(rtt);
                // Adaptive widening: while released sends have waited
                // under budget at the p99 (or never waited at all), a
                // bigger batch amortizes the next RTT for free.
                if self.cfg.el_batch_adaptive
                    && self.gate_wait.quantile(0.99) <= self.cfg.el_gate_budget_ns
                {
                    let cap = self.cfg.el_batch_max.max(1);
                    let rk = &mut self.ranks[owner];
                    rk.el_limit = (rk.el_limit * 2).min(cap);
                }
                let up_to = {
                    let r = &mut self.ranks[owner];
                    debug_assert!(r.outstanding_acks as u64 >= events);
                    r.outstanding_acks = r.outstanding_acks.saturating_sub(events as u32);
                    r.el_ship_q.pop_front().unwrap_or(r.recv_clock)
                };
                self.rec(
                    owner,
                    up_to,
                    mvr_obs::ProtoEvent::ElAck {
                        up_to,
                        batches_retired: 1,
                        rtt_ns: rtt,
                    },
                );
                if self.ranks[owner].outstanding_acks == 0 {
                    self.drain_gate(owner);
                }
            }
            TKind::CmPush {
                from,
                to,
                index,
                bytes,
            } => {
                let slot = self.cm_owner_slot(to);
                self.cm_store[slot].push_back((from, index, bytes));
                self.cm_try_forward(to);
            }
            TKind::CmPull { owner } => {
                let slot = self.cm_owner_slot(owner);
                self.cm_pulled[slot] += 1;
                self.cm_try_forward(owner);
            }
            TKind::CmForward {
                from,
                to,
                index,
                bytes,
            } => {
                self.rank_arrival(to, from, index, Arrival::Eager { bytes });
            }
            TKind::CkptImage { rank } => {
                self.on_checkpoint_stored(rank);
            }
        }
    }

    /// V1 Channel Memory: forward the next stored message if the owner has
    /// an outstanding pull.
    fn cm_try_forward(&mut self, owner: usize) {
        let slot = self.cm_owner_slot(owner);
        while self.cm_forwarded[slot] < self.cm_pulled[slot] {
            let Some((from, index, bytes)) = self.cm_store[slot].pop_front() else {
                return;
            };
            self.cm_forwarded[slot] += 1;
            let cm = self.cm_for(owner);
            self.start_transfer(
                cm,
                owner,
                bytes,
                0,
                TKind::CmForward {
                    from,
                    to: owner,
                    index,
                    bytes,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Rank arrival / matching
    // ------------------------------------------------------------------

    fn rank_arrival(&mut self, to: usize, from: usize, index: u64, arr: Arrival) {
        {
            let r = &mut self.ranks[to];
            if matches!(r.mode, Mode::Dead) {
                return;
            }
            match &arr {
                Arrival::RndvHere { .. } => {
                    // Payload completes an announced rendezvous
                    // (overwrites the announce; may sit below the
                    // contiguity watermark).
                    r.arrivals[from].insert(index, arr);
                }
                _ => {
                    // Duplicate suppression (replay re-sends): consumed
                    // already, or sitting in the arrival buffer. Exact
                    // checks — resends and re-executed sends may arrive
                    // out of index order, so a high-water mark would
                    // wrongly drop late re-sends of earlier indices.
                    if index < r.consumed_count[from] {
                        return;
                    }
                    match (r.arrivals[from].get_mut(&index), &arr) {
                        (
                            Some(Arrival::RndvAnnounce { cts_sent, .. }),
                            Arrival::RndvAnnounce { .. },
                        ) => {
                            // A re-announcement from a restarted sender:
                            // the previous CTS died with the sender's old
                            // incarnation; re-grant it.
                            *cts_sent = false;
                        }
                        (Some(_), _) => return, // true duplicate
                        (None, _) => {
                            r.arrivals[from].insert(index, arr);
                            r.arrived_count[from] = r.arrived_count[from].max(index + 1);
                        }
                    }
                }
            }
        }
        self.grant_pending_cts(to, from);
        self.progress_pair(to, from);
        // V1: a forwarded message that did not satisfy the outstanding
        // pull (wrong source for the blocked receive) consumes the pull;
        // ask the Channel Memory for the next one.
        if self.cfg.protocol == Protocol::V1
            && self.ranks[to].arrivals[from].contains_key(&index)
            && self.ranks[to].waiters.iter().any(|w| !w.is_empty())
        {
            let cm = self.cm_for(to);
            self.start_transfer(to, cm, self.cfg.event_bytes, 0, TKind::CmPull { owner: to });
        }
    }

    /// Send CTS for announced rendezvous messages that a posted receive is
    /// already waiting for.
    fn grant_pending_cts(&mut self, r: usize, src: usize) {
        let mut to_grant: Vec<u64> = Vec::new();
        {
            let rk = &self.ranks[r];
            let lo = rk.consumed_count[src];
            let hi = rk.reserved_count[src];
            if lo < hi {
                for (idx, a) in rk.arrivals[src].range(lo..hi) {
                    if let Arrival::RndvAnnounce {
                        cts_sent: false, ..
                    } = a
                    {
                        to_grant.push(*idx);
                    }
                }
            }
        }
        for idx in to_grant {
            if let Some(Arrival::RndvAnnounce { cts_sent, .. }) =
                self.ranks[r].arrivals[src].get_mut(&idx)
            {
                *cts_sent = true;
            }
            self.send_or_gate(
                r,
                SendSpec::Cts {
                    sender: src,
                    index: idx,
                },
            );
        }
    }

    /// Is the next in-order arrival from `src` deliverable?
    fn consumable_now(&self, r: usize, src: usize) -> bool {
        let rk = &self.ranks[r];
        rk.arrivals[src]
            .get(&rk.consumed_count[src])
            .map(|a| a.consumable())
            .unwrap_or(false)
    }

    /// Deliver the next in-order arrival from `src` (must be consumable).
    fn consume_one(&mut self, r: usize, src: usize) {
        let idx = self.ranks[r].consumed_count[src];
        let bytes = match self.ranks[r].arrivals[src].remove(&idx) {
            Some(Arrival::Eager { bytes }) | Some(Arrival::RndvHere { bytes }) => bytes,
            other => panic!("consume_one on non-consumable arrival {other:?}"),
        };
        self.ranks[r].consumed_count[src] = idx + 1;
        self.msgs_delivered += 1;
        self.bytes_delivered += bytes;
        let sender_clock = self.sender_clock_of(src, r, idx);
        let (rc, replaying) = {
            let rk = &mut self.ranks[r];
            rk.recv_clock += 1;
            if rk.replaying() {
                rk.replayed_n += 1;
            }
            (rk.recv_clock, rk.replaying())
        };
        if replaying {
            self.rec(
                r,
                rc,
                mvr_obs::ProtoEvent::ReplayStep {
                    from: src as u32,
                    sender_clock,
                    receiver_clock: rc,
                },
            );
        } else {
            self.rec(
                r,
                rc,
                mvr_obs::ProtoEvent::Deliver {
                    from: src as u32,
                    sender_clock,
                    receiver_clock: rc,
                    replay: false,
                },
            );
        }
        // The delivery is a reception event (V2, live mode only).
        self.log_reception_if_live(r);
    }

    /// Consume consumable arrivals in index order, completing waiters.
    fn progress_pair(&mut self, r: usize, src: usize) {
        loop {
            if self.ranks[r].waiters[src].is_empty() || !self.consumable_now(r, src) {
                break;
            }
            self.consume_one(r, src);
            let w = self.ranks[r].waiters[src]
                .pop_front()
                .expect("checked nonempty");
            match w {
                Waiter::Blocking => {
                    debug_assert_eq!(self.ranks[r].blocked, Some(Block::Recv { src }));
                    self.unblock(r);
                }
                Waiter::Req(op) => {
                    self.ranks[r].reqs.insert(op, true);
                    self.ranks[r].incomplete_reqs.remove(&op);
                    self.check_wait_block(r);
                }
            }
        }
    }

    fn check_wait_block(&mut self, r: usize) {
        match self.ranks[r].blocked {
            Some(Block::WaitReq { op }) if *self.ranks[r].reqs.get(&op).unwrap_or(&false) => {
                self.unblock(r);
            }
            Some(Block::WaitAll) if self.ranks[r].incomplete_reqs.is_empty() => {
                self.unblock(r);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // V2 logging & gate
    // ------------------------------------------------------------------

    fn log_reception_if_live(&mut self, r: usize) {
        if self.cfg.protocol != Protocol::V2 {
            return;
        }
        if self.ranks[r].replaying() || self.ranks[r].mode == Mode::Finished {
            return;
        }
        self.el_events += 1;
        // The gate closes at delivery regardless of when the event ships.
        self.ranks[r].outstanding_acks += 1;
        self.ranks[r].pending_el += 1;
        // Flush at the size threshold, or immediately when a send is
        // already queued behind the gate (its ack can otherwise never
        // arrive). `el_batch_max == 1` is the eager per-event baseline.
        let limit = if self.cfg.el_batch_adaptive {
            self.ranks[r].el_limit.max(1)
        } else {
            self.cfg.el_batch_max.max(1)
        };
        if self.ranks[r].pending_el >= limit || !self.ranks[r].gated.is_empty() {
            self.flush_el(r);
        }
    }

    /// Ship the pending reception events as one batched EL request.
    fn flush_el(&mut self, r: usize) {
        let events = self.ranks[r].pending_el;
        if events == 0 {
            return;
        }
        self.ranks[r].pending_el = 0;
        self.el_requests += 1;
        // The batch covers the most recent `events` receiver clocks:
        // live deliveries since the previous ship (replay never pends).
        // Saturating: CTS receptions count as events but assign no
        // receiver clock, so the range can be narrower than `events`.
        let up_to = self.ranks[r].recv_clock;
        let from_clock = (up_to + 1).saturating_sub(events);
        self.ranks[r].el_ship_q.push_back(up_to);
        self.rec(
            r,
            up_to,
            mvr_obs::ProtoEvent::ElShip {
                events,
                from_clock,
                up_to,
            },
        );
        // Fan the batch out to every replica of the shard; the owner's
        // tx lane serializes the copies, which is the real cost of
        // replication (the quorum ack lands no later than the single
        // ack did, replicas being symmetric).
        for replica in 0..self.cfg.el_replicas.max(1) {
            let el = self.el_nid(r, replica);
            self.start_transfer(
                r,
                el,
                events * self.cfg.event_bytes,
                0,
                TKind::ElEvent {
                    owner: r,
                    events,
                    shipped: self.now,
                    replica,
                },
            );
        }
    }

    fn gate_closed(&self, r: usize) -> bool {
        self.cfg.protocol == Protocol::V2
            && !self.ranks[r].replaying()
            && self.ranks[r].outstanding_acks > 0
    }

    fn send_or_gate(&mut self, r: usize, spec: SendSpec) {
        if self.gate_closed(r) {
            let deferred = match &spec {
                SendSpec::Payload { dst, index, .. } | SendSpec::RndvData { dst, index, .. } => {
                    Some((*dst, self.sender_clock_of(r, *dst, *index)))
                }
                SendSpec::Cts { .. } => None,
            };
            // Adaptive narrowing: a queued send waits on exactly the
            // events the current batch is sitting on — halve the
            // threshold so future batches ship sooner.
            if self.cfg.el_batch_adaptive {
                let rk = &mut self.ranks[r];
                rk.el_limit = (rk.el_limit / 2).max(1);
            }
            self.ranks[r].gated.push_back((spec, self.now));
            if let Some((dst, clock)) = deferred {
                let queued = self.ranks[r].gated.len() as u64;
                self.rec(
                    r,
                    clock,
                    mvr_obs::ProtoEvent::GateDefer {
                        to: dst as u32,
                        clock,
                        queued,
                    },
                );
            }
            // The send now waits on the EL ack of every delivered event:
            // ship any still-pending events or the gate never opens.
            self.flush_el(r);
        } else {
            self.execute_send_spec(r, spec);
        }
    }

    fn drain_gate(&mut self, r: usize) {
        let mut released = 0u64;
        let mut oldest_wait = 0u64;
        while self.ranks[r].outstanding_acks == 0 {
            let Some((spec, parked)) = self.ranks[r].gated.pop_front() else {
                break;
            };
            let waited = self.now.saturating_sub(parked);
            self.gate_wait.record(waited);
            oldest_wait = oldest_wait.max(waited);
            released += 1;
            self.execute_send_spec(r, spec);
        }
        if released > 0 {
            // +1 ns so the opening sorts strictly after the ElAck record
            // that covered the owed events — the merged timeline then
            // replays cleanly through the offline invariant monitor.
            let rc = self.ranks[r].recv_clock;
            self.rec_at(
                r,
                rc,
                self.now + 1,
                mvr_obs::ProtoEvent::GateOpen {
                    released,
                    waited_ns: oldest_wait,
                },
            );
        }
    }

    fn execute_send_spec(&mut self, r: usize, spec: SendSpec) {
        match spec {
            SendSpec::Payload {
                dst,
                index,
                bytes,
                token,
                op,
            } => {
                if (bytes as usize) >= self.cfg.rndv_threshold as usize {
                    // Rendezvous: announce, stash, transmit on CTS.
                    self.ranks[r]
                        .rndv_pending
                        .insert((dst, index), (bytes, token, op));
                    self.start_transfer(
                        r,
                        dst,
                        self.cfg.event_bytes,
                        0,
                        TKind::RndvReq {
                            from: r,
                            to: dst,
                            index,
                            bytes,
                        },
                    );
                } else {
                    self.start_transfer_notify(
                        r,
                        dst,
                        bytes,
                        0,
                        TKind::Payload {
                            from: r,
                            to: dst,
                            index,
                            bytes,
                            rndv: false,
                        },
                        token.map(|t| (r, t)),
                        op.map(|o| (r, o)),
                    );
                }
            }
            SendSpec::Cts { sender, index } => {
                self.start_transfer(
                    r,
                    sender,
                    self.cfg.event_bytes,
                    0,
                    TKind::RndvCts {
                        sender,
                        receiver: r,
                        index,
                    },
                );
            }
            SendSpec::RndvData {
                dst,
                index,
                bytes,
                token,
                op,
            } => {
                self.start_transfer_notify(
                    r,
                    dst,
                    bytes,
                    0,
                    TKind::Payload {
                        from: r,
                        to: dst,
                        index,
                        bytes,
                        rndv: true,
                    },
                    token.map(|t| (r, t)),
                    op.map(|o| (r, o)),
                );
            }
        }
    }

    /// Rendezvous payload transmission (post-CTS). The CTS reception was
    /// itself a logged event, so under V2 the payload queues behind the
    /// pessimism gate until the event logger acknowledges it — one extra
    /// EL round-trip per rendezvous transfer, exactly as in the protocol.
    fn initiate_payload(
        &mut self,
        r: usize,
        dst: usize,
        index: u64,
        bytes: u64,
        token: Option<u64>,
        op: Option<usize>,
    ) {
        self.send_or_gate(
            r,
            SendSpec::RndvData {
                dst,
                index,
                bytes,
                token,
                op,
            },
        );
    }

    // ------------------------------------------------------------------
    // Send path from the interpreter
    // ------------------------------------------------------------------

    /// Start an application send. Returns (copy_duration, suppressed).
    fn app_send(
        &mut self,
        r: usize,
        dst: usize,
        bytes: u64,
        token: Option<u64>,
        op: Option<usize>,
    ) -> (SimTime, bool) {
        let index = self.ranks[r].sent_count[dst];
        self.ranks[r].sent_count[dst] = index + 1;
        let rk = &mut self.ranks[r];
        if rk.sent_sizes[dst].len() <= index as usize {
            rk.sent_sizes[dst].push(bytes);
        }
        // Assign (or recall, on re-execution) the span-key sender clock.
        let clock = match rk.sent_clocks[dst].get(index as usize) {
            Some(&c) => c,
            None => {
                rk.send_clock += 1;
                rk.sent_clocks[dst].push(rk.send_clock);
                rk.send_clock
            }
        };
        // Sender-based copy (V2): charge the copy and grow the log — also
        // during re-execution (the log must be rebuilt, Lemma 1).
        let mut copy = 0;
        if self.cfg.protocol == Protocol::V2 {
            let already_logged = rk.replaying() && (index as usize) < rk.sent_sizes[dst].len() - 1;
            let _ = already_logged;
            let bw = if rk.log_bytes > self.cfg.log_ram_budget {
                rk.spilled = true;
                self.cfg.log_disk_bw
            } else {
                self.cfg.log_copy_bw
            };
            copy = transfer_ns(bytes, bw);
            rk.log_bytes += bytes;
            rk.max_log_bytes = rk.max_log_bytes.max(rk.log_bytes);
            if rk.log_bytes > self.cfg.log_capacity {
                self.infeasible = true;
            }
            // The daemon is busy copying: the copy occupies the tx path
            // before any transmission can proceed.
            if copy > 0 {
                self.tx[r].reserve(self.now, copy);
            }
        }
        // Suppression: the destination provably has this message already
        // (consumed, or a *consumable* buffered arrival — a rendezvous
        // announce is not possession: its payload may never have moved).
        let suppressed = index < self.ranks[dst].consumed_count[r]
            || self.ranks[dst].arrivals[r]
                .get(&index)
                .map(|a| a.consumable())
                .unwrap_or(false);
        let disposition = if suppressed {
            mvr_obs::SendDisposition::Suppressed
        } else if self.gate_closed(r) {
            mvr_obs::SendDisposition::Gated
        } else {
            mvr_obs::SendDisposition::Wire
        };
        self.rec(
            r,
            clock,
            mvr_obs::ProtoEvent::Send {
                to: dst as u32,
                clock,
                bytes,
                disposition,
            },
        );
        if suppressed {
            if let Some(tk) = token {
                self.push_tx_done(self.now + copy, r, tk);
            }
            if let Some(o) = op {
                self.push_tx_done(self.now + copy, r, u64::MAX - o as u64);
            }
            return (copy, true);
        }
        match self.cfg.protocol {
            Protocol::V1 => {
                let cm = self.cm_for(dst);
                self.start_transfer_notify(
                    r,
                    cm,
                    bytes,
                    0,
                    TKind::CmPush {
                        from: r,
                        to: dst,
                        index,
                        bytes,
                    },
                    token.map(|t| (r, t)),
                    op.map(|o| (r, o)),
                );
            }
            _ => {
                self.send_or_gate(
                    r,
                    SendSpec::Payload {
                        dst,
                        index,
                        bytes,
                        token,
                        op,
                    },
                );
            }
        }
        (copy, false)
    }

    // ------------------------------------------------------------------
    // The interpreter
    // ------------------------------------------------------------------

    fn block(&mut self, r: usize, b: Block, class: OpClass) {
        let rk = &mut self.ranks[r];
        debug_assert!(rk.blocked.is_none());
        rk.blocked = Some(b);
        rk.block_kind = class;
        rk.block_start = self.now;
    }

    fn unblock(&mut self, r: usize) {
        let dt = self.now - self.ranks[r].block_start;
        {
            let rk = &mut self.ranks[r];
            let bucket = match rk.block_kind {
                OpClass::Compute => &mut rk.breakdown.compute,
                OpClass::Send => &mut rk.breakdown.send,
                OpClass::Recv => &mut rk.breakdown.recv,
                OpClass::Isend => &mut rk.breakdown.isend,
                OpClass::Wait => &mut rk.breakdown.wait,
            };
            *bucket += dt;
            rk.blocked = None;
        }
        self.advance(r);
    }

    /// Interpret ops until the rank blocks, dies or finishes.
    fn advance(&mut self, r: usize) {
        loop {
            if self.infeasible {
                return;
            }
            {
                let rk = &self.ranks[r];
                if rk.blocked.is_some()
                    || matches!(rk.mode, Mode::Dead | Mode::Finished)
                    || rk.finish.is_some()
                {
                    return;
                }
            }
            // Replay → live transition.
            if let Mode::Replay { until } = self.ranks[r].mode {
                if self.ranks[r].pc >= until {
                    self.ranks[r].mode = Mode::Live;
                    let (replayed, replay_ns, rc) = {
                        let rk = &self.ranks[r];
                        (
                            rk.replayed_n,
                            self.now.saturating_sub(rk.replay_start_t),
                            rk.recv_clock,
                        )
                    };
                    self.rec(
                        r,
                        rc,
                        mvr_obs::ProtoEvent::ReplayDone {
                            replayed,
                            replay_ns,
                        },
                    );
                }
            }
            let pc = self.ranks[r].pc;
            if pc >= self.ranks[r].trace.len() {
                self.ranks[r].finish = Some(self.now);
                self.ranks[r].breakdown.finish = self.now;
                let rc = self.ranks[r].recv_clock;
                self.rec(r, rc, mvr_obs::ProtoEvent::Finish { clock: rc });
                return;
            }
            let op = self.ranks[r].trace[pc];
            self.ranks[r].pc = pc + 1;
            match op {
                Op::Compute(ns) => {
                    let stretch = if self.cfg.protocol == Protocol::V2 && self.ranks[r].spilled {
                        self.cfg.disk_contention
                    } else {
                        1.0
                    };
                    let dur = (ns as f64 * stretch) as u64;
                    self.block(r, Block::Compute, OpClass::Compute);
                    self.push_ready(self.now + dur, r);
                    return;
                }
                Op::Send { dst, bytes } => {
                    let p4_buffered =
                        self.cfg.protocol == Protocol::P4 && bytes <= self.cfg.p4_socket_buffer;
                    if p4_buffered {
                        // Fits the socket buffer: MPI_Send returns after
                        // the kernel memcpy; the kernel drains it.
                        let (_c, _s) = self.app_send(r, dst, bytes, None, None);
                        self.block(r, Block::Compute, OpClass::Send);
                        let memcpy = transfer_ns(bytes, self.cfg.log_copy_bw);
                        self.push_ready(self.now + self.cfg.isend_post_cost + memcpy, r);
                        return;
                    }
                    let token = self.ranks[r].next_token;
                    self.ranks[r].next_token += 1;
                    let (copy, suppressed) = self.app_send(r, dst, bytes, Some(token), None);
                    let _ = copy;
                    let _ = suppressed;
                    self.block(r, Block::Send { token }, OpClass::Send);
                    return;
                }
                Op::Isend { dst, bytes } => {
                    self.ranks[r].reqs.insert(pc, false);
                    self.ranks[r].incomplete_reqs.insert(pc);
                    let p4_buffered =
                        self.cfg.protocol == Protocol::P4 && bytes <= self.cfg.p4_socket_buffer;
                    if p4_buffered {
                        // Fits the socket buffer: the request is complete
                        // (buffer reusable) right after the memcpy.
                        let (_c, _s) = self.app_send(r, dst, bytes, None, None);
                        let memcpy = transfer_ns(bytes, self.cfg.log_copy_bw);
                        self.push_tx_done(
                            self.now + self.cfg.isend_post_cost + memcpy,
                            r,
                            u64::MAX - pc as u64,
                        );
                        self.block(r, Block::Compute, OpClass::Isend);
                        self.push_ready(self.now + self.cfg.isend_post_cost + memcpy, r);
                        return;
                    }
                    let p4_eager =
                        self.cfg.protocol == Protocol::P4 && bytes < self.cfg.rndv_threshold;
                    if p4_eager {
                        // Payload pushed during Isend: block the app for
                        // the tx (the Table-1 behaviour). Rendezvous-sized
                        // sends cannot push during Isend even under P4
                        // (the payload waits for the CTS), so they fall
                        // through to the asynchronous path.
                        let token = self.ranks[r].next_token;
                        self.ranks[r].next_token += 1;
                        let (_c, _s) = self.app_send(r, dst, bytes, Some(token), Some(pc));
                        self.block(r, Block::Send { token }, OpClass::Isend);
                        return;
                    }
                    // V1/V2 (and P4 rendezvous): post only; the transfer
                    // is asynchronous and Wait pays for it.
                    let (_copy, _s) = self.app_send(r, dst, bytes, None, Some(pc));
                    self.block(r, Block::Compute, OpClass::Isend);
                    self.push_ready(self.now + self.cfg.isend_post_cost, r);
                    return;
                }
                Op::Recv { src } => {
                    // Reserve the next reception index; fast-path an
                    // already-available in-order message (no queued
                    // waiters to overtake).
                    self.reserve_recv(r, src);
                    if self.ranks[r].waiters[src].is_empty() && self.consumable_now(r, src) {
                        self.consume_one(r, src);
                        continue;
                    }
                    self.ranks[r].waiters[src].push_back(Waiter::Blocking);
                    self.block(r, Block::Recv { src }, OpClass::Recv);
                    return;
                }
                Op::Irecv { src } => {
                    self.ranks[r].reqs.insert(pc, false);
                    self.ranks[r].incomplete_reqs.insert(pc);
                    self.reserve_recv(r, src);
                    if self.ranks[r].waiters[src].is_empty() && self.consumable_now(r, src) {
                        self.consume_one(r, src);
                        self.ranks[r].reqs.insert(pc, true);
                        self.ranks[r].incomplete_reqs.remove(&pc);
                    } else {
                        self.ranks[r].waiters[src].push_back(Waiter::Req(pc));
                    }
                    // continue (no block)
                }
                Op::Wait { req } => {
                    if *self.ranks[r].reqs.get(&req).unwrap_or(&false) {
                        continue;
                    }
                    self.block(r, Block::WaitReq { op: req }, OpClass::Wait);
                    return;
                }
                Op::WaitAll => {
                    if self.ranks[r].incomplete_reqs.is_empty() {
                        continue;
                    }
                    self.block(r, Block::WaitAll, OpClass::Wait);
                    return;
                }
                Op::CheckpointSite => {
                    if self.ranks[r].ckpt_ordered
                        && !self.ranks[r].ckpt_in_progress
                        && self.ranks[r].mode == Mode::Live
                    {
                        self.begin_checkpoint(r);
                    }
                    // continue
                }
            }
        }
    }

    fn reserve_recv(&mut self, r: usize, src: usize) {
        self.ranks[r].reserved_count[src] += 1;
        if self.cfg.protocol == Protocol::V1 {
            // Pull request to our own Channel Memory.
            let cm = self.cm_for(r);
            self.start_transfer(r, cm, self.cfg.event_bytes, 0, TKind::CmPull { owner: r });
        } else {
            self.grant_pending_cts(r, src);
        }
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    fn begin_checkpoint(&mut self, r: usize) {
        // Mirror the engine: arming a checkpoint forces the pending
        // events out so the gate can quiesce.
        self.flush_el(r);
        let image_bytes = self.cfg.process_state_bytes + self.ranks[r].log_bytes;
        let snap = Snapshot {
            pc: self.ranks[r].pc,
            sent_count: self.ranks[r].sent_count.clone(),
            consumed_count: self.ranks[r].consumed_count.clone(),
            arrived_count: self.ranks[r].consumed_count.clone(),
            log_bytes: self.ranks[r].log_bytes,
            image_bytes,
        };
        self.ranks[r].ckpt_ordered = false;
        self.ranks[r].ckpt_in_progress = true;
        self.ranks[r].snapshot = Some(snap);
        let (seq, log_bytes, rc) = {
            let rk = &mut self.ranks[r];
            rk.ckpt_seq += 1;
            rk.ckpt_begin_t = self.now;
            (rk.ckpt_seq, rk.log_bytes, rk.recv_clock)
        };
        self.rec(
            r,
            rc,
            mvr_obs::ProtoEvent::CkptBegin {
                seq,
                bytes: log_bytes,
            },
        );
        // Image transfer competes with application traffic on the tx lane
        // but execution continues (overlapped, §4.6.1).
        self.start_transfer(r, self.cs_nid, image_bytes, 0, TKind::CkptImage { rank: r });
    }

    fn on_checkpoint_stored(&mut self, r: usize) {
        if !self.ranks[r].ckpt_in_progress {
            return; // aborted by a crash
        }
        self.ranks[r].ckpt_in_progress = false;
        self.checkpoints += 1;
        let (seq, store_ns, rc) = {
            let rk = &self.ranks[r];
            (
                rk.ckpt_seq,
                self.now.saturating_sub(rk.ckpt_begin_t),
                rk.recv_clock,
            )
        };
        self.rec(r, rc, mvr_obs::ProtoEvent::CkptCommit { seq, store_ns });
        // Garbage collection: every sender drops messages r consumed
        // before the checkpoint (§4.6.1).
        let consumed = self.ranks[r]
            .snapshot
            .as_ref()
            .expect("snapshot set")
            .consumed_count
            .clone();
        for (u, &upto) in consumed.iter().enumerate() {
            if u == r {
                continue;
            }
            let from = self.ranks[u].gc_watermark[r];
            let freed: u64 = self.ranks[u].sent_sizes[r]
                .iter()
                .skip(from as usize)
                .take((upto.saturating_sub(from)) as usize)
                .sum();
            self.ranks[u].gc_watermark[r] = upto.max(from);
            self.ranks[u].log_bytes = self.ranks[u].log_bytes.saturating_sub(freed);
            if freed > 0 {
                let urc = self.ranks[u].recv_clock;
                self.rec(
                    u,
                    urc,
                    mvr_obs::ProtoEvent::CkptGc {
                        peer: r as u32,
                        bytes_freed: freed,
                    },
                );
            }
        }
        if self.ckpt_continuous && self.ckpt_victim == Some(r) {
            self.pick_ckpt_victim();
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.ckpt_rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.ckpt_rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn pick_ckpt_victim(&mut self) {
        let alive: Vec<usize> = (0..self.n)
            .filter(|&r| matches!(self.ranks[r].mode, Mode::Live) && self.ranks[r].finish.is_none())
            .collect();
        if alive.is_empty() {
            self.ckpt_victim = None;
            return;
        }
        let v = alive[(self.next_rand() % alive.len() as u64) as usize];
        self.ckpt_victim = Some(v);
        self.ranks[v].ckpt_ordered = true;
    }

    // ------------------------------------------------------------------
    // Faults
    // ------------------------------------------------------------------

    fn crash(&mut self, v: usize) {
        if matches!(self.ranks[v].mode, Mode::Dead | Mode::Finished) {
            return;
        }
        if self.ranks[v].finish.is_some() {
            return; // finished ranks are not restarted in these scenarios
        }
        self.faults += 1;
        let pc_at_crash = self.ranks[v].pc;
        {
            // Close out any blocked-time attribution.
            if self.ranks[v].blocked.is_some() {
                let dt = self.now - self.ranks[v].block_start;
                self.ranks[v].breakdown.wait += dt;
                self.ranks[v].blocked = None;
            }
            let rk = &mut self.ranks[v];
            rk.mode = Mode::Dead;
            rk.generation += 1;
            rk.pc_at_crash = pc_at_crash;
            rk.ckpt_in_progress = false;
            rk.outstanding_acks = 0;
            rk.pending_el = 0;
            rk.el_ack_tally = 0;
            rk.gated.clear();
            rk.rndv_pending.clear();
            rk.resend_q.clear();
            rk.resend_token = None;
            rk.el_ship_q.clear();
            rk.reqs.clear();
            rk.incomplete_reqs.clear();
            for s in 0..self.n {
                rk.arrivals[s].clear();
                rk.waiters[s].clear();
            }
        }
        if let Some(d) = &self.obs_dispatch {
            d.record_at(
                0,
                self.now,
                mvr_obs::ProtoEvent::ChaosKill {
                    victim: v as u32,
                    rekill: false,
                },
            );
        }
        self.tx[v].reset(self.now);
        self.rx[v].reset(self.now);
        if self.ckpt_victim == Some(v) {
            self.pick_ckpt_victim();
        }
        // Restart after the detection/spawn overhead + image fetch.
        let image = self.ranks[v]
            .snapshot
            .as_ref()
            .map(|s| s.image_bytes)
            .unwrap_or(0);
        let fetch = transfer_ns(image, self.cfg.ckpt_bandwidth);
        self.push_ev(self.now + self.cfg.restart_overhead + fetch, Ev::Restart(v));
    }

    fn restart(&mut self, v: usize) {
        if !matches!(self.ranks[v].mode, Mode::Dead) {
            return;
        }
        let until = self.ranks[v].pc_at_crash;
        {
            let rk = &mut self.ranks[v];
            match rk.snapshot.clone() {
                Some(s) => {
                    rk.pc = s.pc;
                    rk.sent_count = s.sent_count;
                    rk.consumed_count = s.consumed_count.clone();
                    rk.arrived_count = s.arrived_count;
                    rk.reserved_count = s.consumed_count;
                    rk.log_bytes = s.log_bytes;
                }
                None => {
                    rk.pc = 0;
                    rk.sent_count = vec![0; self.n];
                    rk.consumed_count = vec![0; self.n];
                    rk.arrived_count = vec![0; self.n];
                    rk.reserved_count = vec![0; self.n];
                    rk.log_bytes = 0;
                }
            }
            rk.mode = if rk.pc >= until {
                Mode::Live
            } else {
                Mode::Replay { until }
            };
            rk.finish = None;
            rk.replayed_n = 0;
            rk.replay_start_t = self.now;
        }
        let rc = self.ranks[v].recv_clock;
        self.rec(
            v,
            rc,
            mvr_obs::ProtoEvent::RecoveryBegin { restored_clock: rc },
        );
        self.rec(v, rc, mvr_obs::ProtoEvent::Restart1 { rank: v as u32 });
        // RESTART1: every live peer re-sends what v's restored state has
        // not received.
        self.enqueue_retransmits_to(v);
        // RESTART2 replies: v re-sends, from its restored log, the
        // pre-checkpoint messages its peers are missing — messages can be
        // lost in both directions when both ends were down concurrently
        // (the multi-fault case of Appendix A).
        self.enqueue_retransmits_from(v);
        self.push_ready(self.now, v);
    }

    /// Re-send, from `u`'s restored sender log, the messages each live
    /// peer is missing and that `u` will not re-create (indices below its
    /// restored send counters).
    fn enqueue_retransmits_from(&mut self, u: usize) {
        if self.cfg.protocol == Protocol::V1 {
            return; // V1 recovery is CM-driven
        }
        for v in 0..self.n {
            if v == u || matches!(self.ranks[v].mode, Mode::Dead) {
                continue;
            }
            let from_idx = self.ranks[v].consumed_count[u];
            let upto = self.ranks[u].sent_count[v];
            let sizes: Vec<(u64, u64)> = (from_idx..upto)
                .map(|i| (i, self.ranks[u].sent_sizes[v][i as usize]))
                .collect();
            for (index, bytes) in sizes {
                self.ranks[u].resend_q.push_back((v, index, bytes));
            }
        }
        self.pump_resends(u);
    }

    /// Re-send, from every peer's sender log, the messages `v`'s restored
    /// state has not received (index ≥ its arrived count).
    fn enqueue_retransmits_to(&mut self, v: usize) {
        for u in 0..self.n {
            if u == v || matches!(self.ranks[u].mode, Mode::Dead) {
                continue;
            }
            // Base at the consumption pointer: everything not provably
            // consumed is re-sent (the receiver drops surplus).
            let from_idx = self.ranks[v].consumed_count[u];
            let upto = self.ranks[u].sent_count[v];
            let sizes: Vec<(u64, u64)> = (from_idx..upto)
                .map(|i| (i, self.ranks[u].sent_sizes[v][i as usize]))
                .collect();
            if self.cfg.protocol == Protocol::V1 {
                // V1 recovery is CM-driven; the CM still holds the
                // messages (reliable); nothing to do sender-side.
                continue;
            }
            for (index, bytes) in sizes {
                // The retransmit supersedes any rendezvous handshake that
                // was pending toward the crashed receiver: complete its
                // request (the buffer is ours again) and drop the stale
                // pending entry.
                if let Some((_, token, op)) = self.ranks[u].rndv_pending.remove(&(v, index)) {
                    if let Some(tk) = token {
                        self.push_tx_done(self.now, u, tk);
                    }
                    if let Some(o) = op {
                        self.push_tx_done(self.now, u, u64::MAX - o as u64);
                    }
                }
                self.ranks[u].resend_q.push_back((v, index, bytes));
            }
            self.pump_resends(u);
        }
        // V1: reset the CM pull/forward cursors so re-pulls replay the
        // stored sequence from the restored reception index.
        if self.cfg.protocol == Protocol::V1 {
            let slot = self.cm_owner_slot(v);
            self.cm_forwarded[slot] = 0;
            self.cm_pulled[slot] = 0;
            // (A full V1 CM replay model would re-stream the stored
            // prefix; V1 fault experiments are out of the paper's scope.)
        }
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Run to completion with a fault/checkpoint plan.
    pub fn run_with_plan(mut self, plan: &FaultPlan) -> SimReport {
        self.ckpt_continuous = plan.continuous_checkpointing;
        self.ckpt_rng = plan.seed.max(1);
        for &(t, v) in &plan.faults {
            self.push_ev(t, Ev::Crash(v));
        }
        if self.ckpt_continuous {
            self.push_ev(0, Ev::SchedulerKick);
        }
        // Start every live rank.
        for r in 0..self.n {
            if matches!(self.ranks[r].mode, Mode::Live | Mode::Replay { .. }) {
                self.push_ready(0, r);
            }
        }
        let mut guard: u64 = 0;
        while let Some(Reverse(HeapEv { t, ev, .. })) = self.heap.pop() {
            self.now = t;
            if self.infeasible {
                break;
            }
            guard += 1;
            assert!(guard < 2_000_000_000, "simulation runaway");
            match ev {
                Ev::RankReady(r, gen) => {
                    if self.ranks[r].generation != gen {
                        continue; // stale incarnation
                    }
                    if self.ranks[r].blocked == Some(Block::Compute) {
                        self.unblock(r);
                    } else if self.ranks[r].blocked.is_none() {
                        self.advance(r);
                    }
                }
                Ev::ChunkArrive { tid, bytes, last } => self.on_chunk_arrive(tid, bytes, last),
                Ev::TxNextChunk { tid } => self.tx_chunk(tid, 0),
                Ev::Delivered { tid } => self.on_delivered_ev(tid),
                Ev::SendTxDone { rank, token, gen } => {
                    if self.ranks[rank].generation == gen {
                        self.on_send_tx_done(rank, token);
                    }
                }
                Ev::Crash(v) => self.crash(v),
                Ev::Restart(v) => self.restart(v),
                Ev::SchedulerKick => self.pick_ckpt_victim(),
            }
            if self.all_done() {
                break;
            }
        }
        if !self.all_done() && !self.infeasible {
            if std::env::var("MVR_SIM_DEBUG").is_ok() {
                eprintln!("--- simulation wedged at t={} ---", self.now);
                for (i, rk) in self.ranks.iter().enumerate() {
                    eprintln!(
                        "rank {i}: mode={:?} pc={}/{} blocked={:?} gate={} gated={} finish={:?} resend_q={} resend_tok={:?}",
                        rk.mode,
                        rk.pc,
                        rk.trace.len(),
                        rk.blocked,
                        rk.outstanding_acks,
                        rk.gated.len(),
                        rk.finish,
                        rk.resend_q.len(),
                        rk.resend_token,
                    );
                    if matches!(
                        rk.blocked,
                        Some(Block::WaitAll) | Some(Block::WaitReq { .. })
                    ) {
                        let mut pend: Vec<String> = rk
                            .incomplete_reqs
                            .iter()
                            .map(|&op| format!("{op}:{:?}", rk.trace[op]))
                            .collect();
                        pend.sort();
                        eprintln!("   incomplete: {pend:?}");
                        for (src, w) in rk.waiters.iter().enumerate() {
                            if !w.is_empty() {
                                eprintln!(
                                    "   waiter src {src}: n={} consumed={} peer.sent={} arrivals={:?}",
                                    w.len(),
                                    rk.consumed_count[src],
                                    self.ranks[src].sent_count[i],
                                    rk.arrivals[src].keys().take(6).collect::<Vec<_>>()
                                );
                            }
                        }
                    }
                    if let Some(Block::Recv { src }) = rk.blocked {
                        eprintln!(
                            "   waiting src {src}: consumed={} arrived={} reserved={} peer.sent_count={} arrivals_pending={}",
                            rk.consumed_count[src],
                            rk.arrived_count[src],
                            rk.reserved_count[src],
                            self.ranks[src].sent_count[i],
                            rk.arrivals[src].len()
                        );
                    }
                }
            }
            debug_assert!(
                false,
                "simulation wedged: event heap drained before completion"
            );
        }
        self.into_report()
    }

    /// Stream the next queued recovery re-send, if none is in flight.
    fn pump_resends(&mut self, r: usize) {
        if self.ranks[r].resend_token.is_some() {
            return;
        }
        let Some((dst, index, bytes)) = self.ranks[r].resend_q.pop_front() else {
            return;
        };
        let token = self.ranks[r].next_token;
        self.ranks[r].next_token += 1;
        self.ranks[r].resend_token = Some(token);
        self.send_or_gate(
            r,
            SendSpec::Payload {
                dst,
                index,
                bytes,
                token: Some(token),
                op: None,
            },
        );
    }

    fn on_send_tx_done(&mut self, r: usize, token: u64) {
        if self.ranks[r].resend_token == Some(token) {
            self.ranks[r].resend_token = None;
            self.pump_resends(r);
            return;
        }
        // Tokens in the upper range encode request completions.
        if token > u64::MAX / 2 {
            let op = (u64::MAX - token) as usize;
            self.ranks[r].reqs.insert(op, true);
            self.ranks[r].incomplete_reqs.remove(&op);
            self.check_wait_block(r);
            return;
        }
        if self.ranks[r].blocked == Some(Block::Send { token }) {
            self.unblock(r);
        }
    }

    fn all_done(&self) -> bool {
        self.ranks
            .iter()
            .all(|r| r.finish.is_some() || matches!(r.mode, Mode::Finished))
    }

    fn into_report(self) -> SimReport {
        let makespan = self
            .ranks
            .iter()
            .filter(|r| !matches!(r.mode, Mode::Finished))
            .filter_map(|r| r.finish)
            .max()
            .unwrap_or(self.now);
        SimReport {
            makespan,
            per_rank: self.ranks.iter().map(|r| r.breakdown).collect(),
            msgs_delivered: self.msgs_delivered,
            bytes_delivered: self.bytes_delivered,
            el_events: self.el_events,
            el_requests: self.el_requests,
            max_log_bytes: self
                .ranks
                .iter()
                .map(|r| r.max_log_bytes)
                .max()
                .unwrap_or(0),
            spilled: self.ranks.iter().any(|r| r.spilled),
            infeasible: self.infeasible,
            checkpoints: self.checkpoints,
            faults: self.faults,
            gate_wait: self.gate_wait,
            el_ack_rtt: self.el_ack_rtt,
        }
    }
}

/// Simulate a fault-free run.
pub fn simulate(cfg: ClusterConfig, traces: Vec<Vec<Op>>) -> SimReport {
    Sim::new(cfg, traces).run_with_plan(&FaultPlan::default())
}

/// Simulate with faults and (optionally) continuous checkpointing.
pub fn simulate_with_faults(
    cfg: ClusterConfig,
    traces: Vec<Vec<Op>>,
    plan: &FaultPlan,
) -> SimReport {
    Sim::new(cfg, traces).run_with_plan(plan)
}

/// The Fig.-10 scenario: the run has completed; restart the given ranks
/// from the *beginning* (no checkpoints) and measure their re-execution.
/// Non-restarted ranks only serve re-sends from their logs.
#[allow(clippy::needless_range_loop)] // rank/peer cross-indexing
pub fn simulate_replay(cfg: ClusterConfig, traces: Vec<Vec<Op>>, restarted: &[usize]) -> SimReport {
    let n = traces.len();
    let restarted: HashSet<usize> = restarted.iter().copied().collect();
    // Per-pair totals of the completed run.
    let mut sent_sizes: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); n]; n];
    for (r, t) in traces.iter().enumerate() {
        for op in t {
            match op {
                Op::Send { dst, bytes } | Op::Isend { dst, bytes } => {
                    sent_sizes[r][*dst].push(*bytes);
                }
                _ => {}
            }
        }
    }
    let mut sim = Sim::new(cfg, traces);
    for r in 0..n {
        if restarted.contains(&r) {
            let until = sim.ranks[r].trace.len();
            sim.ranks[r].mode = Mode::Replay { until };
        } else {
            // Finished: full counters; serves re-sends only.
            sim.ranks[r].mode = Mode::Finished;
            for d in 0..n {
                sim.ranks[r].sent_count[d] = sent_sizes[r][d].len() as u64;
                sim.ranks[r].sent_sizes[d] = sent_sizes[r][d].clone();
            }
            for s in 0..n {
                let total = sent_sizes[s][r].len() as u64;
                sim.ranks[r].arrived_count[s] = total;
                sim.ranks[r].consumed_count[s] = total;
                sim.ranks[r].reserved_count[s] = total;
            }
        }
    }
    // RESTART1 handshake: every finished peer streams its logged messages
    // to the restarted ranks.
    let restarted_list: Vec<usize> = restarted.iter().copied().collect();
    for &v in &restarted_list {
        sim.enqueue_retransmits_to(v);
    }
    sim.run_with_plan(&FaultPlan::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn cfg(p: Protocol, n: usize) -> ClusterConfig {
        ClusterConfig::paper_cluster(p, n)
    }

    fn one_send(bytes: u64) -> Vec<Vec<Op>> {
        let mut a = TraceBuilder::new();
        a.send(1, bytes);
        let mut b = TraceBuilder::new();
        b.recv(0);
        vec![a.build(), b.build()]
    }

    #[test]
    fn single_message_analytic_time_p4() {
        // Delivery time = send_overhead + bytes/bw + wire + last-chunk rx
        // (+ recv_overhead); check against the closed form within 2%.
        let c = cfg(Protocol::P4, 2);
        let bytes = 64 * 1024u64;
        let rep = simulate(c.clone(), one_send(bytes));
        let expect = c.send_overhead
            + transfer_ns(bytes, c.bandwidth)
            + c.wire_latency
            + transfer_ns(c.chunk_bytes, c.bandwidth)
            + c.recv_overhead;
        let err = (rep.makespan as f64 - expect as f64).abs() / expect as f64;
        assert!(err < 0.02, "makespan {} vs analytic {expect}", rep.makespan);
    }

    #[test]
    fn v2_zero_byte_includes_no_gate_wait_for_single_message() {
        // A single one-way message never waits on the gate (the gate only
        // defers *subsequent* sends).
        let p4 = simulate(cfg(Protocol::P4, 2), one_send(0)).makespan;
        let v2 = simulate(cfg(Protocol::V2, 2), one_send(0)).makespan;
        assert_eq!(
            p4, v2,
            "one-way latency identical: the ack is off the critical path"
        );
    }

    #[test]
    fn gate_defers_second_send_after_reception() {
        // B receives then sends: the reply waits for the EL ack.
        let mut a = TraceBuilder::new();
        a.send(1, 0);
        a.recv(1);
        let mut b = TraceBuilder::new();
        b.recv(0);
        b.send(0, 0);
        let t = vec![a.build(), b.build()];
        let p4 = simulate(cfg(Protocol::P4, 2), t.clone()).makespan;
        let v2 = simulate(cfg(Protocol::V2, 2), t).makespan;
        let c = cfg(Protocol::V2, 2);
        let el_rtt = 2 * (c.send_overhead + c.wire_latency + c.recv_overhead) + c.el_service;
        let slack = (v2 - p4) as i64 - el_rtt as i64;
        assert!(
            slack.abs() < 20_000,
            "V2 - P4 should be one EL round trip (~{el_rtt} ns), got {}",
            v2 - p4
        );
    }

    #[test]
    fn driver_stall_applies_only_to_large_eager() {
        // Bidirectional exchange of eager-large messages halves P4
        // throughput; small or rendezvous messages do not.
        let bidir = |bytes: u64| {
            let mut a = TraceBuilder::new();
            let sa = a.isend(1, bytes);
            a.recv(1);
            a.wait(sa);
            let mut b = TraceBuilder::new();
            let sb = b.isend(0, bytes);
            b.recv(0);
            b.wait(sb);
            vec![a.build(), b.build()]
        };
        let c = cfg(Protocol::P4, 2);
        let wire = |bytes: u64| transfer_ns(bytes, c.bandwidth);
        // Large eager (100 kB): serialized => ~2x wire time.
        let t_large = simulate(c.clone(), bidir(100 << 10)).makespan;
        assert!(
            t_large as f64 > 1.7 * wire(100 << 10) as f64,
            "large eager must stall"
        );
        // Rendezvous (300 kB): full duplex => ~1x wire time + handshake.
        let t_rndv = simulate(c.clone(), bidir(300 << 10)).makespan;
        assert!(
            (t_rndv as f64) < 1.5 * wire(300 << 10) as f64,
            "rendezvous must not stall: {} vs wire {}",
            t_rndv,
            wire(300 << 10)
        );
    }

    #[test]
    fn el_partition_is_stable() {
        let sim = Sim::new(cfg(Protocol::V2, 8), vec![Vec::new(); 8]);
        for r in 0..8 {
            let el = sim.el_nid(r, 0);
            assert!(el >= sim.el_base && el < sim.cm_base);
            assert_eq!(el, sim.el_nid(r, 0));
        }
    }

    #[test]
    fn el_replica_addressing_is_contiguous_per_shard() {
        let mut c = cfg(Protocol::V2, 8);
        c.event_loggers = 2;
        c.el_replicas = 3;
        let sim = Sim::new(c, vec![Vec::new(); 8]);
        assert_eq!(sim.cm_base - sim.el_base, 6, "2 shards x 3 replicas");
        for r in 0..8 {
            let shard = r % 2;
            for rep in 0..3 {
                assert_eq!(sim.el_nid(r, rep), sim.el_base + shard * 3 + rep);
            }
        }
        assert_eq!(sim.el_quorum(), 2, "majority of 3");
    }

    #[test]
    fn el_replication_costs_traffic_but_not_the_gate() {
        // The same event sequence ships R wire copies per batch, but the
        // gate reopens on the quorum ack of symmetric replicas: logical
        // counts and RTT samples are replica-invariant, and the makespan
        // only pays the fan-out serialization (never improves).
        let run = |reps: usize| {
            let mut c = cfg(Protocol::V2, 2);
            c.el_replicas = reps;
            let mut a = TraceBuilder::new();
            let mut b = TraceBuilder::new();
            for _ in 0..20 {
                a.send(1, 1024);
                b.recv(0);
            }
            simulate(c, vec![a.build(), b.build()])
        };
        let base = run(1);
        let tri = run(3);
        assert_eq!(tri.el_events, base.el_events, "logical events");
        assert_eq!(tri.el_requests, base.el_requests, "batches shipped");
        // One RTT sample per *retired* batch, taken at the quorum ack.
        // Quorum acks land later than a lone ack (the fan-out serializes
        // on the owner's tx lane), so more tail batches can still be in
        // flight at finish — the count may trail, never exceed.
        assert!(tri.el_ack_rtt.count() <= base.el_ack_rtt.count());
        assert!(base.el_ack_rtt.count() <= base.el_requests);
        assert_eq!(tri.msgs_delivered, base.msgs_delivered);
        assert!(tri.makespan >= base.makespan, "replication is never free");
    }

    #[test]
    fn report_counts_match_traffic() {
        let mut a = TraceBuilder::new();
        for _ in 0..5 {
            a.send(1, 1000);
        }
        let mut b = TraceBuilder::new();
        for _ in 0..5 {
            b.recv(0);
        }
        let rep = simulate(cfg(Protocol::V2, 2), vec![a.build(), b.build()]);
        assert_eq!(rep.msgs_delivered, 5);
        assert_eq!(rep.bytes_delivered, 5000);
        assert_eq!(rep.el_events, 5);
        assert_eq!(rep.el_requests, 5, "eager logging: one request per event");
        assert_eq!(rep.max_log_bytes, 5000);
    }

    #[test]
    fn el_batching_coalesces_requests_for_reception_bursts() {
        // A receive-only rank accumulates events to the batch threshold:
        // 8 receptions ship as ceil(8/4) = 2 EL requests.
        let mut a = TraceBuilder::new();
        for _ in 0..8 {
            a.send(1, 1000);
        }
        let mut b = TraceBuilder::new();
        for _ in 0..8 {
            b.recv(0);
        }
        let mut c = cfg(Protocol::V2, 2);
        c.el_batch_max = 4;
        let rep = simulate(c, vec![a.build(), b.build()]);
        assert_eq!(rep.el_events, 8);
        assert_eq!(rep.el_requests, 2, "two 4-event batches");
        assert_eq!(rep.msgs_delivered, 8);
    }

    #[test]
    fn el_batching_flushes_when_a_send_gates() {
        // Ping-pong under a huge batch threshold: each reply queues
        // behind the gate, which forces the pending event out — the run
        // completes (no deadlock) and pays one EL request per reception.
        let iters = 4u32;
        let mut a = TraceBuilder::new();
        let mut b = TraceBuilder::new();
        for _ in 0..iters {
            a.send(1, 0);
            a.recv(1);
            b.recv(0);
            b.send(0, 0);
        }
        let mut c = cfg(Protocol::V2, 2);
        c.el_batch_max = 1 << 20;
        let rep = simulate(c, vec![a.build(), b.build()]);
        assert_eq!(rep.msgs_delivered, 2 * iters as u64);
        assert_eq!(rep.el_events, 2 * iters as u64);
        // B's replies force per-event flushes; A's receptions (no
        // subsequent gated send except the next ping) flush likewise.
        assert!(
            rep.el_requests >= iters as u64,
            "gated sends must force flushes: {} requests",
            rep.el_requests
        );
    }

    #[test]
    fn el_batching_preserves_one_way_latency() {
        // Lazy batching only defers EL traffic; a single one-way message
        // never waits on the gate, so its latency is unchanged.
        let eager = simulate(cfg(Protocol::V2, 2), one_send(0)).makespan;
        let mut c = cfg(Protocol::V2, 2);
        c.el_batch_max = 64;
        let lazy = simulate(c, one_send(0)).makespan;
        assert_eq!(eager, lazy);
    }

    #[test]
    fn v1_stores_nothing_on_computing_nodes() {
        let rep = simulate(cfg(Protocol::V1, 2), one_send(4096));
        assert_eq!(rep.max_log_bytes, 0, "V1 logs on the CM, not the sender");
        assert_eq!(rep.el_events, 0);
    }

    #[test]
    fn checkpoint_site_without_order_is_free() {
        let mk = |sites: bool| {
            let mut a = TraceBuilder::new();
            let mut b = TraceBuilder::new();
            for _ in 0..10 {
                a.send(1, 1024);
                if sites {
                    a.checkpoint_site();
                }
                b.recv(0);
                if sites {
                    b.checkpoint_site();
                }
            }
            vec![a.build(), b.build()]
        };
        let with = simulate(cfg(Protocol::V2, 2), mk(true)).makespan;
        let without = simulate(cfg(Protocol::V2, 2), mk(false)).makespan;
        assert_eq!(with, without, "unarmed checkpoint sites cost nothing");
    }

    /// Render the dump exactly as `RecorderHub::dump` writes it.
    fn canonical_dump(hub: &mvr_obs::RecorderHub) -> String {
        let timeline = hub.timeline();
        let mut out = mvr_obs::header_line(&mvr_obs::DumpHeader {
            records: timeline.len() as u64,
            dropped: hub.dropped(),
            offsets: Vec::new(),
            track: Vec::new(),
            unconstrained: Vec::new(),
        });
        for rec in &timeline {
            out.push_str(&mvr_obs::jsonl_line(rec));
        }
        out
    }

    fn chaotic_v2_dump(seed: u64) -> String {
        // A faulted, continuously-checkpointing V2 run: exercises Send /
        // GateDefer / GateOpen / Deliver / ElShip / ElAck / Ckpt* /
        // ChaosKill / Restart1 / ReplayStep / Finish records.
        let iters = 6;
        let mut a = TraceBuilder::new();
        let mut b = TraceBuilder::new();
        for _ in 0..iters {
            a.send(1, 2048);
            a.recv(1);
            a.checkpoint_site();
            b.recv(0);
            b.send(0, 2048);
            b.checkpoint_site();
        }
        let hub = mvr_obs::RecorderHub::new(mvr_obs::RecorderConfig::enabled());
        let mut sim = Sim::new(cfg(Protocol::V2, 2), vec![a.build(), b.build()]);
        sim.attach_recorder(&hub);
        let plan = FaultPlan {
            faults: vec![(3_000_000, 1)],
            continuous_checkpointing: true,
            seed,
        };
        let rep = sim.run_with_plan(&plan);
        assert!(!rep.infeasible);
        assert_eq!(rep.faults, 1);
        canonical_dump(&hub)
    }

    #[test]
    fn seeded_run_dumps_are_byte_stable() {
        let d1 = chaotic_v2_dump(42);
        let d2 = chaotic_v2_dump(42);
        assert_eq!(d1, d2, "same seed must render byte-identical dumps");
        assert!(d1.contains("\"Deliver\""), "dump has deliveries");
        assert!(d1.contains("\"ElAck\""), "dump has EL acks");
        assert!(d1.contains("\"ChaosKill\""), "dump has the injected kill");
        assert!(d1.contains("\"Restart1\""), "dump has the restart");
    }

    #[test]
    fn virtual_time_records_survive_the_span_stitcher() {
        // The merged virtual-time timeline must stitch into spans with
        // no orphan edges and replay cleanly through the invariant
        // monitor — the same bar the acceptance pipeline holds real
        // dumps to.
        let iters = 4;
        let mut a = TraceBuilder::new();
        let mut b = TraceBuilder::new();
        for _ in 0..iters {
            a.send(1, 512);
            a.recv(1);
            b.recv(0);
            b.send(0, 512);
        }
        let hub = mvr_obs::RecorderHub::new(mvr_obs::RecorderConfig::enabled());
        let mut sim = Sim::new(cfg(Protocol::V2, 2), vec![a.build(), b.build()]);
        sim.attach_recorder(&hub);
        sim.run_with_plan(&FaultPlan::default());
        let timeline = hub.timeline();
        let spans = mvr_obs::SpanSet::build(&timeline);
        assert!(
            spans.orphans.is_empty(),
            "orphan edges in sim timeline: {:?}",
            spans.orphans
        );
        assert_eq!(spans.spans.len(), 2 * iters, "one span per message");
        let monitor = mvr_obs::InvariantMonitor::new();
        monitor.observe_all(&timeline);
        assert!(
            monitor.violation().is_none(),
            "sim timeline must be invariant-clean: {:?}",
            monitor.violation()
        );
    }

    #[test]
    fn lane_reservation_chain_is_fifo() {
        let mut lane = Lane::new();
        let (s1, e1) = lane.reserve(0, 100);
        let (s2, e2) = lane.reserve(0, 50);
        assert_eq!((s1, e1), (0, 100));
        assert_eq!((s2, e2), (100, 150));
    }
}
