//! Simulated time: nanoseconds in a `u64`, with readable constructors.

/// A point (or span) of virtual time, in nanoseconds.
pub type SimTime = u64;

/// One microsecond.
pub const USEC: SimTime = 1_000;
/// One millisecond.
pub const MSEC: SimTime = 1_000_000;
/// One second.
pub const SEC: SimTime = 1_000_000_000;

/// Microseconds → SimTime.
#[inline]
pub fn usecs(n: u64) -> SimTime {
    n * USEC
}

/// Milliseconds → SimTime.
#[inline]
pub fn msecs(n: u64) -> SimTime {
    n * MSEC
}

/// Seconds → SimTime.
#[inline]
pub fn secs(n: u64) -> SimTime {
    n * SEC
}

/// SimTime → fractional seconds (for reports).
#[inline]
pub fn as_secs_f64(t: SimTime) -> f64 {
    t as f64 / SEC as f64
}

/// Transfer duration of `bytes` at `bytes_per_sec`, in ns.
#[inline]
pub fn transfer_ns(bytes: u64, bytes_per_sec: u64) -> SimTime {
    if bytes == 0 || bytes_per_sec == 0 {
        return 0;
    }
    // ns = bytes * 1e9 / Bps, computed in u128 to avoid overflow.
    ((bytes as u128 * SEC as u128) / bytes_per_sec as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(usecs(77), 77_000);
        assert_eq!(msecs(3), 3_000_000);
        assert_eq!(secs(2), 2_000_000_000);
        assert!((as_secs_f64(1_500_000_000) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_time() {
        // 1 MB at 10 MB/s = 0.1 s.
        assert_eq!(transfer_ns(1_000_000, 10_000_000), 100 * MSEC);
        assert_eq!(transfer_ns(0, 10_000_000), 0);
        assert_eq!(transfer_ns(10, 0), 0);
        // No overflow for huge transfers.
        assert!(transfer_ns(u64::MAX / 2, 1) > 0);
    }
}
