//! The calibrated cluster model.
//!
//! Constants are calibrated to the paper's testbed (§5): 32 Athlon XP
//! 1800+ computing nodes and dual-PIII auxiliary nodes on a 48-port
//! 100 Mbit/s Ethernet switch, MPICH 1.2.5.
//!
//! Calibration anchors from the paper's measurements:
//! * P4 0-byte one-way latency 77 µs ⇒ per-message software cost
//!   ~35 µs on each side + ~7 µs of wire/switch latency;
//! * P4 peak ping-pong bandwidth 11.3 MB/s (of the 12.5 MB/s line rate);
//! * V2 0-byte latency 237 µs ⇒ the send is gated behind the event-logger
//!   round-trip (3 serialized messages per direction ≈ 3 × 77);
//! * V2 peak bandwidth 10.7 MB/s ⇒ the sender-based payload copy costs
//!   about (1/10.7 − 1/11.3) µs/byte ⇒ ~200 MB/s effective copy rate;
//! * the MPICH 1.2.5 eager→rendezvous switch at 128 000 bytes
//!   (the Fig. 10 non-linearity between 64 kB and 128 kB);
//! * per-node message-log budget 1 GB RAM + 1 GB IDE disk, runs aborted
//!   beyond 2 GB (the FT-class-B case).

use crate::time::{usecs, SimTime};
use serde::{Deserialize, Serialize};

/// Which protocol stack the simulated daemons run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// MPICH-P4: direct sockets, no fault tolerance, half-duplex driver,
    /// payload pushed during `MPI_Isend`.
    P4,
    /// MPICH-V1: every message store-and-forwarded through the receiver's
    /// Channel Memory (message granularity).
    V1,
    /// MPICH-V2: direct transfer + sender-based copy + event-logger ack
    /// gating; full-duplex driver; transfer under `MPI_Wait`.
    V2,
}

impl Protocol {
    /// All protocols, for sweeps.
    pub fn all() -> [Protocol; 3] {
        [Protocol::P4, Protocol::V1, Protocol::V2]
    }

    /// Display name used in reports (matching the paper's labels).
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::P4 => "MPICH-P4",
            Protocol::V1 => "MPICH-V1",
            Protocol::V2 => "MPICH-V2",
        }
    }
}

/// The cluster cost model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Number of computing nodes.
    pub nodes: usize,
    /// Per-stage effective TCP bandwidth (bytes/s). Calibrated so the P4
    /// ping-pong peaks at 11.3 MB/s.
    pub bandwidth: u64,
    /// Per-message software cost on the send side (ns).
    pub send_overhead: SimTime,
    /// Per-message software cost on the receive side (ns).
    pub recv_overhead: SimTime,
    /// Wire + switch latency (ns).
    pub wire_latency: SimTime,
    /// Chunk size for pipelined transfers (bytes). Controls duplex
    /// interleaving granularity, not throughput.
    pub chunk_bytes: u64,
    /// Eager→rendezvous threshold (bytes), MPICH 1.2.5 default.
    pub rndv_threshold: u64,
    /// P4 only: kernel socket-buffer size. Sends that fit return after a
    /// memcpy and the kernel keeps the connection full-duplex; larger
    /// sends block the driver in `write()`, serializing the connection's
    /// two directions (the Fig. 9 half-duplex effect).
    pub p4_socket_buffer: u64,
    /// V2 only: effective bandwidth of the sender-based payload copy
    /// while the log lives in RAM (bytes/s).
    pub log_copy_bw: u64,
    /// V2 only: copy bandwidth once the log has spilled to disk (bytes/s;
    /// 2003-era IDE writes — the LU effect).
    pub log_disk_bw: u64,
    /// V2 only: RAM budget for the message log (bytes).
    pub log_ram_budget: u64,
    /// V2 only: absolute log capacity; beyond it the run is infeasible
    /// (bytes; "a maximum storage size of 2 GB per node").
    pub log_capacity: u64,
    /// V2 only: compute-stretch factor applied while the log is spilling
    /// to disk (the daemon competes with the MPI process for the CPU).
    pub disk_contention: f64,
    /// V2 only: `MPI_Isend` posting cost (ns) — the "notification".
    pub isend_post_cost: SimTime,
    /// Event-logger service time per request, on top of message costs (ns).
    pub el_service: SimTime,
    /// Size of one reception-event record on the wire (bytes).
    pub event_bytes: u64,
    /// V2 only: maximum reception events a daemon accumulates before
    /// shipping them to the event logger as one batch. `1` reproduces the
    /// paper's eager per-event logging (the calibration baseline); larger
    /// values enable lazy batching — events still close the pessimism
    /// gate at delivery, but the EL round-trip is paid per *batch*, with
    /// a forced flush whenever a send queues behind the gate.
    pub el_batch_max: u64,
    /// V2 only: tune the batch threshold *online* per rank instead of
    /// using `el_batch_max` as a fixed constant (mirrors the engine's
    /// `BatchPolicy::Adaptive`). The per-rank limit starts at 1 and
    /// doubles on every EL ack while the gate-wait p99 stays under
    /// `el_gate_budget_ns`, halves whenever a send queues behind the
    /// gate, and never exceeds `el_batch_max`.
    pub el_batch_adaptive: bool,
    /// Gate-wait p99 budget for adaptive widening (virtual ns).
    pub el_gate_budget_ns: u64,
    /// Number of event-logger shards (ranks are partitioned round-robin).
    pub event_loggers: usize,
    /// V2 only: replicas per event-logger shard. Each shipped batch fans
    /// out to every replica of the owner's shard and the pessimism gate
    /// reopens on the *quorum* ack (majority of replicas), so replication
    /// multiplies EL wire traffic and rank tx-lane pressure without
    /// stretching the gate when replicas are symmetric. `1` reproduces
    /// the paper's unreplicated deployment on the exact same event
    /// sequence (the figure-5/6 calibration baseline).
    pub el_replicas: usize,
    /// Number of Channel Memories for V1 (the paper used N/4; each CM
    /// serves ranks round-robin). 0 means one CM per rank.
    pub channel_memories: usize,
    /// Checkpoint-server transfer bandwidth (bytes/s), sharing the node's
    /// tx lane with application traffic.
    pub ckpt_bandwidth: u64,
    /// Fixed restart overhead (process spawn, reconnection) (ns).
    pub restart_overhead: SimTime,
    /// Fixed per-process state size included in every checkpoint image
    /// (bytes) — the application memory footprint.
    pub process_state_bytes: u64,
}

impl ClusterConfig {
    /// The paper's cluster, for `nodes` computing nodes under `protocol`.
    pub fn paper_cluster(protocol: Protocol, nodes: usize) -> Self {
        ClusterConfig {
            protocol,
            nodes,
            bandwidth: 11_300_000,
            send_overhead: usecs(35),
            recv_overhead: usecs(35),
            wire_latency: usecs(7),
            chunk_bytes: 16 * 1024,
            rndv_threshold: 128_000,
            p4_socket_buffer: 60 * 1024,
            log_copy_bw: 200_000_000,
            log_disk_bw: 15_000_000,
            log_ram_budget: 1 << 30,
            log_capacity: 2 << 30,
            disk_contention: 1.35,
            isend_post_cost: usecs(5),
            el_service: usecs(4),
            event_bytes: 20,
            el_batch_max: 1,
            el_batch_adaptive: false,
            el_gate_budget_ns: 100_000,
            event_loggers: 1,
            el_replicas: 1,
            channel_memories: 0,
            ckpt_bandwidth: 11_300_000,
            restart_overhead: crate::time::msecs(500),
            process_state_bytes: 32 << 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_anchors() {
        let c = ClusterConfig::paper_cluster(Protocol::P4, 2);
        // 0-byte one-way latency = send + wire + recv = 77 µs.
        assert_eq!(
            c.send_overhead + c.wire_latency + c.recv_overhead,
            usecs(77)
        );
        assert_eq!(c.rndv_threshold, 128_000);
        assert_eq!(c.bandwidth, 11_300_000);
        // Copy-rate calibration: 1/bw + 1/copy ≈ 1/10.7 MB/s.
        let v2_rate = 1.0 / (1.0 / c.bandwidth as f64 + 1.0 / c.log_copy_bw as f64);
        assert!(
            (v2_rate - 10_700_000.0).abs() < 300_000.0,
            "v2 asymptote {v2_rate}"
        );
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(Protocol::P4.label(), "MPICH-P4");
        assert_eq!(Protocol::all().len(), 3);
    }
}
