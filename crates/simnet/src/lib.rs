//! # mvr-simnet — the calibrated cluster simulator
//!
//! A deterministic discrete-event simulator of the paper's testbed
//! (32 Athlon nodes on 100 Mb/s Ethernet), interpreting per-rank
//! operation traces under the three protocol models of the evaluation:
//! MPICH-P4, MPICH-V1 and MPICH-V2. This is the substitution for the
//! hardware we do not have (DESIGN.md §2): it regenerates the *shapes* of
//! every performance figure — bandwidth/latency crossovers, NAS behaviour,
//! re-execution and faulty-execution curves.
//!
//! See `config.rs` for the calibration anchors and `sim.rs` for the
//! faithfulness notes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod lane;
pub mod report;
pub mod sim;
pub mod time;
pub mod trace;

pub use config::{ClusterConfig, Protocol};
pub use report::{RankBreakdown, SimReport};
pub use sim::{simulate, simulate_replay, simulate_with_faults, FaultPlan, Sim};
pub use time::{as_secs_f64, msecs, secs, transfer_ns, usecs, SimTime, MSEC, SEC, USEC};
pub use trace::{traffic_summary, validate_matching, Op, ReqHandle, TraceBuilder};
