//! FIFO transmission lanes — the serialized resources of the cost model.
//!
//! A lane models one direction of a node's TCP/driver capacity. Because
//! jobs are served in reservation order with no preemption, a single
//! `available_at` watermark implements an exact FIFO queue: a reservation
//! starts at `max(now, available_at)` and pushes the watermark.
//!
//! The *duplex* distinction of Fig. 9 is expressed with lane topology:
//! the MPICH-P4 driver is half-duplex (one shared lane serves both
//! directions — "the P4 driver does not poll incoming receptions while
//! sending"), while the V1/V2 daemons get separate tx and rx lanes
//! ("the V2 driver pools for incoming receptions after each transmitted
//! chunk").

use crate::time::SimTime;

/// One FIFO resource.
#[derive(Clone, Copy, Debug, Default)]
pub struct Lane {
    available_at: SimTime,
    busy_ns: SimTime,
}

impl Lane {
    /// A free lane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the lane for `dur` starting no earlier than `now`.
    /// Returns (start, end).
    pub fn reserve(&mut self, now: SimTime, dur: SimTime) -> (SimTime, SimTime) {
        let start = now.max(self.available_at);
        let end = start + dur;
        self.available_at = end;
        self.busy_ns += dur;
        (start, end)
    }

    /// When the lane next becomes free.
    pub fn available_at(&self) -> SimTime {
        self.available_at
    }

    /// Cumulative busy time (utilization accounting).
    pub fn busy_ns(&self) -> SimTime {
        self.busy_ns
    }

    /// Reset on a crash: pending reservations die with the node.
    pub fn reset(&mut self, now: SimTime) {
        self.available_at = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_accumulation() {
        let mut l = Lane::new();
        assert_eq!(l.reserve(100, 50), (100, 150));
        // Second job queued behind the first even if requested earlier.
        assert_eq!(l.reserve(120, 30), (150, 180));
        // After idle gap, starts at `now`.
        assert_eq!(l.reserve(1000, 10), (1000, 1010));
        assert_eq!(l.busy_ns(), 90);
    }

    #[test]
    fn reset_clears_backlog() {
        let mut l = Lane::new();
        l.reserve(0, 1_000_000);
        l.reset(500);
        assert_eq!(l.reserve(500, 10), (500, 510));
    }
}
