//! Per-rank operation traces — the workload representation the simulator
//! interprets.
//!
//! Workload generators (`mvr-workloads`) lower each benchmark — including
//! its collectives — into per-rank sequences of these primitive ops.
//! Matching is per-source FIFO (tags are unnecessary at this level: the
//! NAS trace models are deterministic programs).

use serde::{Deserialize, Serialize};

/// A request handle inside a trace: the index of the `Isend`/`Irecv` op
/// *within its own rank's trace* that created it.
pub type ReqHandle = usize;

/// One traced operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Busy CPU time (ns).
    Compute(u64),
    /// Blocking send of `bytes` to `dst` (completes when the payload has
    /// left this node).
    Send {
        /// Destination rank.
        dst: usize,
        /// Payload size.
        bytes: u64,
    },
    /// Blocking receive of the next unconsumed message from `src`.
    Recv {
        /// Source rank.
        src: usize,
    },
    /// Nonblocking send; completed by a `Wait` on this op's index.
    Isend {
        /// Destination rank.
        dst: usize,
        /// Payload size.
        bytes: u64,
    },
    /// Nonblocking receive; completed by a `Wait` on this op's index.
    Irecv {
        /// Source rank.
        src: usize,
    },
    /// Block until the request created at trace index `req` completes.
    Wait {
        /// Trace index of the `Isend`/`Irecv`.
        req: ReqHandle,
    },
    /// Block until every outstanding request completes.
    WaitAll,
    /// A quiescent point where a daemon-ordered checkpoint may be taken
    /// (our Condor substitution; free when no checkpoint is pending).
    CheckpointSite,
}

/// A builder for one rank's trace with convenient request plumbing.
#[derive(Clone, Debug, Default)]
pub struct TraceBuilder {
    ops: Vec<Op>,
}

impl TraceBuilder {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append busy time.
    pub fn compute(&mut self, ns: u64) -> &mut Self {
        if ns > 0 {
            self.ops.push(Op::Compute(ns));
        }
        self
    }

    /// Append a blocking send.
    pub fn send(&mut self, dst: usize, bytes: u64) -> &mut Self {
        self.ops.push(Op::Send { dst, bytes });
        self
    }

    /// Append a blocking receive.
    pub fn recv(&mut self, src: usize) -> &mut Self {
        self.ops.push(Op::Recv { src });
        self
    }

    /// Append a nonblocking send, returning its handle.
    pub fn isend(&mut self, dst: usize, bytes: u64) -> ReqHandle {
        self.ops.push(Op::Isend { dst, bytes });
        self.ops.len() - 1
    }

    /// Append a nonblocking receive, returning its handle.
    pub fn irecv(&mut self, src: usize) -> ReqHandle {
        self.ops.push(Op::Irecv { src });
        self.ops.len() - 1
    }

    /// Append a wait on one handle.
    pub fn wait(&mut self, req: ReqHandle) -> &mut Self {
        self.ops.push(Op::Wait { req });
        self
    }

    /// Append a wait on everything outstanding.
    pub fn waitall(&mut self) -> &mut Self {
        self.ops.push(Op::WaitAll);
        self
    }

    /// Append a checkpoint site.
    pub fn checkpoint_site(&mut self) -> &mut Self {
        self.ops.push(Op::CheckpointSite);
        self
    }

    /// Append a blocking exchange (isend + recv + wait) — the deadlock-free
    /// neighbour exchange used by most kernels.
    pub fn sendrecv(&mut self, dst: usize, bytes: u64, src: usize) -> &mut Self {
        let r = self.isend(dst, bytes);
        self.recv(src);
        self.wait(r);
        self
    }

    /// Finish the trace.
    pub fn build(self) -> Vec<Op> {
        self.ops
    }

    /// Current length (next op index).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Count the messages and bytes a trace set will move (sanity checks and
/// log-volume prediction).
pub fn traffic_summary(traces: &[Vec<Op>]) -> (u64, u64) {
    let mut msgs = 0u64;
    let mut bytes = 0u64;
    for t in traces {
        for op in t {
            match op {
                Op::Send { bytes: b, .. } | Op::Isend { bytes: b, .. } => {
                    msgs += 1;
                    bytes += b;
                }
                _ => {}
            }
        }
    }
    (msgs, bytes)
}

/// Validate that every send has a matching receive (per ordered pair) —
/// catches malformed workload generators early.
pub fn validate_matching(traces: &[Vec<Op>]) -> Result<(), String> {
    let n = traces.len();
    let mut sends = vec![vec![0u64; n]; n];
    let mut recvs = vec![vec![0u64; n]; n];
    for (r, t) in traces.iter().enumerate() {
        for op in t {
            match op {
                Op::Send { dst, .. } | Op::Isend { dst, .. } => {
                    if *dst >= n {
                        return Err(format!("rank {r} sends to out-of-range {dst}"));
                    }
                    if *dst == r {
                        return Err(format!("rank {r} sends to itself (not modeled)"));
                    }
                    sends[r][*dst] += 1;
                }
                Op::Recv { src } | Op::Irecv { src } => {
                    if *src >= n {
                        return Err(format!("rank {r} receives from out-of-range {src}"));
                    }
                    recvs[*src][r] += 1;
                }
                _ => {}
            }
        }
    }
    for s in 0..n {
        for d in 0..n {
            if sends[s][d] != recvs[s][d] {
                return Err(format!(
                    "pair {s}->{d}: {} sends but {} receives",
                    sends[s][d], recvs[s][d]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_ops() {
        let mut b = TraceBuilder::new();
        b.compute(100);
        let r = b.isend(1, 64);
        b.recv(1);
        b.wait(r);
        let t = b.build();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], Op::Compute(100));
        assert_eq!(t[1], Op::Isend { dst: 1, bytes: 64 });
        assert_eq!(t[3], Op::Wait { req: 1 });
    }

    #[test]
    fn zero_compute_skipped() {
        let mut b = TraceBuilder::new();
        b.compute(0);
        assert!(b.is_empty());
    }

    #[test]
    fn traffic_summary_counts() {
        let mut a = TraceBuilder::new();
        a.send(1, 100);
        a.isend(1, 50);
        let mut b = TraceBuilder::new();
        b.recv(0);
        b.recv(0);
        let traces = vec![a.build(), b.build()];
        assert_eq!(traffic_summary(&traces), (2, 150));
        assert!(validate_matching(&traces).is_ok());
    }

    #[test]
    fn validation_catches_mismatches() {
        let mut a = TraceBuilder::new();
        a.send(1, 100);
        let traces = vec![a.build(), vec![]];
        assert!(validate_matching(&traces).is_err());

        let mut c = TraceBuilder::new();
        c.send(0, 1);
        assert!(
            validate_matching(&[c.build()]).is_err(),
            "self-send rejected"
        );
    }

    #[test]
    fn sendrecv_helper_wires_requests() {
        let mut a = TraceBuilder::new();
        a.sendrecv(1, 8, 1);
        let t = a.build();
        assert_eq!(
            t,
            vec![
                Op::Isend { dst: 1, bytes: 8 },
                Op::Recv { src: 1 },
                Op::Wait { req: 0 }
            ]
        );
    }
}
