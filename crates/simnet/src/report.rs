//! Simulation results and instrumentation.

use crate::time::{as_secs_f64, SimTime};
use mvr_obs::LogHistogram;
use serde::{Deserialize, Serialize};

/// Where one rank's (virtual) time went — the Table-1 decomposition.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RankBreakdown {
    /// Busy compute time (including any contention stretch).
    pub compute: SimTime,
    /// Time blocked inside blocking sends (`MPI_Send`).
    pub send: SimTime,
    /// Time blocked inside blocking receives (`MPI_Recv`).
    pub recv: SimTime,
    /// Time blocked inside `MPI_Isend` calls.
    pub isend: SimTime,
    /// Time blocked inside `MPI_Irecv` calls (posting only).
    pub irecv: SimTime,
    /// Time blocked inside `MPI_Wait` / `MPI_Waitall`.
    pub wait: SimTime,
    /// Virtual time at which the rank finished its trace.
    pub finish: SimTime,
}

impl RankBreakdown {
    /// Total communication time (everything but compute).
    pub fn comm(&self) -> SimTime {
        self.send + self.recv + self.isend + self.irecv + self.wait
    }
}

/// The outcome of one simulation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Completion time of the whole run (max rank finish).
    pub makespan: SimTime,
    /// Per-rank time decomposition.
    pub per_rank: Vec<RankBreakdown>,
    /// Application messages delivered.
    pub msgs_delivered: u64,
    /// Application payload bytes delivered.
    pub bytes_delivered: u64,
    /// Reception events logged on the event logger(s) (V2 only).
    pub el_events: u64,
    /// Batched EL log requests shipped (V2 only; equals `el_events` under
    /// eager per-event logging, i.e. `el_batch_max == 1`).
    pub el_requests: u64,
    /// Peak per-node sender-log occupancy (bytes; V2 only).
    pub max_log_bytes: u64,
    /// The sender log spilled past RAM onto disk on some node (V2).
    pub spilled: bool,
    /// The 2 GB log capacity was exceeded: the run is infeasible on the
    /// paper's cluster (reported like the paper reports FT class B).
    pub infeasible: bool,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Faults injected.
    pub faults: u64,
    /// Virtual-time wait behind the pessimism gate, one sample per send
    /// that found the gate closed (V2 only). Sends that passed straight
    /// through contribute no sample — matching the live engine's
    /// `gate_wait` accounting.
    pub gate_wait: LogHistogram,
    /// Virtual-time EL round-trip, one sample per batched log request:
    /// ship → service → coalesced ack back at the daemon (V2 only).
    /// Acks still in flight when the last rank finishes are not sampled,
    /// so the count may trail [`SimReport::el_requests`] by up to one
    /// final-flush ack per rank.
    pub el_ack_rtt: LogHistogram,
}

impl SimReport {
    /// Makespan in seconds.
    pub fn seconds(&self) -> f64 {
        as_secs_f64(self.makespan)
    }

    /// Aggregate communication seconds across ranks (for breakdowns).
    pub fn comm_seconds(&self) -> f64 {
        as_secs_f64(self.per_rank.iter().map(|r| r.comm()).sum())
    }

    /// Aggregate compute seconds across ranks.
    pub fn compute_seconds(&self) -> f64 {
        as_secs_f64(self.per_rank.iter().map(|r| r.compute).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_sums_buckets() {
        let r = RankBreakdown {
            send: 1,
            recv: 2,
            isend: 3,
            irecv: 4,
            wait: 5,
            ..Default::default()
        };
        assert_eq!(r.comm(), 15);
    }

    #[test]
    fn seconds_conversion() {
        let rep = SimReport {
            makespan: 2_500_000_000,
            ..Default::default()
        };
        assert!((rep.seconds() - 2.5).abs() < 1e-12);
    }
}
