//! The event-logger service loop: wraps an [`EventLogStore`] behind a
//! fabric mailbox. The reply path is injected as a closure so this crate
//! stays independent of the runtime's daemon message enum.

use crate::store::EventLogStore;
use mvr_core::{ElReply, ElRequest, Rank};
use mvr_net::{Mailbox, RecvError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One inbound request: who asked, and what.
#[derive(Clone, Debug)]
pub struct ElPacket {
    /// The daemon (by rank) that sent the request.
    pub from: Rank,
    /// The request itself.
    pub req: ElRequest,
}

/// Statistics of one event-logger instance.
///
/// The counters reconcile: every inbound packet is accounted exactly
/// once, so `requests + merged_logs` equals packets received, and every
/// `Log` packet either produced an ack or had it coalesced away, so
/// `acks + coalesced_acks` equals `Log` packets received.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ElServiceStats {
    /// Requests processed after merging: a contiguous same-daemon
    /// same-owner `Log` run counts as one request (its merged-away
    /// packets are counted in `merged_logs`, not here).
    pub requests: u64,
    /// Acks produced.
    pub acks: u64,
    /// Downloads served.
    pub downloads: u64,
    /// `Log` requests merged into a predecessor from the same daemon for
    /// the same owner during one service pass.
    pub merged_logs: u64,
    /// Acks elided by high-watermark coalescing (each merged or coalesced
    /// `Log` would have produced its own ack under eager service).
    pub coalesced_acks: u64,
}

/// Run the event logger until its mailbox is killed (the EL is the
/// reliable component of the system — killing it in tests models the
/// "what if the reliable node dies" experiments).
///
/// Each service pass blocks for one request, then drains the whole
/// mailbox backlog. Contiguous `Log` requests from the same daemon for
/// the same owner are merged into a single store append, and every daemon
/// gets at most **one** coalesced high-watermark `Ack` per pass — the EL
/// half of the lazy-batching optimization (the daemon half batches
/// events; this half batches acks).
///
/// `reply` ships an [`ElReply`] back to the daemon of the given rank; a
/// failed reply (daemon crashed meanwhile) is ignored, matching a TCP
/// write error to a dead peer.
pub fn run_event_logger<F>(mailbox: Mailbox<ElPacket>, reply: F) -> (EventLogStore, ElServiceStats)
where
    F: FnMut(Rank, ElReply) -> bool,
{
    run_event_logger_counted(mailbox, reply, Arc::new(AtomicU64::new(0)))
}

/// As [`run_event_logger`], additionally publishing the store's
/// cumulative *unique*-event count ([`EventLogStore::total_logged`])
/// into `events_ever` after every service pass. The counter is monotone
/// across duplicates, replays and truncations, which makes it the
/// stable side of the conservation invariant the chaos tests assert:
/// the EL never double-counts a logical delivery, no matter how many
/// times crash recovery re-logs it.
pub fn run_event_logger_counted<F>(
    mailbox: Mailbox<ElPacket>,
    reply: F,
    events_ever: Arc<AtomicU64>,
) -> (EventLogStore, ElServiceStats)
where
    F: FnMut(Rank, ElReply) -> bool,
{
    let store = Arc::new(Mutex::new(EventLogStore::new()));
    let stats = run_event_logger_on(mailbox, reply, events_ever, store.clone());
    let store = Arc::try_unwrap(store)
        .map(Mutex::into_inner)
        .unwrap_or_else(|arc| arc.lock().clone());
    (store, stats)
}

/// As [`run_event_logger_counted`], but serving a caller-owned shared
/// ledger instead of a loop-local one. This is the replica shape: the
/// dispatcher keeps the `Arc` so that when a replica crashes, its ledger
/// survives the service thread — the revived replica catches up by
/// [`EventLogStore::absorb`]ing a live peer's snapshot into the same
/// store before its fresh service loop starts. The store lock is taken
/// once per service pass, never per packet.
pub fn run_event_logger_on<F>(
    mailbox: Mailbox<ElPacket>,
    mut reply: F,
    events_ever: Arc<AtomicU64>,
    store: Arc<Mutex<EventLogStore>>,
) -> ElServiceStats
where
    F: FnMut(Rank, ElReply) -> bool,
{
    let mut stats = ElServiceStats::default();
    // Revival announcement: a replica that starts over a non-empty
    // ledger (it absorbed a live peer's snapshot after a crash) re-acks
    // every owner's watermark unsolicited. Daemons whose pessimism gates
    // stalled during the sub-quorum window fold these into their quorum
    // trackers and reopen without waiting for new traffic — without
    // this, a fully quiesced deployment could deadlock on a gate no new
    // Log request will ever come along to ack. Fresh replicas start
    // empty, so the launch path announces nothing.
    // (Announcements are unsolicited, so they are deliberately absent
    // from `stats.acks` — that counter reconciles against Log packets.)
    for (rank, up_to) in store.lock().watermarks() {
        let _ = reply(rank, ElReply::Ack { up_to });
    }
    let mut killed = false;
    while !killed {
        let first = match mailbox.recv() {
            Ok(p) => p,
            // A transient timeout is not a shutdown: the reliable node
            // keeps serving. Only a fail-stop kill ends the loop.
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Killed) => break,
        };
        let mut backlog = vec![first];
        loop {
            match mailbox.try_recv() {
                Ok(Some(p)) => backlog.push(p),
                Ok(None) => break,
                Err(_) => {
                    // Killed mid-drain: finish the requests already taken.
                    killed = true;
                    break;
                }
            }
        }

        // One coalesced ack per daemon per pass, in first-log order.
        let mut pending_acks: Vec<(Rank, u64)> = Vec::new();
        let mut store = store.lock();
        let mut backlog = backlog.into_iter().peekable();
        while let Some(pkt) = backlog.next() {
            stats.requests += 1;
            match pkt.req {
                ElRequest::Log(mut batch) => {
                    // Merge the contiguous run of Log requests from this
                    // daemon for this owner into one store append. The
                    // merged-away packets are accounted in `merged_logs`
                    // only — counting them in `requests` too would
                    // double-book every packet of the run.
                    while let Some(next) = backlog.peek() {
                        match &next.req {
                            ElRequest::Log(b)
                                if next.from == pkt.from && b.owner == batch.owner =>
                            {
                                let Some(ElPacket {
                                    req: ElRequest::Log(b),
                                    ..
                                }) = backlog.next()
                                else {
                                    unreachable!("peeked a Log")
                                };
                                stats.merged_logs += 1;
                                stats.coalesced_acks += 1;
                                batch.events.extend(b.events);
                            }
                            _ => break,
                        }
                    }
                    let up_to = store.log(batch);
                    match pending_acks.iter_mut().find(|(r, _)| *r == pkt.from) {
                        Some(slot) => {
                            slot.1 = slot.1.max(up_to);
                            stats.coalesced_acks += 1;
                        }
                        None => pending_acks.push((pkt.from, up_to)),
                    }
                }
                other => {
                    if let Some(r) = store.handle(other) {
                        if matches!(r, ElReply::Events(_)) {
                            stats.downloads += 1;
                        }
                        // Best effort: the peer may have died; its restart
                        // will re-download.
                        let _ = reply(pkt.from, r);
                    }
                }
            }
        }
        // Publish the unique-event count before the acks leave: once a
        // daemon has seen an ack, the covered events are visible in the
        // counter (the "acked implies counted" ordering the conservation
        // tests rely on).
        events_ever.store(store.total_logged(), Ordering::Release);
        drop(store);
        for (rank, up_to) in pending_acks {
            stats.acks += 1;
            let _ = reply(rank, ElReply::Ack { up_to });
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::{EventBatch, NodeId, ReceptionEvent};
    use mvr_net::Fabric;
    use std::sync::mpsc;
    use std::thread;

    #[test]
    fn service_logs_and_acks() {
        let fabric = Fabric::new();
        let el_node = NodeId::EventLogger(0);
        let (mb, _id) = fabric.register::<ElPacket>(el_node);
        let (tx, rx) = mpsc::channel::<(Rank, ElReply)>();
        let h = thread::spawn(move || {
            run_event_logger(mb, move |r, reply| tx.send((r, reply)).is_ok())
        });

        let batch = EventBatch {
            owner: Rank(3),
            events: vec![ReceptionEvent {
                sender: Rank(1),
                sender_clock: 1,
                receiver_clock: 5,
                probes: 0,
            }],
        };
        fabric
            .send_from_reliable(
                el_node,
                ElPacket {
                    from: Rank(3),
                    req: ElRequest::Log(batch),
                },
            )
            .unwrap();
        let (to, reply) = rx.recv().unwrap();
        assert_eq!(to, Rank(3));
        assert_eq!(reply, ElReply::Ack { up_to: 5 });

        fabric
            .send_from_reliable(
                el_node,
                ElPacket {
                    from: Rank(3),
                    req: ElRequest::Download {
                        rank: Rank(3),
                        after_clock: 0,
                    },
                },
            )
            .unwrap();
        let (_, reply) = rx.recv().unwrap();
        assert!(matches!(reply, ElReply::Events(v) if v.len() == 1));

        fabric.kill(el_node);
        let (store, stats) = h.join().unwrap();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.acks, 1);
        assert_eq!(stats.downloads, 1);
        assert_eq!(store.events_held(Rank(3)), 1);
    }

    #[test]
    fn backlog_drain_merges_logs_and_coalesces_acks() {
        let fabric = Fabric::new();
        let el_node = NodeId::EventLogger(0);
        let (mb, _id) = fabric.register::<ElPacket>(el_node);
        let (tx, rx) = mpsc::channel::<(Rank, ElReply)>();

        // Fill the mailbox BEFORE the service thread starts: the whole
        // backlog is then drained in one deterministic service pass.
        let ev = |rc: u64| ReceptionEvent {
            sender: Rank(1),
            sender_clock: rc,
            receiver_clock: rc,
            probes: 0,
        };
        for rc in 1..=3u64 {
            fabric
                .send_from_reliable(
                    el_node,
                    ElPacket {
                        from: Rank(3),
                        req: ElRequest::Log(EventBatch {
                            owner: Rank(3),
                            events: vec![ev(rc)],
                        }),
                    },
                )
                .unwrap();
        }
        let h = thread::spawn(move || {
            run_event_logger(mb, move |r, reply| tx.send((r, reply)).is_ok())
        });

        // Exactly one coalesced high-watermark ack for the three logs.
        let (to, reply) = rx.recv().unwrap();
        assert_eq!(to, Rank(3));
        assert_eq!(reply, ElReply::Ack { up_to: 3 });

        fabric.kill(el_node);
        let (store, stats) = h.join().unwrap();
        assert_eq!(stats.requests, 1, "the merged run is one request");
        assert_eq!(stats.acks, 1, "one ack per daemon per drain");
        assert_eq!(stats.merged_logs, 2, "logs 2 and 3 merged into log 1");
        assert_eq!(stats.coalesced_acks, 2);
        assert_eq!(
            stats.requests + stats.merged_logs,
            3,
            "every packet accounted exactly once"
        );
        assert_eq!(store.events_held(Rank(3)), 3);
        assert!(
            rx.try_recv().is_err(),
            "no further replies may have been produced"
        );
    }

    #[test]
    fn stats_reconcile_across_interleaved_daemons() {
        // Two daemons interleave Log packets in one backlog drain:
        //   A, A (contiguous: merged), B, A, B — the non-contiguous
        //   re-logs are separate requests whose acks coalesce into the
        //   daemon's pending high-watermark slot. The counters must
        //   reconcile packet-for-packet:
        //   requests + merged_logs == packets received,
        //   acks + coalesced_acks == Log packets received.
        let fabric = Fabric::new();
        let el_node = NodeId::EventLogger(0);
        let (mb, _id) = fabric.register::<ElPacket>(el_node);
        let (tx, rx) = mpsc::channel::<(Rank, ElReply)>();
        let log = |from: u32, rc: u64| ElPacket {
            from: Rank(from),
            req: ElRequest::Log(EventBatch {
                owner: Rank(from),
                events: vec![ReceptionEvent {
                    sender: Rank(9),
                    sender_clock: rc,
                    receiver_clock: rc,
                    probes: 0,
                }],
            }),
        };
        for pkt in [log(1, 1), log(1, 2), log(2, 1), log(1, 3), log(2, 2)] {
            fabric.send_from_reliable(el_node, pkt).unwrap();
        }
        let h = thread::spawn(move || {
            run_event_logger(mb, move |r, reply| tx.send((r, reply)).is_ok())
        });
        // One coalesced high-watermark ack per daemon.
        let mut acks = [rx.recv().unwrap(), rx.recv().unwrap()];
        acks.sort_by_key(|(r, _)| r.0);
        assert_eq!(acks[0], (Rank(1), ElReply::Ack { up_to: 3 }));
        assert_eq!(acks[1], (Rank(2), ElReply::Ack { up_to: 2 }));

        fabric.kill(el_node);
        let (store, stats) = h.join().unwrap();
        let packets = 5;
        let log_packets = 5;
        assert_eq!(stats.requests + stats.merged_logs, packets);
        assert_eq!(stats.acks + stats.coalesced_acks, log_packets);
        assert_eq!(stats.requests, 4, "A-run, B, A, B");
        assert_eq!(stats.merged_logs, 1, "only A1+A2 are contiguous");
        assert_eq!(stats.acks, 2);
        assert_eq!(stats.coalesced_acks, 3);
        assert_eq!(store.events_held(Rank(1)), 3);
        assert_eq!(store.events_held(Rank(2)), 2);
    }

    #[test]
    fn shared_store_survives_the_service_loop() {
        // The replica shape: the caller owns the ledger; killing the
        // service leaves every logged event in the shared store.
        let fabric = Fabric::new();
        let el_node = NodeId::EventLogger(7);
        let (mb, _id) = fabric.register::<ElPacket>(el_node);
        let store = Arc::new(Mutex::new(EventLogStore::new()));
        let events_ever = Arc::new(AtomicU64::new(0));
        let (st2, ev2) = (store.clone(), events_ever.clone());
        let h = thread::spawn(move || run_event_logger_on(mb, |_, _| true, ev2, st2));
        fabric
            .send_from_reliable(
                el_node,
                ElPacket {
                    from: Rank(0),
                    req: ElRequest::Log(EventBatch {
                        owner: Rank(0),
                        events: vec![ReceptionEvent {
                            sender: Rank(1),
                            sender_clock: 1,
                            receiver_clock: 1,
                            probes: 0,
                        }],
                    }),
                },
            )
            .unwrap();
        while events_ever.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
        fabric.kill(el_node);
        let stats = h.join().unwrap();
        assert_eq!(stats.acks, 1);
        assert_eq!(store.lock().total_logged(), 1, "ledger outlives the loop");
    }
}
