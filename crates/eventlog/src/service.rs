//! The event-logger service loop: wraps an [`EventLogStore`] behind a
//! fabric mailbox. The reply path is injected as a closure so this crate
//! stays independent of the runtime's daemon message enum.

use crate::store::EventLogStore;
use mvr_core::{ElReply, ElRequest, Rank};
use mvr_net::{Mailbox, RecvError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One inbound request: who asked, and what.
#[derive(Clone, Debug)]
pub struct ElPacket {
    /// The daemon (by rank) that sent the request.
    pub from: Rank,
    /// The request itself.
    pub req: ElRequest,
}

/// Statistics of one event-logger instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ElServiceStats {
    /// Requests processed.
    pub requests: u64,
    /// Acks produced.
    pub acks: u64,
    /// Downloads served.
    pub downloads: u64,
    /// `Log` requests merged into a predecessor from the same daemon for
    /// the same owner during one service pass.
    pub merged_logs: u64,
    /// Acks elided by high-watermark coalescing (each merged or coalesced
    /// `Log` would have produced its own ack under eager service).
    pub coalesced_acks: u64,
}

/// Run the event logger until its mailbox is killed (the EL is the
/// reliable component of the system — killing it in tests models the
/// "what if the reliable node dies" experiments).
///
/// Each service pass blocks for one request, then drains the whole
/// mailbox backlog. Contiguous `Log` requests from the same daemon for
/// the same owner are merged into a single store append, and every daemon
/// gets at most **one** coalesced high-watermark `Ack` per pass — the EL
/// half of the lazy-batching optimization (the daemon half batches
/// events; this half batches acks).
///
/// `reply` ships an [`ElReply`] back to the daemon of the given rank; a
/// failed reply (daemon crashed meanwhile) is ignored, matching a TCP
/// write error to a dead peer.
pub fn run_event_logger<F>(mailbox: Mailbox<ElPacket>, reply: F) -> (EventLogStore, ElServiceStats)
where
    F: FnMut(Rank, ElReply) -> bool,
{
    run_event_logger_counted(mailbox, reply, Arc::new(AtomicU64::new(0)))
}

/// As [`run_event_logger`], additionally publishing the store's
/// cumulative *unique*-event count ([`EventLogStore::total_logged`])
/// into `events_ever` after every service pass. The counter is monotone
/// across duplicates, replays and truncations, which makes it the
/// stable side of the conservation invariant the chaos tests assert:
/// the EL never double-counts a logical delivery, no matter how many
/// times crash recovery re-logs it.
pub fn run_event_logger_counted<F>(
    mailbox: Mailbox<ElPacket>,
    mut reply: F,
    events_ever: Arc<AtomicU64>,
) -> (EventLogStore, ElServiceStats)
where
    F: FnMut(Rank, ElReply) -> bool,
{
    let mut store = EventLogStore::new();
    let mut stats = ElServiceStats::default();
    let mut killed = false;
    while !killed {
        let first = match mailbox.recv() {
            Ok(p) => p,
            Err(RecvError::Killed) | Err(RecvError::Timeout) => break,
        };
        let mut backlog = vec![first];
        loop {
            match mailbox.try_recv() {
                Ok(Some(p)) => backlog.push(p),
                Ok(None) => break,
                Err(_) => {
                    // Killed mid-drain: finish the requests already taken.
                    killed = true;
                    break;
                }
            }
        }

        // One coalesced ack per daemon per pass, in first-log order.
        let mut pending_acks: Vec<(Rank, u64)> = Vec::new();
        let mut backlog = backlog.into_iter().peekable();
        while let Some(pkt) = backlog.next() {
            stats.requests += 1;
            match pkt.req {
                ElRequest::Log(mut batch) => {
                    // Merge the contiguous run of Log requests from this
                    // daemon for this owner into one store append.
                    while let Some(next) = backlog.peek() {
                        match &next.req {
                            ElRequest::Log(b)
                                if next.from == pkt.from && b.owner == batch.owner =>
                            {
                                let Some(ElPacket {
                                    req: ElRequest::Log(b),
                                    ..
                                }) = backlog.next()
                                else {
                                    unreachable!("peeked a Log")
                                };
                                stats.requests += 1;
                                stats.merged_logs += 1;
                                stats.coalesced_acks += 1;
                                batch.events.extend(b.events);
                            }
                            _ => break,
                        }
                    }
                    let up_to = store.log(batch);
                    match pending_acks.iter_mut().find(|(r, _)| *r == pkt.from) {
                        Some(slot) => {
                            slot.1 = slot.1.max(up_to);
                            stats.coalesced_acks += 1;
                        }
                        None => pending_acks.push((pkt.from, up_to)),
                    }
                }
                other => {
                    if let Some(r) = store.handle(other) {
                        if matches!(r, ElReply::Events(_)) {
                            stats.downloads += 1;
                        }
                        // Best effort: the peer may have died; its restart
                        // will re-download.
                        let _ = reply(pkt.from, r);
                    }
                }
            }
        }
        // Publish the unique-event count before the acks leave: once a
        // daemon has seen an ack, the covered events are visible in the
        // counter (the "acked implies counted" ordering the conservation
        // tests rely on).
        events_ever.store(store.total_logged(), Ordering::Release);
        for (rank, up_to) in pending_acks {
            stats.acks += 1;
            let _ = reply(rank, ElReply::Ack { up_to });
        }
    }
    (store, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::{EventBatch, NodeId, ReceptionEvent};
    use mvr_net::Fabric;
    use std::sync::mpsc;
    use std::thread;

    #[test]
    fn service_logs_and_acks() {
        let fabric = Fabric::new();
        let el_node = NodeId::EventLogger(0);
        let (mb, _id) = fabric.register::<ElPacket>(el_node);
        let (tx, rx) = mpsc::channel::<(Rank, ElReply)>();
        let h = thread::spawn(move || {
            run_event_logger(mb, move |r, reply| tx.send((r, reply)).is_ok())
        });

        let batch = EventBatch {
            owner: Rank(3),
            events: vec![ReceptionEvent {
                sender: Rank(1),
                sender_clock: 1,
                receiver_clock: 5,
                probes: 0,
            }],
        };
        fabric
            .send_from_reliable(
                el_node,
                ElPacket {
                    from: Rank(3),
                    req: ElRequest::Log(batch),
                },
            )
            .unwrap();
        let (to, reply) = rx.recv().unwrap();
        assert_eq!(to, Rank(3));
        assert_eq!(reply, ElReply::Ack { up_to: 5 });

        fabric
            .send_from_reliable(
                el_node,
                ElPacket {
                    from: Rank(3),
                    req: ElRequest::Download {
                        rank: Rank(3),
                        after_clock: 0,
                    },
                },
            )
            .unwrap();
        let (_, reply) = rx.recv().unwrap();
        assert!(matches!(reply, ElReply::Events(v) if v.len() == 1));

        fabric.kill(el_node);
        let (store, stats) = h.join().unwrap();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.acks, 1);
        assert_eq!(stats.downloads, 1);
        assert_eq!(store.events_held(Rank(3)), 1);
    }

    #[test]
    fn backlog_drain_merges_logs_and_coalesces_acks() {
        let fabric = Fabric::new();
        let el_node = NodeId::EventLogger(0);
        let (mb, _id) = fabric.register::<ElPacket>(el_node);
        let (tx, rx) = mpsc::channel::<(Rank, ElReply)>();

        // Fill the mailbox BEFORE the service thread starts: the whole
        // backlog is then drained in one deterministic service pass.
        let ev = |rc: u64| ReceptionEvent {
            sender: Rank(1),
            sender_clock: rc,
            receiver_clock: rc,
            probes: 0,
        };
        for rc in 1..=3u64 {
            fabric
                .send_from_reliable(
                    el_node,
                    ElPacket {
                        from: Rank(3),
                        req: ElRequest::Log(EventBatch {
                            owner: Rank(3),
                            events: vec![ev(rc)],
                        }),
                    },
                )
                .unwrap();
        }
        let h = thread::spawn(move || {
            run_event_logger(mb, move |r, reply| tx.send((r, reply)).is_ok())
        });

        // Exactly one coalesced high-watermark ack for the three logs.
        let (to, reply) = rx.recv().unwrap();
        assert_eq!(to, Rank(3));
        assert_eq!(reply, ElReply::Ack { up_to: 3 });

        fabric.kill(el_node);
        let (store, stats) = h.join().unwrap();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.acks, 1, "one ack per daemon per drain");
        assert_eq!(stats.merged_logs, 2, "logs 2 and 3 merged into log 1");
        assert_eq!(stats.coalesced_acks, 2);
        assert_eq!(store.events_held(Rank(3)), 3);
        assert!(
            rx.try_recv().is_err(),
            "no further replies may have been produced"
        );
    }
}
