//! The event-logger service loop: wraps an [`EventLogStore`] behind a
//! fabric mailbox. The reply path is injected as a closure so this crate
//! stays independent of the runtime's daemon message enum.

use crate::store::EventLogStore;
use mvr_core::{ElReply, ElRequest, Rank};
use mvr_net::{Mailbox, RecvError};

/// One inbound request: who asked, and what.
#[derive(Clone, Debug)]
pub struct ElPacket {
    /// The daemon (by rank) that sent the request.
    pub from: Rank,
    /// The request itself.
    pub req: ElRequest,
}

/// Statistics of one event-logger instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ElServiceStats {
    /// Requests processed.
    pub requests: u64,
    /// Acks produced.
    pub acks: u64,
    /// Downloads served.
    pub downloads: u64,
}

/// Run the event logger until its mailbox is killed (the EL is the
/// reliable component of the system — killing it in tests models the
/// "what if the reliable node dies" experiments).
///
/// `reply` ships an [`ElReply`] back to the daemon of the given rank; a
/// failed reply (daemon crashed meanwhile) is ignored, matching a TCP
/// write error to a dead peer.
pub fn run_event_logger<F>(
    mailbox: Mailbox<ElPacket>,
    mut reply: F,
) -> (EventLogStore, ElServiceStats)
where
    F: FnMut(Rank, ElReply) -> bool,
{
    let mut store = EventLogStore::new();
    let mut stats = ElServiceStats::default();
    loop {
        let pkt = match mailbox.recv() {
            Ok(p) => p,
            Err(RecvError::Killed) | Err(RecvError::Timeout) => break,
        };
        stats.requests += 1;
        if let Some(r) = store.handle(pkt.req) {
            match &r {
                ElReply::Ack { .. } => stats.acks += 1,
                ElReply::Events(_) => stats.downloads += 1,
            }
            // Best effort: the peer may have died; its restart will
            // re-download.
            let _ = reply(pkt.from, r);
        }
    }
    (store, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::{EventBatch, NodeId, ReceptionEvent};
    use mvr_net::Fabric;
    use std::sync::mpsc;
    use std::thread;

    #[test]
    fn service_logs_and_acks() {
        let fabric = Fabric::new();
        let el_node = NodeId::EventLogger(0);
        let (mb, _id) = fabric.register::<ElPacket>(el_node);
        let (tx, rx) = mpsc::channel::<(Rank, ElReply)>();
        let h = thread::spawn(move || {
            run_event_logger(mb, move |r, reply| tx.send((r, reply)).is_ok())
        });

        let batch = EventBatch {
            owner: Rank(3),
            events: vec![ReceptionEvent {
                sender: Rank(1),
                sender_clock: 1,
                receiver_clock: 5,
                probes: 0,
            }],
        };
        fabric
            .send_from_reliable(
                el_node,
                ElPacket {
                    from: Rank(3),
                    req: ElRequest::Log(batch),
                },
            )
            .unwrap();
        let (to, reply) = rx.recv().unwrap();
        assert_eq!(to, Rank(3));
        assert_eq!(reply, ElReply::Ack { up_to: 5 });

        fabric
            .send_from_reliable(
                el_node,
                ElPacket {
                    from: Rank(3),
                    req: ElRequest::Download {
                        rank: Rank(3),
                        after_clock: 0,
                    },
                },
            )
            .unwrap();
        let (_, reply) = rx.recv().unwrap();
        assert!(matches!(reply, ElReply::Events(v) if v.len() == 1));

        fabric.kill(el_node);
        let (store, stats) = h.join().unwrap();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.acks, 1);
        assert_eq!(stats.downloads, 1);
        assert_eq!(store.events_held(Rank(3)), 1);
    }
}
