//! Shard routing and replica quorum accounting for the sharded Event
//! Logger.
//!
//! The paper's constraint (§4.5) is that "every communication daemon
//! must be connected to exactly one event logger" and that "event
//! loggers do not have to communicate with each other". Sharding by
//! receiver rank preserves both: a daemon's reception events are all
//! owned by its own rank, so the consistent-hash [`ShardMap`] assigns
//! each daemon exactly one shard, and shards never exchange state.
//! Within a shard, R replicas each hold the full shard ledger; the
//! pessimism gate opens when a majority quorum of them has acked, so a
//! single replica crash neither stalls the gate nor loses any
//! quorum-acked event (write quorum ∩ read quorum is non-empty).

use mvr_core::Rank;

/// 64-bit FNV-1a with a splitmix64 finalizer, the hash behind the
/// consistent-hash ring. Chosen for determinism across runs and
/// platforms — the map must be a pure function of `(shards,)` so
/// daemons, dispatcher and recovery all agree on shard ownership
/// without coordination. Raw FNV-1a clusters badly on the u64 ring for
/// the short, mostly-zero keys used here (sequential ranks land on one
/// shard); the finalizer's avalanche spreads them uniformly.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Deterministic consistent-hash map from receiver rank to EL shard.
///
/// Each shard contributes [`ShardMap::VNODES`] points on a 64-bit ring;
/// a rank is owned by the first point at or after its own hash
/// (wrapping). With one shard the map is trivially constant, so the
/// `el_shards = 1` deployment is byte-identical to the unsharded one.
#[derive(Clone, Debug)]
pub struct ShardMap {
    shards: u32,
    /// Sorted `(point, shard)` ring.
    ring: Vec<(u64, u32)>,
}

impl ShardMap {
    /// Virtual nodes per shard — enough to keep the rank partition
    /// within a few percent of uniform at paper scale (32 nodes).
    pub const VNODES: u32 = 16;

    /// Build the ring for `shards` shards. Panics if `shards == 0`.
    pub fn new(shards: u32) -> Self {
        assert!(shards > 0, "at least one event-logger shard is required");
        let mut ring = Vec::with_capacity((shards * Self::VNODES) as usize);
        for s in 0..shards {
            for v in 0..Self::VNODES {
                let mut key = [0u8; 8];
                key[..4].copy_from_slice(&s.to_le_bytes());
                key[4..].copy_from_slice(&v.to_le_bytes());
                ring.push((ring_hash(&key), s));
            }
        }
        ring.sort_unstable();
        // Identical points (astronomically unlikely) resolve to the
        // lowest shard, deterministically.
        ring.dedup_by_key(|e| e.0);
        ShardMap { shards, ring }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `rank`'s reception events.
    pub fn shard_for(&self, rank: Rank) -> u32 {
        if self.shards == 1 {
            return 0;
        }
        let h = ring_hash(&rank.0.to_le_bytes());
        let idx = self.ring.partition_point(|&(p, _)| p < h);
        self.ring[if idx == self.ring.len() { 0 } else { idx }].1
    }
}

/// Majority quorum size for `replicas` replicas (`R/2 + 1`); one
/// replica is its own quorum.
pub fn quorum_of(replicas: u32) -> u32 {
    replicas.max(1) / 2 + 1
}

/// Per-replica ack watermarks of one shard, folded into the quorum
/// watermark the pessimism gate may trust.
///
/// Each replica's acked high watermark is monotone (the EL acks
/// coalesced high watermarks). The quorum watermark is the Q-th largest
/// of the per-replica watermarks: every receiver clock at or below it
/// has been acked by at least Q replicas, so it survives any R − Q
/// crashes.
#[derive(Clone, Debug)]
pub struct QuorumTracker {
    acked: Vec<u64>,
    quorum: u32,
}

impl QuorumTracker {
    /// Tracker for `replicas` replicas with majority quorum.
    pub fn new(replicas: u32) -> Self {
        QuorumTracker {
            acked: vec![0; replicas.max(1) as usize],
            quorum: quorum_of(replicas),
        }
    }

    /// The quorum size.
    pub fn quorum(&self) -> u32 {
        self.quorum
    }

    /// Record replica `replica` acking up to `up_to` (monotone max) and
    /// return the resulting quorum watermark.
    pub fn record(&mut self, replica: u32, up_to: u64) -> u64 {
        if let Some(slot) = self.acked.get_mut(replica as usize) {
            *slot = (*slot).max(up_to);
        }
        self.watermark()
    }

    /// The Q-th largest per-replica watermark.
    pub fn watermark(&self) -> u64 {
        let mut sorted = self.acked.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted[(self.quorum as usize - 1).min(sorted.len() - 1)]
    }

    /// Reset every replica watermark (recovery begins a fresh ledger
    /// view for the restarted incarnation).
    pub fn reset(&mut self) {
        self.acked.iter_mut().for_each(|w| *w = 0);
    }
}

/// Cluster-wide unique-event view over flat-indexed per-replica ledger
/// counts (`flat = shard * replicas + replica`): replicas of one shard
/// hold copies of the same events, so a shard's unique count is the max
/// over its replicas and the cluster total is the sum over shards. With
/// `replicas = 1` this degenerates to a plain sum.
pub fn merged_unique_events(per_replica: &[u64], replicas: usize) -> u64 {
    let r = replicas.max(1);
    per_replica
        .chunks(r)
        .map(|shard| shard.iter().copied().max().unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_is_constant() {
        let m = ShardMap::new(1);
        for r in 0..64 {
            assert_eq!(m.shard_for(Rank(r)), 0);
        }
    }

    #[test]
    fn map_is_deterministic_and_total() {
        let a = ShardMap::new(4);
        let b = ShardMap::new(4);
        for r in 0..256 {
            let s = a.shard_for(Rank(r));
            assert!(s < 4);
            assert_eq!(s, b.shard_for(Rank(r)), "pure function of (shards, rank)");
        }
    }

    #[test]
    fn map_is_roughly_balanced() {
        let m = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for r in 0..1024 {
            counts[m.shard_for(Rank(r)) as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (100..=500).contains(&c),
                "shard {s} owns {c} of 1024 ranks — ring badly skewed"
            );
        }
    }

    #[test]
    fn every_shard_owns_someone_at_paper_scale() {
        let m = ShardMap::new(4);
        let mut seen = [false; 4];
        for r in 0..32 {
            seen[m.shard_for(Rank(r)) as usize] = true;
        }
        assert_eq!(seen, [true; 4], "32 ranks must touch all 4 shards");
    }

    #[test]
    fn quorum_sizes() {
        assert_eq!(quorum_of(1), 1);
        assert_eq!(quorum_of(2), 2);
        assert_eq!(quorum_of(3), 2);
        assert_eq!(quorum_of(4), 3);
        assert_eq!(quorum_of(5), 3);
    }

    #[test]
    fn quorum_watermark_advances_on_qth_ack() {
        // R=3, Q=2: the watermark follows the second-highest replica.
        let mut t = QuorumTracker::new(3);
        assert_eq!(t.record(0, 10), 0, "one ack is not a quorum");
        assert_eq!(t.record(1, 7), 7, "two of three acked ≥ 7");
        assert_eq!(t.record(2, 12), 10);
        assert_eq!(t.record(1, 12), 12);
    }

    #[test]
    fn replica_watermarks_are_monotone() {
        let mut t = QuorumTracker::new(2);
        t.record(0, 9);
        // A stale (reordered) ack may not regress the replica watermark.
        assert_eq!(t.record(0, 4), 0);
        assert_eq!(t.record(1, 9), 9);
        t.reset();
        assert_eq!(t.watermark(), 0);
    }

    #[test]
    fn single_replica_is_its_own_quorum() {
        let mut t = QuorumTracker::new(1);
        assert_eq!(t.quorum(), 1);
        assert_eq!(t.record(0, 5), 5, "R=1 reduces to the unreplicated ack");
    }

    #[test]
    fn merged_unique_view() {
        // 2 shards × 2 replicas, flat-indexed. Replica copies dedupe by
        // max; shards sum.
        assert_eq!(merged_unique_events(&[10, 8, 4, 4], 2), 14);
        // R=1: plain sum.
        assert_eq!(merged_unique_events(&[3, 5], 1), 8);
        assert_eq!(merged_unique_events(&[], 2), 0);
    }
}
