//! # mvr-eventlog — the reliable Event Logger
//!
//! The Event Logger is *the* reliable component of an MPICH-V2 deployment
//! (§4.3: the node running the dispatcher, the checkpoint scheduler and
//! the event logger "is the single node in the system that must be
//! reliable"). It stores the 4-field reception events shipped by the
//! computing daemons, acknowledges their durability (opening the senders'
//! pessimism gates), and serves `DownloadEL` requests on restart.
//!
//! Storage is proportional to the *number* of messages, not their payload
//! size — the decisive scalability difference from MPICH-V1's Channel
//! Memories.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod router;
pub mod service;
pub mod store;

pub use router::{merged_unique_events, quorum_of, QuorumTracker, ShardMap};
pub use service::{
    run_event_logger, run_event_logger_counted, run_event_logger_on, ElPacket, ElServiceStats,
};
pub use store::{el_for_rank, EventLogStore};
