//! The event logger's storage: per-rank ordered lists of reception events.
//!
//! §4.5: "The event logger is a repository executed on a reliable component
//! of the system. It stores and delivers dependency information about
//! messages exchanged by the computing nodes. [...] The amount of
//! information stored on the Event Logger is proportional to the number of
//! transmitted messages and not proportional to the size of the payload
//! like in MPICH-V1."

use mvr_core::{ElReply, ElRequest, EventBatch, Rank, ReceptionEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Pure event-log state (no IO); the service thread wraps it.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EventLogStore {
    events: BTreeMap<Rank, Vec<ReceptionEvent>>,
    /// Cumulative events ever stored (monotonic).
    total_logged: u64,
}

impl EventLogStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a batch; idempotent for re-sent events (a receiver clock is
    /// stored at most once). Returns the ack: the highest receiver clock
    /// durably stored for the batch owner.
    pub fn log(&mut self, batch: EventBatch) -> u64 {
        debug_assert!(
            batch.is_ordered(),
            "event batch must be receiver-clock ordered"
        );
        let v = self.events.entry(batch.owner).or_default();
        for e in batch.events {
            match v.last() {
                Some(last) if last.receiver_clock >= e.receiver_clock => {
                    // Duplicate or stale re-log: already durable, skip.
                }
                _ => {
                    v.push(e);
                    self.total_logged += 1;
                }
            }
        }
        v.last().map(|e| e.receiver_clock).unwrap_or(0)
    }

    /// `DownloadEL(H_p)`: every stored event for `rank` with receiver clock
    /// strictly greater than `after_clock`, in order.
    pub fn download(&self, rank: Rank, after_clock: u64) -> Vec<ReceptionEvent> {
        self.events
            .get(&rank)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|e| e.receiver_clock > after_clock)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Drop events for `rank` at or below `up_to` (post-checkpoint
    /// storage reclamation).
    pub fn truncate(&mut self, rank: Rank, up_to: u64) -> usize {
        let Some(v) = self.events.get_mut(&rank) else {
            return 0;
        };
        let before = v.len();
        v.retain(|e| e.receiver_clock > up_to);
        before - v.len()
    }

    /// Process a request, producing an optional reply.
    pub fn handle(&mut self, req: ElRequest) -> Option<ElReply> {
        match req {
            ElRequest::Log(batch) => {
                let up_to = self.log(batch);
                Some(ElReply::Ack { up_to })
            }
            ElRequest::Download { rank, after_clock } => {
                Some(ElReply::Events(self.download(rank, after_clock)))
            }
            ElRequest::Truncate { rank, up_to } => {
                self.truncate(rank, up_to);
                None
            }
        }
    }

    /// Merge everything `other` holds that this store lacks — replica
    /// catch-up from a live peer's snapshot. Per rank the two event
    /// lists (both receiver-clock ordered) are merge-deduplicated by
    /// receiver clock, so a revived replica that absorbs any quorum
    /// member holds every quorum-acked event again. Newly absorbed
    /// events count toward [`total_logged`](Self::total_logged) exactly
    /// once; returns how many were new.
    pub fn absorb(&mut self, other: &EventLogStore) -> u64 {
        let mut added = 0u64;
        for (rank, theirs) in &other.events {
            let mine = self.events.entry(*rank).or_default();
            if mine.is_empty() {
                mine.extend(theirs.iter().copied());
                added += theirs.len() as u64;
                continue;
            }
            let mut merged = Vec::with_capacity(mine.len() + theirs.len());
            let (mut i, mut j) = (0, 0);
            while i < mine.len() && j < theirs.len() {
                let (a, b) = (mine[i], theirs[j]);
                if a.receiver_clock == b.receiver_clock {
                    merged.push(a);
                    i += 1;
                    j += 1;
                } else if a.receiver_clock < b.receiver_clock {
                    merged.push(a);
                    i += 1;
                } else {
                    merged.push(b);
                    j += 1;
                    added += 1;
                }
            }
            merged.extend_from_slice(&mine[i..]);
            for &b in &theirs[j..] {
                merged.push(b);
                added += 1;
            }
            *mine = merged;
        }
        self.total_logged += added;
        added
    }

    /// Each owner rank's durable high watermark (highest receiver clock
    /// held). Ranks whose events were all truncated away are skipped —
    /// their durability is the checkpoint's, not the log's.
    pub fn watermarks(&self) -> Vec<(Rank, u64)> {
        self.events
            .iter()
            .filter_map(|(r, v)| v.last().map(|e| (*r, e.receiver_clock)))
            .collect()
    }

    /// Events currently held for `rank`.
    pub fn events_held(&self, rank: Rank) -> usize {
        self.events.get(&rank).map(Vec::len).unwrap_or(0)
    }

    /// Total events currently held.
    pub fn total_held(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// Cumulative events ever logged.
    pub fn total_logged(&self) -> u64 {
        self.total_logged
    }
}

/// Static partition of ranks across several event loggers (§4.5: "several
/// event loggers may be used [...] every communication daemon must be
/// connected to exactly one event logger", and "event loggers do not have
/// to communicate with each other").
pub fn el_for_rank(rank: Rank, num_els: u32) -> u32 {
    assert!(num_els > 0, "at least one event logger is required");
    rank.0 % num_els
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: u32, sc: u64, rc: u64) -> ReceptionEvent {
        ReceptionEvent {
            sender: Rank(s),
            sender_clock: sc,
            receiver_clock: rc,
            probes: 0,
        }
    }

    fn batch(owner: u32, events: Vec<ReceptionEvent>) -> EventBatch {
        EventBatch {
            owner: Rank(owner),
            events,
        }
    }

    #[test]
    fn log_acks_highest_clock() {
        let mut s = EventLogStore::new();
        assert_eq!(s.log(batch(0, vec![ev(1, 1, 1), ev(2, 1, 2)])), 2);
        assert_eq!(s.log(batch(0, vec![ev(1, 2, 3)])), 3);
        assert_eq!(s.total_held(), 3);
    }

    #[test]
    fn duplicate_logs_are_idempotent() {
        let mut s = EventLogStore::new();
        s.log(batch(0, vec![ev(1, 1, 1)]));
        let ack = s.log(batch(0, vec![ev(1, 1, 1)]));
        assert_eq!(ack, 1);
        assert_eq!(s.events_held(Rank(0)), 1);
        assert_eq!(s.total_logged(), 1);
    }

    #[test]
    fn download_filters_by_clock() {
        let mut s = EventLogStore::new();
        s.log(batch(0, vec![ev(1, 1, 1), ev(1, 2, 2), ev(1, 3, 3)]));
        let d = s.download(Rank(0), 1);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].receiver_clock, 2);
        assert!(s.download(Rank(9), 0).is_empty());
    }

    #[test]
    fn truncate_reclaims() {
        let mut s = EventLogStore::new();
        s.log(batch(0, vec![ev(1, 1, 1), ev(1, 2, 2), ev(1, 3, 3)]));
        assert_eq!(s.truncate(Rank(0), 2), 2);
        assert_eq!(s.events_held(Rank(0)), 1);
        // Download after truncation still serves the tail.
        assert_eq!(s.download(Rank(0), 0).len(), 1);
    }

    #[test]
    fn handle_dispatches() {
        let mut s = EventLogStore::new();
        let r = s.handle(ElRequest::Log(batch(0, vec![ev(1, 1, 1)])));
        assert_eq!(r, Some(ElReply::Ack { up_to: 1 }));
        let r = s.handle(ElRequest::Download {
            rank: Rank(0),
            after_clock: 0,
        });
        assert!(matches!(r, Some(ElReply::Events(v)) if v.len() == 1));
        assert_eq!(
            s.handle(ElRequest::Truncate {
                rank: Rank(0),
                up_to: 1
            }),
            None
        );
        assert_eq!(s.events_held(Rank(0)), 0);
    }

    #[test]
    fn partition_is_stable_and_total() {
        for r in 0..32 {
            let el = el_for_rank(Rank(r), 4);
            assert!(el < 4);
            assert_eq!(el, el_for_rank(Rank(r), 4));
        }
        assert_eq!(el_for_rank(Rank(5), 1), 0);
    }

    #[test]
    #[should_panic]
    fn zero_els_rejected() {
        el_for_rank(Rank(0), 0);
    }

    #[test]
    fn absorb_merges_and_deduplicates() {
        // A revived replica (holding a stale prefix) absorbs a live
        // peer: the union is receiver-clock ordered, duplicates are
        // free, and total_logged counts each unique event once.
        let mut revived = EventLogStore::new();
        revived.log(batch(0, vec![ev(1, 1, 1), ev(1, 2, 2)]));
        let mut peer = EventLogStore::new();
        peer.log(batch(
            0,
            vec![ev(1, 1, 1), ev(1, 2, 2), ev(1, 3, 3), ev(1, 4, 4)],
        ));
        peer.log(batch(5, vec![ev(2, 1, 1)]));
        let added = revived.absorb(&peer);
        assert_eq!(added, 3, "clocks 3, 4 for rank 0 and clock 1 for rank 5");
        assert_eq!(revived.events_held(Rank(0)), 4);
        assert_eq!(revived.events_held(Rank(5)), 1);
        assert_eq!(revived.total_logged(), 5);
        let d = revived.download(Rank(0), 0);
        let clocks: Vec<u64> = d.iter().map(|e| e.receiver_clock).collect();
        assert_eq!(clocks, vec![1, 2, 3, 4], "merge keeps clock order");
        // Absorbing again is idempotent.
        assert_eq!(revived.absorb(&peer), 0);
        assert_eq!(revived.total_logged(), 5);
    }

    #[test]
    fn absorb_interleaved_gaps() {
        // The peer holds events on both sides of the survivor's range.
        let mut a = EventLogStore::new();
        a.log(batch(0, vec![ev(1, 2, 2), ev(1, 3, 3)]));
        let mut b = EventLogStore::new();
        b.log(batch(0, vec![ev(1, 1, 1), ev(1, 4, 4)]));
        assert_eq!(a.absorb(&b), 2);
        let clocks: Vec<u64> = a
            .download(Rank(0), 0)
            .iter()
            .map(|e| e.receiver_clock)
            .collect();
        assert_eq!(clocks, vec![1, 2, 3, 4]);
    }

    #[test]
    fn per_rank_isolation() {
        let mut s = EventLogStore::new();
        s.log(batch(0, vec![ev(1, 1, 1)]));
        s.log(batch(1, vec![ev(0, 1, 1)]));
        assert_eq!(s.events_held(Rank(0)), 1);
        assert_eq!(s.events_held(Rank(1)), 1);
        s.truncate(Rank(0), 10);
        assert_eq!(s.events_held(Rank(1)), 1);
    }
}
