//! Trace models of the NAS Parallel Benchmarks 2.3 (the paper's §5.2
//! evaluation set): CG, MG, FT, LU, BT, SP for classes S/W/A/B.
//!
//! These are *communication-structure models*, not numerics: each
//! generator lowers one benchmark's per-iteration message pattern
//! (counts, sizes, partners, blocking vs nonblocking) and compute volume
//! into per-rank [`Op`] traces for the simulator. Problem sizes and
//! iteration counts follow the NPB 2.3 definitions; total operation
//! counts are the published approximate figures (they set the absolute
//! time scale; the figures' *shapes* come from the communication
//! structure). Where the real benchmark's pattern is richer than the
//! model, the simplification is noted on the generator.

use mvr_simnet::{Op, TraceBuilder};
use serde::{Deserialize, Serialize};

/// The benchmarks of the paper's Fig. 7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NasBenchmark {
    /// Conjugate gradient: irregular communication, many small reductions
    /// — latency-bound (the paper's worst case for V2).
    CG,
    /// Multigrid: ghost exchanges across levels, tiny messages at coarse
    /// levels — latency-sensitive.
    MG,
    /// 3-D FFT: all-to-all transposes of the whole dataset — bandwidth
    /// bound (V2 ≈ P4); class B exceeds the paper's log capacity.
    FT,
    /// SSOR wavefronts: very many small blocking messages — message-rate
    /// bound (the event logger hurts).
    LU,
    /// Block-tridiagonal ADI: few large nonblocking exchanges — V2's
    /// full-duplex daemon wins (the paper's best case).
    BT,
    /// Scalar-pentadiagonal ADI: like BT with more, smaller messages.
    SP,
}

impl NasBenchmark {
    /// All six, in the paper's order.
    pub fn all() -> [NasBenchmark; 6] {
        [
            NasBenchmark::CG,
            NasBenchmark::MG,
            NasBenchmark::FT,
            NasBenchmark::LU,
            NasBenchmark::BT,
            NasBenchmark::SP,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            NasBenchmark::CG => "CG",
            NasBenchmark::MG => "MG",
            NasBenchmark::FT => "FT",
            NasBenchmark::LU => "LU",
            NasBenchmark::BT => "BT",
            NasBenchmark::SP => "SP",
        }
    }

    /// BT and SP require a square number of processes (paper: "maximum:
    /// 25 in these cases"); the others powers of two.
    pub fn valid_procs(&self, p: usize) -> bool {
        match self {
            NasBenchmark::BT | NasBenchmark::SP => {
                let q = (p as f64).sqrt().round() as usize;
                q * q == p
            }
            _ => p.is_power_of_two(),
        }
    }
}

/// NPB problem classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Class {
    /// Sample (tiny) size.
    S,
    /// Workstation size.
    W,
    /// Class A.
    A,
    /// Class B.
    B,
}

impl Class {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Class::S => "S",
            Class::W => "W",
            Class::A => "A",
            Class::B => "B",
        }
    }
}

/// Per-(benchmark, class) parameters.
#[derive(Clone, Copy, Debug)]
pub struct NasParams {
    /// Characteristic problem dimension (n for CG; grid edge otherwise).
    pub dim: u64,
    /// Third dimension where it differs (FT's nz).
    pub dim_z: u64,
    /// Outer iterations.
    pub niter: u64,
    /// Total floating-point operations of the whole benchmark
    /// (approximate published values; sets the absolute time scale only).
    pub total_flops: f64,
}

/// The NPB 2.3 size table (dims and iterations per the specification;
/// flop totals approximate).
pub fn params(bench: NasBenchmark, class: Class) -> NasParams {
    use Class::*;
    use NasBenchmark::*;
    let (dim, dim_z, niter, gflops) = match (bench, class) {
        (CG, S) => (1400, 0, 15, 0.066),
        (CG, W) => (7000, 0, 15, 0.6),
        (CG, A) => (14000, 0, 15, 1.5),
        (CG, B) => (75000, 0, 75, 54.9),
        (MG, S) => (32, 32, 4, 0.01),
        (MG, W) => (128, 128, 4, 0.6),
        (MG, A) => (256, 256, 4, 3.6),
        (MG, B) => (256, 256, 20, 18.1),
        (FT, S) => (64, 64, 6, 0.2),
        (FT, W) => (128, 32, 6, 0.6),
        (FT, A) => (256, 128, 6, 7.1),
        (FT, B) => (512, 256, 20, 92.8),
        (LU, S) => (12, 12, 50, 0.1),
        (LU, W) => (33, 33, 300, 6.1),
        (LU, A) => (64, 64, 250, 64.6),
        (LU, B) => (102, 102, 250, 319.6),
        (BT, S) => (12, 12, 60, 0.3),
        (BT, W) => (24, 24, 200, 7.8),
        (BT, A) => (64, 64, 200, 168.3),
        (BT, B) => (102, 102, 200, 721.5),
        (SP, S) => (12, 12, 100, 0.3),
        (SP, W) => (36, 36, 400, 26.0),
        (SP, A) => (64, 64, 400, 102.0),
        (SP, B) => (102, 102, 400, 447.1),
    };
    NasParams {
        dim,
        dim_z,
        niter,
        total_flops: gflops * 1e9,
    }
}

/// Sustained per-node floating-point rate used to convert flops into
/// compute time: an Athlon XP 1800+ on NAS-type codes (calibration
/// constant; absolute scale only).
pub const FLOP_RATE: f64 = 250e6;

fn compute_ns(flops: f64) -> u64 {
    (flops / FLOP_RATE * 1e9) as u64
}

/// Build the per-rank traces of one benchmark instance.
///
/// Panics if `p` is invalid for the benchmark (see
/// [`NasBenchmark::valid_procs`]).
pub fn traces(bench: NasBenchmark, class: Class, p: usize) -> Vec<Vec<Op>> {
    assert!(
        bench.valid_procs(p),
        "{} cannot run on {p} processes",
        bench.name()
    );
    let prm = params(bench, class);
    match bench {
        NasBenchmark::CG => cg_traces(&prm, p),
        NasBenchmark::MG => mg_traces(&prm, p),
        NasBenchmark::FT => ft_traces(&prm, p),
        NasBenchmark::LU => lu_traces(&prm, p),
        // Doubles shipped per face point: BT sends the 5-component
        // solution plus 5×5 block-Jacobian boundary data (~30 doubles);
        // SP's scalar pentadiagonal factors need far less (~12).
        NasBenchmark::BT => bt_sp_traces(&prm, p, 30),
        NasBenchmark::SP => bt_sp_traces(&prm, p, 12),
    }
}

// ---------------------------------------------------------------------
// CG — 2D processor grid; row exchanges + column dot-product reductions
// ---------------------------------------------------------------------

/// NPB CG: `num_proc_cols = 2^ceil(log2(p)/2)`, rows the rest.
fn cg_grid(p: usize) -> (usize, usize) {
    let lg = p.trailing_zeros() as usize;
    let cols = 1usize << lg.div_ceil(2);
    (p / cols, cols)
}

/// Model: each outer iteration runs 25 inner CG steps (the NPB
/// `cgitmax`). Per inner step each rank does a recursive-halving exchange
/// of its vector chunk along its processor row (log₂ cols exchanges of
/// n/cols doubles) and two 8-byte dot-product reductions along its column
/// (log₂ rows exchange rounds each). Simplification: the NPB's transposed
/// sub-vector exchange is modeled as same-size pairwise exchanges.
fn cg_traces(prm: &NasParams, p: usize) -> Vec<Vec<Op>> {
    let (rows, cols) = cg_grid(p);
    let inner = 25u64;
    let steps = prm.niter * inner;
    let flops_per_step = prm.total_flops / (steps as f64) / p as f64;
    let row_msg = 8 * prm.dim / cols as u64; // doubles in the row exchange
    (0..p)
        .map(|r| {
            let my_row = r / cols;
            let my_col = r % cols;
            let mut t = TraceBuilder::new();
            for _ in 0..steps {
                t.compute(compute_ns(flops_per_step));
                // Row exchanges (recursive halving).
                let mut d = 1;
                while d < cols {
                    let partner = my_row * cols + (my_col ^ d);
                    t.sendrecv(partner, row_msg, partner);
                    d <<= 1;
                }
                // Two dot-product reductions along the column.
                for _ in 0..2 {
                    let mut d = 1;
                    while d < rows {
                        let partner = ((my_row ^ d) * cols) + my_col;
                        t.sendrecv(partner, 8, partner);
                        d <<= 1;
                    }
                }
                t.checkpoint_site();
            }
            t.build()
        })
        .collect()
}

// ---------------------------------------------------------------------
// MG — V-cycles over grid levels; ghost-face exchanges shrink 4x/level
// ---------------------------------------------------------------------

/// Model: per iteration one V-cycle touching every level from the finest
/// (dim³) down to 4³ and back; at each level every rank exchanges ghost
/// faces with 3 neighbours (one per dimension, paired exchanges). Face
/// bytes scale with (level edge)² / p^(2/3). Coarse levels produce tiny
/// messages — the latency sensitivity the paper observes.
fn mg_traces(prm: &NasParams, p: usize) -> Vec<Vec<Op>> {
    let mut levels = Vec::new();
    let mut edge = prm.dim;
    while edge >= 4 {
        levels.push(edge);
        edge /= 2;
    }
    // Down and up the V-cycle: visit each level twice (except coarsest).
    let mut visit: Vec<u64> = levels.clone();
    visit.extend(levels.iter().rev().skip(1));
    let work_units: f64 = visit.iter().map(|e| (*e as f64).powi(3)).sum();
    let p_surf = (p as f64).powf(2.0 / 3.0);
    (0..p)
        .map(|r| {
            let mut t = TraceBuilder::new();
            let neigh = mg_neighbors(r, p);
            for _ in 0..prm.niter {
                for &e in &visit {
                    let flops = prm.total_flops * (e as f64).powi(3)
                        / work_units
                        / prm.niter as f64
                        / p as f64;
                    t.compute(compute_ns(flops));
                    let face = ((e * e) as f64 * 8.0 / p_surf).max(8.0) as u64;
                    // Smoother, residual and transfer each exchange ghosts.
                    for _pass in 0..3 {
                        for &(to, from) in &neigh {
                            t.sendrecv(to, face, from);
                        }
                    }
                }
                t.checkpoint_site();
            }
            t.build()
        })
        .collect()
}

/// Three paired neighbours approximating a 3-D decomposition.
fn mg_neighbors(r: usize, p: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let strides = [1usize, 2, 4];
    for s in strides {
        if s < p {
            let to = (r + s) % p;
            let from = (r + p - s) % p;
            if to != r {
                out.push((to, from));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// FT — all-to-all transpose of the full dataset each iteration
// ---------------------------------------------------------------------

/// Model: per iteration one global transpose: a pairwise-shift all-to-all
/// where every rank sends `total/p²` bytes to every other rank (complex
/// doubles = 16 B/point), plus a tiny checksum reduction. This is the
/// paper's bandwidth-bound case, and the log-volume driver that makes
/// class B infeasible on the paper's cluster.
fn ft_traces(prm: &NasParams, p: usize) -> Vec<Vec<Op>> {
    let total_bytes = prm.dim * prm.dim * prm.dim_z * 16;
    let per_pair = (total_bytes / (p * p) as u64).max(1);
    let flops_per_iter = prm.total_flops / prm.niter as f64 / p as f64;
    (0..p)
        .map(|r| {
            let mut t = TraceBuilder::new();
            for _ in 0..prm.niter {
                t.compute(compute_ns(flops_per_iter));
                // MPICH-style all-to-all: post everything nonblocking,
                // then wait (no per-shift synchronization).
                for shift in 1..p {
                    let dst = (r + shift) % p;
                    t.isend(dst, per_pair);
                }
                for shift in 1..p {
                    let src = (r + p - shift) % p;
                    t.irecv(src);
                }
                t.waitall();
                // Checksum reduction (binomial to rank 0, 16 B).
                reduce_to_zero(&mut t, r, p, 16);
                t.checkpoint_site();
            }
            t.build()
        })
        .collect()
}

/// Binomial-tree reduction to rank 0 (each non-root sends once to its
/// parent; internal nodes receive from children first).
fn reduce_to_zero(t: &mut TraceBuilder, r: usize, p: usize, bytes: u64) {
    let mut mask = 1usize;
    while mask < p {
        if r & mask != 0 {
            t.send(r - mask, bytes);
            return;
        }
        if r + mask < p {
            t.recv(r + mask);
        }
        mask <<= 1;
    }
}

// ---------------------------------------------------------------------
// LU — SSOR wavefronts: very many small blocking messages
// ---------------------------------------------------------------------

/// Model: 2-D pencil decomposition (px × py). Per iteration, two
/// triangular sweeps; each sweep walks `dim` k-planes, and per plane a
/// rank receives its wavefront dependencies from up to two upstream
/// neighbours and sends to two downstream ones — 5 doubles per boundary
/// cell (≈ `5·8·dim/px` bytes). The blocking, fine-grained pattern is
/// what makes V2's per-reception event logging so costly here.
fn lu_traces(prm: &NasParams, p: usize) -> Vec<Vec<Op>> {
    let px = 1usize << (p.trailing_zeros() as usize).div_ceil(2);
    let py = p / px;
    let msg = 5 * 8 * (prm.dim as usize / px).max(1) as u64;
    let planes = prm.dim_z;
    let flops_per_plane = prm.total_flops / (prm.niter as f64) / (2.0 * planes as f64) / p as f64;
    (0..p)
        .map(|r| {
            let (x, y) = (r % px, r / px);
            let mut t = TraceBuilder::new();
            for _ in 0..prm.niter {
                for sweep in 0..2 {
                    // Lower sweep flows +x,+y (receive from -x/-y, send to
                    // +x/+y); the upper sweep flows the other way.
                    let (dn_x, dn_y, up_x, up_y) = if sweep == 0 {
                        (
                            (x + 1 < px).then(|| r + 1),
                            (y + 1 < py).then(|| r + px),
                            (x > 0).then(|| r - 1),
                            (y > 0).then(|| r - px),
                        )
                    } else {
                        (
                            (x > 0).then(|| r - 1),
                            (y > 0).then(|| r - px),
                            (x + 1 < px).then(|| r + 1),
                            (y + 1 < py).then(|| r + px),
                        )
                    };
                    for _plane in 0..planes {
                        if let Some(u) = up_x {
                            t.recv(u);
                        }
                        if let Some(u) = up_y {
                            t.recv(u);
                        }
                        t.compute(compute_ns(flops_per_plane));
                        if let Some(d) = dn_x {
                            t.send(d, msg);
                        }
                        if let Some(d) = dn_y {
                            t.send(d, msg);
                        }
                    }
                }
                t.checkpoint_site();
            }
            t.build()
        })
        .collect()
}

// ---------------------------------------------------------------------
// BT / SP — ADI face exchanges on a square grid, nonblocking
// ---------------------------------------------------------------------

/// Model (multi-partition scheme): per iteration, for each of the three
/// ADI sweep directions, every rank runs `q` pipeline stages; each stage
/// exchanges one cell face (both ways, nonblocking) with its ±1
/// neighbours in that direction on the q×q grid. Face bytes =
/// `doubles_per_point · 8 · (dim/q)²`. The nonblocking bidirectional
/// pattern is where V2's full-duplex daemon shines (Fig. 9 / Table 1).
fn bt_sp_traces(prm: &NasParams, p: usize, doubles_per_point: u64) -> Vec<Vec<Op>> {
    let q = (p as f64).sqrt().round() as usize;
    let cell_edge = (prm.dim / q as u64).max(1);
    let face = (doubles_per_point * 8 * cell_edge * cell_edge).max(8);
    let flops_per_iter = prm.total_flops / prm.niter as f64 / p as f64;
    (0..p)
        .map(|r| {
            let (x, y) = (r % q, r / q);
            let mut t = TraceBuilder::new();
            for _ in 0..prm.niter {
                t.compute(compute_ns(flops_per_iter));
                for dir in 0..3 {
                    // x-sweep exchanges with ±1 in x; y-sweep in y;
                    // z-sweep reuses x (multi-partition cycles cells).
                    let (plus, minus) = if dir == 1 {
                        (y * q + (x + 1) % q, y * q + (x + q - 1) % q)
                    } else {
                        (((y + 1) % q) * q + x, ((y + q - 1) % q) * q + x)
                    };
                    if plus == r || minus == r {
                        continue; // q == 1
                    }
                    let mut _reqs = 0;
                    for _ in 0..q {
                        t.isend(plus, face);
                        t.isend(minus, face);
                        _reqs += 2;
                    }
                    for _ in 0..q {
                        t.irecv(minus);
                        t.irecv(plus);
                    }
                    t.waitall();
                }
                t.checkpoint_site();
            }
            t.build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_simnet::{traffic_summary, validate_matching};

    #[test]
    fn all_models_produce_matched_traces() {
        for bench in NasBenchmark::all() {
            for &p in &[4usize, 9, 16] {
                if !bench.valid_procs(p) {
                    continue;
                }
                let t = traces(bench, Class::S, p);
                assert_eq!(t.len(), p);
                validate_matching(&t).unwrap_or_else(|e| panic!("{} S {p}: {e}", bench.name()));
            }
        }
    }

    #[test]
    fn class_a_models_validate_at_paper_scales() {
        for bench in NasBenchmark::all() {
            let ps: &[usize] = match bench {
                NasBenchmark::BT | NasBenchmark::SP => &[4, 9, 16, 25],
                _ => &[4, 8, 16, 32],
            };
            for &p in ps {
                let t = traces(bench, Class::A, p);
                validate_matching(&t).unwrap_or_else(|e| panic!("{} A {p}: {e}", bench.name()));
            }
        }
    }

    #[test]
    fn ft_moves_the_whole_dataset_per_iteration() {
        let p = 8;
        let prm = params(NasBenchmark::FT, Class::A);
        let t = traces(NasBenchmark::FT, Class::A, p);
        let (_, bytes) = traffic_summary(&t);
        let dataset = prm.dim * prm.dim * prm.dim_z * 16;
        // Each iteration transposes ~the whole dataset (minus the
        // diagonal blocks that stay local) plus checksum noise.
        let expect = dataset * prm.niter * (p as u64 - 1) / p as u64;
        let ratio = bytes as f64 / expect as f64;
        assert!(
            (0.9..1.2).contains(&ratio),
            "FT volume off: {bytes} vs {expect}"
        );
    }

    #[test]
    fn lu_has_many_small_messages() {
        let t = traces(NasBenchmark::LU, Class::A, 8);
        let (msgs, bytes) = traffic_summary(&t);
        let avg = bytes / msgs;
        assert!(
            msgs > 100_000,
            "LU should be message-rate bound, got {msgs}"
        );
        assert!(avg < 4096, "LU messages should be small, got {avg} B");
    }

    #[test]
    fn bt_messages_are_large_and_nonblocking() {
        let t = traces(NasBenchmark::BT, Class::A, 9);
        let (msgs, bytes) = traffic_summary(&t);
        let avg = bytes / msgs;
        assert!(avg > 10_000, "BT messages should be large, got {avg} B");
        // All sends are nonblocking.
        assert!(t[0].iter().any(|o| matches!(o, Op::Isend { .. })));
        assert!(!t[0].iter().any(|o| matches!(o, Op::Send { .. })));
    }

    #[test]
    fn cg_grid_matches_npb_rule() {
        assert_eq!(cg_grid(4), (2, 2));
        assert_eq!(cg_grid(8), (2, 4));
        assert_eq!(cg_grid(16), (4, 4));
        assert_eq!(cg_grid(32), (4, 8));
    }

    #[test]
    fn param_table_is_consistent() {
        for bench in NasBenchmark::all() {
            for class in [Class::S, Class::W, Class::A, Class::B] {
                let p = params(bench, class);
                assert!(p.dim > 0 && p.niter > 0 && p.total_flops > 0.0);
            }
        }
        // Class ordering: A <= B in work.
        for bench in NasBenchmark::all() {
            assert!(
                params(bench, Class::A).total_flops < params(bench, Class::B).total_flops,
                "{}",
                bench.name()
            );
        }
    }

    #[test]
    fn invalid_proc_counts_rejected() {
        assert!(!NasBenchmark::BT.valid_procs(8));
        assert!(NasBenchmark::BT.valid_procs(9));
        assert!(NasBenchmark::CG.valid_procs(8));
        assert!(!NasBenchmark::CG.valid_procs(12));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use mvr_simnet::validate_matching;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Every generated trace set is well-formed (matched sends and
        /// receives per ordered pair) across the whole parameter space.
        #[test]
        fn all_generated_traces_are_matched(
            bench_idx in 0usize..6,
            class_idx in 0usize..2, // S and W keep the proptest fast
            procs_idx in 0usize..5,
        ) {
            let bench = NasBenchmark::all()[bench_idx];
            let class = [Class::S, Class::W][class_idx];
            let p = match bench {
                NasBenchmark::BT | NasBenchmark::SP => [1usize, 4, 9, 16, 25][procs_idx],
                _ => [1usize, 2, 4, 8, 16][procs_idx],
            };
            if p == 1 {
                // Single-rank traces have no communication to validate.
                let t = traces(bench, class, 1);
                prop_assert_eq!(t.len(), 1);
            } else {
                let t = traces(bench, class, p);
                prop_assert!(
                    validate_matching(&t).is_ok(),
                    "{} {} {}", bench.name(), class.name(), p
                );
            }
        }
    }
}
