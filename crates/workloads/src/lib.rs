//! # mvr-workloads — benchmarks and applications
//!
//! The workloads of the paper's evaluation, in two forms:
//!
//! * **Simulator traces** ([`patterns`], [`nas`]): the ping-pong,
//!   synthetic-duplex and token-ring microbenchmarks, and communication-
//!   structure models of the six NAS Parallel Benchmarks 2.3 kernels for
//!   classes S/W/A/B — the inputs to every figure-regenerating harness.
//! * **Real kernels** ([`kernels`]): a distributed conjugate-gradient
//!   solver and a heat stencil with actual numerics, generic over the
//!   channel so the same code runs on the in-process test cluster and on
//!   the fault-tolerant runtime (with checkpoint sites throughout).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kernels;
pub mod nas;
pub mod patterns;

pub use kernels::{
    cannon, cannon_reference_checksum, cg, stencil, CannonConfig, CannonState, CgConfig, CgResult,
    CgState, StencilConfig, StencilState,
};
pub use nas::{params, traces, Class, NasBenchmark, NasParams};
pub use patterns::{pattern9, pingpong, token_ring};
