//! Microbenchmark trace generators: the ping-pong of Figs. 5/6, the
//! synthetic bidirectional pattern of Fig. 9, and the token ring of
//! Fig. 10.

use mvr_simnet::{Op, TraceBuilder};

/// Synchronous ping-pong between ranks 0 and 1 (Figs. 5 and 6).
pub fn pingpong(rounds: usize, bytes: u64) -> Vec<Vec<Op>> {
    let mut a = TraceBuilder::new();
    let mut b = TraceBuilder::new();
    for _ in 0..rounds {
        a.send(1, bytes);
        a.recv(1);
        b.recv(0);
        b.send(0, bytes);
    }
    vec![a.build(), b.build()]
}

/// The Fig. 9 synthetic benchmark: "a ping-pong of 10 non-blocking sends
/// (MPI_ISend), 10 non blocking receives (MPI_IRecv) and then waits for
/// all these communications to finish (MPI_Waitall)".
pub fn pattern9(rounds: usize, bytes: u64) -> Vec<Vec<Op>> {
    (0..2usize)
        .map(|me| {
            let peer = 1 - me;
            let mut t = TraceBuilder::new();
            for _ in 0..rounds {
                for _ in 0..10 {
                    t.isend(peer, bytes);
                }
                for _ in 0..10 {
                    t.irecv(peer);
                }
                t.waitall();
            }
            t.build()
        })
        .collect()
}

/// The Fig. 10 benchmark: "an asynchronous MPI token ring ran by 8
/// computing nodes" — every node injects a token and forwards its
/// neighbour's, with nonblocking sends.
pub fn token_ring(n: usize, laps: usize, bytes: u64) -> Vec<Vec<Op>> {
    (0..n)
        .map(|r| {
            let mut t = TraceBuilder::new();
            let next = (r + 1) % n;
            let prev = (r + n - 1) % n;
            for _ in 0..laps {
                let s = t.isend(next, bytes);
                t.recv(prev);
                t.wait(s);
            }
            t.build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_simnet::{traffic_summary, validate_matching};

    #[test]
    fn pingpong_matches() {
        let t = pingpong(10, 4096);
        validate_matching(&t).unwrap();
        let (msgs, bytes) = traffic_summary(&t);
        assert_eq!(msgs, 20);
        assert_eq!(bytes, 20 * 4096);
    }

    #[test]
    fn pattern9_matches() {
        let t = pattern9(3, 64 * 1024);
        validate_matching(&t).unwrap();
        let (msgs, _) = traffic_summary(&t);
        assert_eq!(msgs, 2 * 3 * 10);
    }

    #[test]
    fn token_ring_matches() {
        for n in [2usize, 5, 8] {
            let t = token_ring(n, 7, 1024);
            validate_matching(&t).unwrap();
            let (msgs, _) = traffic_summary(&t);
            assert_eq!(msgs, (n * 7) as u64);
        }
    }
}
