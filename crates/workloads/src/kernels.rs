//! Real (numeric) mini-kernels, generic over the channel so they run both
//! on the in-process test cluster and on the fault-tolerant runtime:
//!
//! * [`cg`] — a distributed conjugate-gradient solver on a 1-D Laplacian
//!   (row-block partition, halo exchanges + dot-product allreduces): the
//!   communication skeleton of NPB CG, with real numerics.
//! * [`stencil`] — an explicit 1-D heat-equation stepper (halo exchange
//!   per step): the paper's "long-running computation" archetype.
//!
//! Both are resumable: their whole state is `serde`-serializable and they
//! call `checkpoint_site` each iteration, so daemon-ordered checkpoints
//! and replay work transparently.

use mvr_core::Rank;
use mvr_mpi::{Channel, Mpi, MpiResult, ReduceOp, Source, Tag};
use serde::{Deserialize, Serialize};

/// Halo tag used by the kernels.
const HALO: i32 = 101;

// ---------------------------------------------------------------------
// Conjugate gradient
// ---------------------------------------------------------------------

/// CG configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CgConfig {
    /// Global unknowns (split into row blocks).
    pub n: usize,
    /// Maximum iterations.
    pub max_iter: u32,
    /// Convergence threshold on ‖r‖².
    pub tol: f64,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            n: 4096,
            max_iter: 200,
            tol: 1e-12,
        }
    }
}

/// The (checkpointable) CG solver state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CgState {
    /// Iteration counter.
    pub iter: u32,
    /// Local solution block.
    pub x: Vec<f64>,
    /// Local residual block.
    pub r: Vec<f64>,
    /// Local search-direction block.
    pub p: Vec<f64>,
    /// Current ‖r‖².
    pub rr: f64,
}

/// CG outcome.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CgResult {
    /// Iterations executed.
    pub iterations: u32,
    /// Final ‖r‖².
    pub residual: f64,
    /// Sum of all solution entries (a global checksum).
    pub checksum: f64,
}

fn block_range(n: usize, p: u32, r: u32) -> (usize, usize) {
    let base = n / p as usize;
    let extra = n % p as usize;
    let lo = r as usize * base + (r as usize).min(extra);
    let len = base + usize::from((r as usize) < extra);
    (lo, len)
}

/// Exchange halo values with block neighbours and apply the 1-D
/// Laplacian `A = tridiag(-1, 2, -1)` to `v`.
fn laplacian_matvec<C: Channel>(mpi: &mut Mpi<C>, v: &[f64], out: &mut Vec<f64>) -> MpiResult<()> {
    let me = mpi.rank().0;
    let p = mpi.size();
    let left = (me > 0).then(|| Rank(me - 1));
    let right = (me + 1 < p).then(|| Rank(me + 1));
    let first = *v.first().unwrap_or(&0.0);
    let last = *v.last().unwrap_or(&0.0);

    // Paired halo exchange (nonblocking sends; no deadlock).
    let mut reqs = Vec::new();
    if let Some(l) = left {
        reqs.push(mpi.isend(l, HALO, &first.to_le_bytes())?);
    }
    if let Some(rk) = right {
        reqs.push(mpi.isend(rk, HALO, &last.to_le_bytes())?);
    }
    let halo_left = match left {
        Some(l) => {
            let (_, _, b) = mpi.recv(Source::Rank(l), Tag::Value(HALO))?;
            f64::from_le_bytes(b.as_slice().try_into().expect("8 bytes"))
        }
        None => 0.0,
    };
    let halo_right = match right {
        Some(rk) => {
            let (_, _, b) = mpi.recv(Source::Rank(rk), Tag::Value(HALO))?;
            f64::from_le_bytes(b.as_slice().try_into().expect("8 bytes"))
        }
        None => 0.0,
    };
    for rq in reqs {
        mpi.wait(rq)?;
    }

    out.clear();
    out.reserve(v.len());
    for i in 0..v.len() {
        let lo = if i == 0 { halo_left } else { v[i - 1] };
        let hi = if i + 1 == v.len() {
            halo_right
        } else {
            v[i + 1]
        };
        out.push(2.0 * v[i] - lo - hi);
    }
    Ok(())
}

fn dot<C: Channel>(mpi: &mut Mpi<C>, a: &[f64], b: &[f64]) -> MpiResult<f64> {
    let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    Ok(mpi.allreduce(ReduceOp::Sum, &[local])?[0])
}

/// Run (or resume) CG for `Ax = b` with `b = 1`. Checkpoint sites sit at
/// iteration boundaries.
pub fn cg<C: Channel>(
    mpi: &mut Mpi<C>,
    cfg: &CgConfig,
    restored: Option<CgState>,
) -> MpiResult<CgResult> {
    let (_, len) = block_range(cfg.n, mpi.size(), mpi.rank().0);
    let mut st = restored.unwrap_or_else(|| {
        // x = 0, r = p = b = 1.
        let b = vec![1.0; len];
        let rr = (cfg.n) as f64; // sum of 1²
        CgState {
            iter: 0,
            x: vec![0.0; len],
            r: b.clone(),
            p: b,
            rr,
        }
    });

    let mut ap = Vec::new();
    while st.iter < cfg.max_iter && st.rr > cfg.tol {
        laplacian_matvec(mpi, &st.p, &mut ap)?;
        let p_ap = dot(mpi, &st.p, &ap)?;
        let alpha = st.rr / p_ap;
        for (i, &api) in ap.iter().enumerate().take(len) {
            st.x[i] += alpha * st.p[i];
            st.r[i] -= alpha * api;
        }
        let rr_new = dot(mpi, &st.r, &st.r)?;
        let beta = rr_new / st.rr;
        for i in 0..len {
            st.p[i] = st.r[i] + beta * st.p[i];
        }
        st.rr = rr_new;
        st.iter += 1;
        mpi.checkpoint_site(&bincode::serialize(&st).expect("serializable"))?;
    }

    let local_sum: f64 = st.x.iter().sum();
    let checksum = mpi.allreduce(ReduceOp::Sum, &[local_sum])?[0];
    Ok(CgResult {
        iterations: st.iter,
        residual: st.rr,
        checksum,
    })
}

// ---------------------------------------------------------------------
// 1-D heat stencil
// ---------------------------------------------------------------------

/// Stencil configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StencilConfig {
    /// Global cells.
    pub n: usize,
    /// Time steps.
    pub steps: u32,
}

/// The (checkpointable) stencil state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StencilState {
    /// Step counter.
    pub step: u32,
    /// Local cells.
    pub u: Vec<f64>,
}

/// Run (or resume) the explicit heat stepper; returns the global sum
/// (conserved up to boundary loss — a strong cross-run invariant).
pub fn stencil<C: Channel>(
    mpi: &mut Mpi<C>,
    cfg: &StencilConfig,
    restored: Option<StencilState>,
) -> MpiResult<f64> {
    let me = mpi.rank().0;
    let p = mpi.size();
    let (lo, len) = block_range(cfg.n, p, me);
    let mut st = restored.unwrap_or_else(|| StencilState {
        step: 0,
        // Deterministic bumpy initial condition.
        u: (0..len)
            .map(|i| (((lo + i) % 17) as f64) / 17.0 + 1.0)
            .collect(),
    });
    let left = (me > 0).then(|| Rank(me - 1));
    let right = (me + 1 < p).then(|| Rank(me + 1));

    while st.step < cfg.steps {
        let first = *st.u.first().expect("nonempty block");
        let last = *st.u.last().expect("nonempty block");
        let mut reqs = Vec::new();
        if let Some(l) = left {
            reqs.push(mpi.isend(l, HALO, &first.to_le_bytes())?);
        }
        if let Some(rk) = right {
            reqs.push(mpi.isend(rk, HALO, &last.to_le_bytes())?);
        }
        let hl = match left {
            Some(l) => {
                let (_, _, b) = mpi.recv(Source::Rank(l), Tag::Value(HALO))?;
                f64::from_le_bytes(b.as_slice().try_into().expect("8 bytes"))
            }
            None => first, // reflecting boundary
        };
        let hr = match right {
            Some(rk) => {
                let (_, _, b) = mpi.recv(Source::Rank(rk), Tag::Value(HALO))?;
                f64::from_le_bytes(b.as_slice().try_into().expect("8 bytes"))
            }
            None => last,
        };
        for rq in reqs {
            mpi.wait(rq)?;
        }
        let mut next = Vec::with_capacity(st.u.len());
        for i in 0..st.u.len() {
            let l = if i == 0 { hl } else { st.u[i - 1] };
            let r = if i + 1 == st.u.len() { hr } else { st.u[i + 1] };
            next.push(0.5 * st.u[i] + 0.25 * (l + r));
        }
        st.u = next;
        st.step += 1;
        mpi.checkpoint_site(&bincode::serialize(&st).expect("serializable"))?;
    }
    let local: f64 = st.u.iter().sum();
    Ok(mpi.allreduce(ReduceOp::Sum, &[local])?[0])
}

// ---------------------------------------------------------------------
// Cannon's matrix multiplication
// ---------------------------------------------------------------------

/// Cannon configuration: C = A·B on a q×q process torus (p = q² ranks),
/// with n divisible by q.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CannonConfig {
    /// Global matrix dimension.
    pub n: usize,
}

/// The (checkpointable) Cannon state: the local blocks and the shift
/// stage reached.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CannonState {
    /// Completed shift stages.
    pub stage: u32,
    /// Local A block (row-major).
    pub a: Vec<f64>,
    /// Local B block.
    pub b: Vec<f64>,
    /// Local C accumulator.
    pub c: Vec<f64>,
}

fn cannon_grid(p: u32) -> u32 {
    let q = (p as f64).sqrt().round() as u32;
    assert_eq!(q * q, p, "Cannon needs a square process count, got {p}");
    q
}

/// Deterministic input entries.
fn a_entry(i: usize, j: usize) -> f64 {
    ((i * 31 + j * 17) % 13) as f64 - 6.0
}

fn b_entry(i: usize, j: usize) -> f64 {
    ((i * 7 + j * 23) % 11) as f64 - 5.0
}

fn local_block(n: usize, q: usize, bi: usize, bj: usize, f: fn(usize, usize) -> f64) -> Vec<f64> {
    let nb = n / q;
    let mut out = Vec::with_capacity(nb * nb);
    for i in 0..nb {
        for j in 0..nb {
            out.push(f(bi * nb + i, bj * nb + j));
        }
    }
    out
}

fn block_mul_acc(c: &mut [f64], a: &[f64], b: &[f64], nb: usize) {
    for i in 0..nb {
        for k in 0..nb {
            let aik = a[i * nb + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..nb {
                c[i * nb + j] += aik * b[k * nb + j];
            }
        }
    }
}

/// Run (or resume) Cannon's algorithm; returns the global checksum
/// Σᵢⱼ C[i][j] (verified against a closed-form single-node reference in
/// the tests). Checkpoint sites sit between shift stages.
pub fn cannon<C: Channel>(
    mpi: &mut Mpi<C>,
    cfg: &CannonConfig,
    restored: Option<CannonState>,
) -> MpiResult<f64> {
    let p = mpi.size();
    let q = cannon_grid(p) as usize;
    let me = mpi.rank().0 as usize;
    let (row, col) = (me / q, me % q);
    let nb = cfg.n / q;
    assert_eq!(nb * q, cfg.n, "n must divide the grid");

    let mut st = restored.unwrap_or_else(|| {
        // Initial skew: A block (i,j) starts from column (j+i) mod q;
        // B block from row (i+j) mod q.
        let a = local_block(cfg.n, q, row, (col + row) % q, a_entry);
        let b = local_block(cfg.n, q, (row + col) % q, col, b_entry);
        CannonState {
            stage: 0,
            a,
            b,
            c: vec![0.0; nb * nb],
        }
    });

    let left = Rank((row * q + (col + q - 1) % q) as u32);
    let right = Rank((row * q + (col + 1) % q) as u32);
    let up = Rank((((row + q - 1) % q) * q + col) as u32);
    let down = Rank((((row + 1) % q) * q + col) as u32);

    while (st.stage as usize) < q {
        block_mul_acc(&mut st.c, &st.a, &st.b, nb);
        if (st.stage as usize) + 1 < q || q > 1 {
            // Shift A left, B up (skip when q == 1).
            if q > 1 {
                let (_, _, abody) = mpi.sendrecv(
                    left,
                    31,
                    &encode_f64s(&st.a),
                    Source::Rank(right),
                    Tag::Value(31),
                )?;
                let (_, _, bbody) = mpi.sendrecv(
                    up,
                    32,
                    &encode_f64s(&st.b),
                    Source::Rank(down),
                    Tag::Value(32),
                )?;
                st.a = decode_f64s(abody.as_slice())?;
                st.b = decode_f64s(bbody.as_slice())?;
            }
        }
        st.stage += 1;
        mpi.checkpoint_site(&bincode::serialize(&st).expect("serializable"))?;
    }

    let local_sum: f64 = st.c.iter().sum();
    Ok(mpi.allreduce(ReduceOp::Sum, &[local_sum])?[0])
}

fn encode_f64s(v: &[f64]) -> Vec<u8> {
    mvr_mpi::encode_slice(v)
}

fn decode_f64s(bytes: &[u8]) -> MpiResult<Vec<f64>> {
    mvr_mpi::decode_slice(bytes)
}

/// Single-node reference checksum of C = A·B for the deterministic inputs.
pub fn cannon_reference_checksum(n: usize) -> f64 {
    // Σᵢⱼ Σₖ A[i][k]·B[k][j] = Σₖ (Σᵢ A[i][k]) · (Σⱼ B[k][j]).
    let mut total = 0.0;
    for k in 0..n {
        let col_a: f64 = (0..n).map(|i| a_entry(i, k)).sum();
        let row_b: f64 = (0..n).map(|j| b_entry(k, j)).sum();
        total += col_a * row_b;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_mpi::testing::run_local;

    #[test]
    fn cg_converges_on_local_cluster() {
        for p in [1u32, 2, 4] {
            let out = run_local(p, |mut mpi| {
                let cfg = CgConfig {
                    n: 512,
                    max_iter: 600,
                    tol: 1e-10,
                };
                cg(&mut mpi, &cfg, None)
            })
            .unwrap();
            for r in &out {
                assert!(
                    r.residual < 1e-10 || r.iterations == 600,
                    "residual {}",
                    r.residual
                );
            }
            // All ranks agree on the checksum.
            for r in &out {
                assert!((r.checksum - out[0].checksum).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn cg_checksum_is_partition_independent() {
        let c1 = run_local(1, |mut mpi| {
            cg(
                &mut mpi,
                &CgConfig {
                    n: 256,
                    max_iter: 400,
                    tol: 1e-10,
                },
                None,
            )
        })
        .unwrap()[0]
            .checksum;
        let c4 = run_local(4, |mut mpi| {
            cg(
                &mut mpi,
                &CgConfig {
                    n: 256,
                    max_iter: 400,
                    tol: 1e-10,
                },
                None,
            )
        })
        .unwrap()[0]
            .checksum;
        assert!((c1 - c4).abs() / c1.abs() < 1e-6, "{c1} vs {c4}");
    }

    #[test]
    fn stencil_conserves_mass_with_reflecting_boundaries() {
        let out = run_local(3, |mut mpi| {
            let me = mpi.rank().0;
            let p = mpi.size();
            let (lo, len) = block_range(900, p, me);
            let initial: f64 = (0..len)
                .map(|i| (((lo + i) % 17) as f64) / 17.0 + 1.0)
                .sum();
            let total = mpi.allreduce(ReduceOp::Sum, &[initial])?[0];
            let after = stencil(&mut mpi, &StencilConfig { n: 900, steps: 50 }, None)?;
            Ok((total, after))
        })
        .unwrap();
        for (before, after) in out {
            assert!(
                (before - after).abs() / before < 1e-9,
                "{before} vs {after}"
            );
        }
    }

    #[test]
    fn block_ranges_tile_exactly() {
        for n in [10usize, 97, 1024] {
            for p in [1u32, 3, 8] {
                let mut total = 0;
                let mut next = 0;
                for r in 0..p {
                    let (lo, len) = block_range(n, p, r);
                    assert_eq!(lo, next);
                    next = lo + len;
                    total += len;
                }
                assert_eq!(total, n);
            }
        }
    }

    #[test]
    fn cannon_matches_reference_on_square_grids() {
        for (p, n) in [(1u32, 8usize), (4, 12), (9, 18)] {
            let cfg = CannonConfig { n };
            let out = run_local(p, move |mut mpi| cannon(&mut mpi, &cfg, None)).unwrap();
            let expect = cannon_reference_checksum(n);
            for v in out {
                assert!((v - expect).abs() < 1e-6, "p={p} n={n}: {v} vs {expect}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn cannon_rejects_non_square_grids() {
        let cfg = CannonConfig { n: 8 };
        let _ = run_local(2, move |mut mpi| cannon(&mut mpi, &cfg, None));
    }
}
