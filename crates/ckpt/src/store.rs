//! The checkpoint server's image store.
//!
//! §4.6.1: "The checkpoint server is a reliable repository storing the
//! checkpoint images of the MPI processes and of the communication
//! daemons." We keep the latest image per rank (plus a bounded history for
//! diagnostics) and serve `GetLatest` on restart.

use mvr_core::{CkptReply, CkptRequest, ImageBlob, Rank};
use std::collections::BTreeMap;

/// One stored image.
#[derive(Clone, Debug)]
pub struct StoredImage {
    /// Logical clock of the image.
    pub clock: u64,
    /// The image as a zero-copy segment blob
    /// ([`mvr_core::NodeImage::encode_blob`]).
    pub image: ImageBlob,
}

/// Pure checkpoint-server state.
#[derive(Clone, Debug, Default)]
pub struct CheckpointStore {
    /// Latest image per rank (history below).
    latest: BTreeMap<Rank, StoredImage>,
    /// Previous images per rank, most recent last (bounded).
    history: BTreeMap<Rank, Vec<StoredImage>>,
    history_limit: usize,
    /// Cumulative bytes ever stored.
    bytes_written: u64,
}

impl CheckpointStore {
    /// Store with the default history depth (1 previous image).
    pub fn new() -> Self {
        CheckpointStore {
            history_limit: 1,
            ..Default::default()
        }
    }

    /// Store keeping `limit` previous images per rank.
    pub fn with_history(limit: usize) -> Self {
        CheckpointStore {
            history_limit: limit,
            ..Default::default()
        }
    }

    /// Store an image; newer clocks replace the latest.
    pub fn put(&mut self, rank: Rank, clock: u64, image: ImageBlob) {
        self.bytes_written += image.len() as u64;
        let new = StoredImage { clock, image };
        if let Some(old) = self.latest.insert(rank, new.clone()) {
            if old.clock > new.clock {
                // Out-of-order put (stale re-send): keep the newer one.
                self.latest.insert(rank, old.clone());
                return;
            }
            let h = self.history.entry(rank).or_default();
            h.push(old);
            let excess = h.len().saturating_sub(self.history_limit);
            if excess > 0 {
                h.drain(..excess);
            }
        }
    }

    /// Latest image for `rank`, if any.
    pub fn get_latest(&self, rank: Rank) -> Option<&StoredImage> {
        self.latest.get(&rank)
    }

    /// Handle a request, producing the reply.
    pub fn handle(&mut self, req: CkptRequest) -> CkptReply {
        match req {
            CkptRequest::Put { rank, clock, image } => {
                self.put(rank, clock, image);
                CkptReply::Stored { rank, clock }
            }
            CkptRequest::GetLatest { rank } => match self.get_latest(rank) {
                Some(img) => CkptReply::Image {
                    clock: Some(img.clock),
                    image: img.image.clone(),
                },
                None => CkptReply::Image {
                    clock: None,
                    image: ImageBlob::empty(),
                },
            },
        }
    }

    /// Number of ranks with at least one image.
    pub fn ranks_stored(&self) -> usize {
        self.latest.len()
    }

    /// Cumulative bytes ever written (checkpoint traffic accounting).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Bytes currently held (latest images only).
    pub fn bytes_held(&self) -> u64 {
        self.latest.values().map(|i| i.image.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::Payload;

    /// A dummy blob of exactly `len` bytes, all `fill`.
    fn blob(fill: u8, len: usize) -> ImageBlob {
        ImageBlob {
            meta: Payload::empty(),
            segments: vec![Payload::filled(fill, len)],
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = CheckpointStore::new();
        assert!(s.get_latest(Rank(0)).is_none());
        s.put(Rank(0), 10, blob(1, 100));
        let img = s.get_latest(Rank(0)).unwrap();
        assert_eq!(img.clock, 10);
        assert_eq!(img.image.len(), 100);
    }

    #[test]
    fn newer_clock_replaces_latest() {
        let mut s = CheckpointStore::new();
        s.put(Rank(0), 10, blob(1, 100));
        s.put(Rank(0), 20, blob(2, 50));
        assert_eq!(s.get_latest(Rank(0)).unwrap().clock, 20);
        assert_eq!(s.bytes_written(), 150);
        assert_eq!(s.bytes_held(), 50);
    }

    #[test]
    fn stale_put_does_not_regress() {
        let mut s = CheckpointStore::new();
        s.put(Rank(0), 20, blob(2, 50));
        s.put(Rank(0), 10, blob(1, 100));
        assert_eq!(s.get_latest(Rank(0)).unwrap().clock, 20);
    }

    #[test]
    fn handle_get_missing_is_none() {
        let mut s = CheckpointStore::new();
        let r = s.handle(CkptRequest::GetLatest { rank: Rank(7) });
        assert_eq!(
            r,
            CkptReply::Image {
                clock: None,
                image: ImageBlob::empty()
            }
        );
    }

    #[test]
    fn handle_put_acks() {
        let mut s = CheckpointStore::new();
        let r = s.handle(CkptRequest::Put {
            rank: Rank(1),
            clock: 5,
            image: blob(0, 10),
        });
        assert_eq!(
            r,
            CkptReply::Stored {
                rank: Rank(1),
                clock: 5
            }
        );
        assert_eq!(s.ranks_stored(), 1);
    }

    #[test]
    fn history_is_bounded() {
        let mut s = CheckpointStore::with_history(2);
        for c in 1..=5 {
            s.put(Rank(0), c, blob(c as u8, 10));
        }
        assert_eq!(s.history.get(&Rank(0)).unwrap().len(), 2);
        assert_eq!(s.get_latest(Rank(0)).unwrap().clock, 5);
    }
}
