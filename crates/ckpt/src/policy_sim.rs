//! The checkpoint-scheduling policy simulator of §4.6.2.
//!
//! "We have built a simulator and have compared the two policies with
//! classical communication schemes (point to point, synchronous all to
//! all, broadcasts and reduces). The comparison demonstrates that the
//! adaptive algorithm never provides a worse scheduling (w.r.t. bandwidth
//! utilization) and often provides better scheduling (up to n times
//! better, n being the number of computing nodes for asynchronous
//! broadcast)."
//!
//! The model: per-(sender → receiver) outstanding sender-log bytes grow at
//! scheme-defined rates; the scheduler checkpoints one node at a time;
//! checkpointing node `v` transfers an image of `state + SAVED_v` bytes at
//! a fixed bandwidth and then garbage-collects every `saved[*][v]` entry
//! (the messages `v` received are no longer needed by their senders).

use crate::scheduler::{NodeStatus, Policy, Scheduler};
use mvr_core::Rank;
use serde::{Deserialize, Serialize};

/// Classical communication schemes of the paper's comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// Disjoint pairs exchange symmetrically.
    PointToPoint,
    /// Everyone sends to everyone each step.
    SyncAllToAll,
    /// A root continuously broadcasts (asymmetric: root only sends).
    AsyncBroadcast,
    /// Everyone sends to a root (asymmetric: root only receives).
    Reduce,
}

impl Scheme {
    /// Bytes sent from `src` to `dst` in one step, for a unit message of
    /// `msg` bytes.
    fn rate(&self, src: usize, dst: usize, _n: usize, msg: u64) -> u64 {
        if src == dst {
            return 0;
        }
        match self {
            Scheme::PointToPoint => {
                // Pair (2k, 2k+1) exchange.
                if src / 2 == dst / 2 {
                    msg
                } else {
                    0
                }
            }
            Scheme::SyncAllToAll => msg,
            Scheme::AsyncBroadcast => {
                if src == 0 {
                    msg
                } else {
                    0
                }
            }
            Scheme::Reduce => {
                if dst == 0 {
                    msg
                } else {
                    0
                }
            }
        }
    }

    /// All schemes, for sweeping.
    pub fn all() -> [Scheme; 4] {
        [
            Scheme::PointToPoint,
            Scheme::SyncAllToAll,
            Scheme::AsyncBroadcast,
            Scheme::Reduce,
        ]
    }
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PolicySimConfig {
    /// Number of computing nodes.
    pub nodes: usize,
    /// Steps to simulate.
    pub steps: u64,
    /// Bytes of application traffic per (active) link per step.
    pub msg_bytes: u64,
    /// Fixed process-state part of every image.
    pub state_bytes: u64,
    /// Checkpoint transfer bandwidth in bytes per step.
    pub ckpt_bandwidth: u64,
    /// RNG seed (for `Policy::Random`).
    pub seed: u64,
}

impl Default for PolicySimConfig {
    fn default() -> Self {
        PolicySimConfig {
            nodes: 8,
            steps: 2_000,
            msg_bytes: 1_000,
            state_bytes: 50_000,
            ckpt_bandwidth: 100_000,
            seed: 1,
        }
    }
}

/// Result of one policy × scheme simulation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PolicySimReport {
    /// Policy simulated.
    pub policy: Policy,
    /// Scheme simulated.
    pub scheme: Scheme,
    /// Peak total sender-log occupancy (bytes) across the run.
    pub peak_saved_bytes: u64,
    /// Time-averaged total sender-log occupancy (bytes).
    pub mean_saved_bytes: u64,
    /// Total checkpoint bytes moved over the network — the "bandwidth
    /// utilization" the paper compares.
    pub ckpt_bytes_transferred: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
}

/// Run the simulation for one (policy, scheme) pair.
pub fn simulate(policy: Policy, scheme: Scheme, cfg: &PolicySimConfig) -> PolicySimReport {
    let n = cfg.nodes;
    let mut saved = vec![vec![0u64; n]; n]; // saved[src][dst]
    let mut sent_total = vec![0u64; n];
    let mut recv_total = vec![0u64; n];
    let mut sched = Scheduler::new(policy, n as u32, cfg.seed);

    let mut in_progress: Option<(usize, u64)> = None; // (victim, bytes left)
    let mut peak = 0u64;
    let mut occupancy_sum: u128 = 0;
    let mut ckpt_bytes = 0u64;
    let mut checkpoints = 0u64;
    let mut last_status: Vec<NodeStatus> = Vec::new();

    for _ in 0..cfg.steps {
        // 1. Application traffic grows the sender logs.
        for src in 0..n {
            for dst in 0..n {
                let b = scheme.rate(src, dst, n, cfg.msg_bytes);
                if b > 0 {
                    saved[src][dst] += b;
                    sent_total[src] += b;
                    recv_total[dst] += b;
                }
            }
        }

        // 2. Checkpoint progress / scheduling ("the checkpoint of a node
        //    immediately follows the one of another node").
        match &mut in_progress {
            Some((victim, left)) => {
                let done = *left <= cfg.ckpt_bandwidth;
                let moved = (*left).min(cfg.ckpt_bandwidth);
                ckpt_bytes += moved;
                *left -= moved;
                if done {
                    let v = *victim;
                    // GC: every sender drops what v had received.
                    for row in saved.iter_mut() {
                        row[v] = 0;
                    }
                    checkpoints += 1;
                    let status = last_status
                        .iter()
                        .find(|s| s.rank == Rank(v as u32))
                        .copied();
                    sched.on_checkpoint_done(Rank(v as u32), status.as_ref());
                    in_progress = None;
                }
            }
            None => {
                last_status = (0..n)
                    .map(|i| NodeStatus {
                        rank: Rank(i as u32),
                        logged_bytes: saved[i].iter().sum(),
                        sent_bytes: sent_total[i],
                        recv_bytes: recv_total[i],
                        // The policy simulator has no event-logger model.
                        ..Default::default()
                    })
                    .collect();
                if let Some(victim) = sched.pick(&last_status) {
                    let v = victim.idx();
                    let image = cfg.state_bytes + saved[v].iter().sum::<u64>();
                    in_progress = Some((v, image));
                }
            }
        }

        // 3. Metrics.
        let total: u64 = saved.iter().map(|r| r.iter().sum::<u64>()).sum();
        peak = peak.max(total);
        occupancy_sum += total as u128;
    }

    PolicySimReport {
        policy,
        scheme,
        peak_saved_bytes: peak,
        mean_saved_bytes: (occupancy_sum / cfg.steps as u128) as u64,
        ckpt_bytes_transferred: ckpt_bytes,
        checkpoints,
    }
}

/// Compare all policies on all schemes with one configuration.
pub fn compare_all(cfg: &PolicySimConfig) -> Vec<PolicySimReport> {
    let mut out = Vec::new();
    for scheme in Scheme::all() {
        for policy in [Policy::RoundRobin, Policy::Adaptive, Policy::Random] {
            out.push(simulate(policy, scheme, cfg));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PolicySimConfig {
        PolicySimConfig {
            nodes: 8,
            steps: 4_000,
            ..Default::default()
        }
    }

    #[test]
    fn adaptive_not_worse_on_symmetric_schemes() {
        for scheme in [Scheme::PointToPoint, Scheme::SyncAllToAll] {
            let rr = simulate(Policy::RoundRobin, scheme, &cfg());
            let ad = simulate(Policy::Adaptive, scheme, &cfg());
            // "never provides a worse scheduling (w.r.t. bandwidth
            // utilization)" — allow 10% tolerance for phase effects.
            assert!(
                ad.ckpt_bytes_transferred as f64 <= rr.ckpt_bytes_transferred as f64 * 1.10,
                "{scheme:?}: adaptive {} vs rr {}",
                ad.ckpt_bytes_transferred,
                rr.ckpt_bytes_transferred
            );
        }
    }

    #[test]
    fn adaptive_wins_clearly_on_asymmetric_schemes() {
        for scheme in [Scheme::AsyncBroadcast, Scheme::Reduce] {
            let rr = simulate(Policy::RoundRobin, scheme, &cfg());
            let ad = simulate(Policy::Adaptive, scheme, &cfg());
            assert!(
                ad.mean_saved_bytes < rr.mean_saved_bytes,
                "{scheme:?}: adaptive occupancy {} !< rr {}",
                ad.mean_saved_bytes,
                rr.mean_saved_bytes
            );
        }
    }

    #[test]
    fn broadcast_advantage_grows_with_n() {
        // "up to n times better ... for asynchronous broadcast" — w.r.t.
        // bandwidth utilization. Visible when image sizes are dominated by
        // the sender log, not the fixed process state.
        let mut last_ratio = 0.0;
        for n in [4usize, 8, 16] {
            let c = PolicySimConfig {
                nodes: n,
                steps: 4_000,
                msg_bytes: 5_000,
                state_bytes: 2_000,
                ckpt_bandwidth: 100_000,
                seed: 1,
            };
            let rr = simulate(Policy::RoundRobin, Scheme::AsyncBroadcast, &c);
            let ad = simulate(Policy::Adaptive, Scheme::AsyncBroadcast, &c);
            let ratio = rr.ckpt_bytes_transferred as f64 / ad.ckpt_bytes_transferred.max(1) as f64;
            assert!(
                ratio >= 1.0,
                "n={n}: adaptive uses more checkpoint bandwidth than RR"
            );
            assert!(
                ratio >= last_ratio * 0.8,
                "advantage should roughly grow with n"
            );
            last_ratio = ratio;
        }
        assert!(
            last_ratio > 2.0,
            "adaptive should clearly win at n=16, got {last_ratio:.2}"
        );
    }

    #[test]
    fn checkpoints_happen_and_gc_bounds_occupancy() {
        let r = simulate(Policy::RoundRobin, Scheme::SyncAllToAll, &cfg());
        assert!(r.checkpoints > 0);
        // Without GC the total would be steps*links*msg; with checkpoints
        // it must be far lower at peak.
        let ungated = cfg().steps * 8 * 7 * cfg().msg_bytes;
        assert!(r.peak_saved_bytes < ungated / 2);
    }

    #[test]
    fn compare_all_covers_grid() {
        let reports = compare_all(&PolicySimConfig {
            steps: 500,
            ..Default::default()
        });
        assert_eq!(reports.len(), 12);
    }
}
