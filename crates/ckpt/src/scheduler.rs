//! The checkpoint scheduler (§4.6.2).
//!
//! "The role of the checkpoint scheduler is to evaluate the cost and the
//! benefit of a checkpoint, at any specific time, and to order the
//! checkpoints accordingly. Periodically, it asks the communication daemons
//! to send their status (in terms of the amount of logged messages), and
//! evaluates the benefit of a checkpoint."
//!
//! Three policies are provided:
//! * [`Policy::RoundRobin`] — the paper's communication-free baseline;
//! * [`Policy::Adaptive`] — the paper's received/sent-ratio policy,
//!   checkpointing first the nodes whose checkpoint frees the most
//!   sender-log storage per byte of image transferred;
//! * [`Policy::Random`] — the policy used in the faulty-execution
//!   experiment (Fig. 11: "a scheduling policy randomly selecting the node
//!   to checkpoint").

use mvr_core::Rank;
use serde::{Deserialize, Serialize};

/// A daemon's status report, as carried by `SchedMsg::Status`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStatus {
    /// Reporting rank.
    pub rank: Rank,
    /// Bytes currently in the sender-based log (image-size proxy: cost).
    pub logged_bytes: u64,
    /// Cumulative bytes sent.
    pub sent_bytes: u64,
    /// Cumulative bytes received (GC-potential proxy: benefit).
    pub recv_bytes: u64,
    /// Event batches the daemon shipped to its event logger.
    pub el_batches: u64,
    /// Reception events carried by those batches.
    pub el_events: u64,
    /// Event-logger acknowledgements the daemon received.
    pub el_acks: u64,
    /// Largest single batch shipped, in events.
    pub el_max_batch: u64,
    /// Latency-histogram summaries for the hot protocol intervals.
    pub timings: mvr_obs::TimingSummary,
}

/// Checkpoint-selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Cycle through the ranks; needs no status traffic.
    RoundRobin,
    /// Decreasing received/sent ratio (the paper's adaptive policy).
    Adaptive,
    /// Uniformly random victim (seeded).
    Random,
}

/// The scheduler's decision state.
#[derive(Clone, Debug)]
pub struct Scheduler {
    policy: Policy,
    world: u32,
    next_rr: u32,
    rng_state: u64,
    /// Per-rank cumulative counters at the last checkpoint of that rank,
    /// so the adaptive ratio uses *deltas* since the last checkpoint.
    sent_at_ckpt: Vec<u64>,
    recv_at_ckpt: Vec<u64>,
    /// Remaining picks of the current adaptive round ("it computes a
    /// scheduling following a decreasing order of this ratio across the
    /// nodes" — a full round per schedule, so no node starves).
    adaptive_round: std::collections::VecDeque<Rank>,
}

impl Scheduler {
    /// New scheduler over `world` ranks.
    pub fn new(policy: Policy, world: u32, seed: u64) -> Self {
        Scheduler {
            policy,
            world,
            next_rr: 0,
            rng_state: seed.max(1),
            sent_at_ckpt: vec![0; world as usize],
            recv_at_ckpt: vec![0; world as usize],
            adaptive_round: std::collections::VecDeque::new(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic and dependency-free.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Pick the next rank to checkpoint, given fresh status reports
    /// (RoundRobin ignores them; the caller may pass an empty slice then).
    /// Returns `None` when no candidate exists (empty world).
    pub fn pick(&mut self, statuses: &[NodeStatus]) -> Option<Rank> {
        if self.world == 0 {
            return None;
        }
        let rank = match self.policy {
            Policy::RoundRobin => {
                let r = Rank(self.next_rr);
                self.next_rr = (self.next_rr + 1) % self.world;
                r
            }
            Policy::Random => Rank((self.next_rand() % self.world as u64) as u32),
            Policy::Adaptive => {
                // Build a full round ordered by decreasing
                // (received delta) / (sent delta) when the previous round
                // is exhausted; missing statuses fall back to round-robin
                // order so every node is eventually checkpointed.
                if self.adaptive_round.is_empty() {
                    if statuses.is_empty() {
                        let r = Rank(self.next_rr);
                        self.next_rr = (self.next_rr + 1) % self.world;
                        return Some(r);
                    }
                    // A node that received nothing new frees no sender-log
                    // storage when checkpointed: transferring its image is
                    // pure bandwidth waste (the round-robin pathology on
                    // asymmetric schemes). Schedule only beneficial nodes,
                    // ordered by decreasing benefit/cost ratio.
                    let mut ranked: Vec<(f64, Rank)> = statuses
                        .iter()
                        .filter_map(|s| {
                            let i = s.rank.idx();
                            let recv_d = s.recv_bytes.saturating_sub(self.recv_at_ckpt[i]) as f64;
                            if recv_d <= 0.0 {
                                return None;
                            }
                            let sent_d =
                                (s.sent_bytes.saturating_sub(self.sent_at_ckpt[i]) as f64).max(1.0);
                            Some((recv_d / sent_d, s.rank))
                        })
                        .collect();
                    ranked
                        .sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                    if ranked.is_empty() {
                        // Nothing beneficial: fall back to round-robin so
                        // recovery-oriented checkpoints still progress.
                        let r = Rank(self.next_rr);
                        self.next_rr = (self.next_rr + 1) % self.world;
                        return Some(r);
                    }
                    self.adaptive_round
                        .extend(ranked.into_iter().map(|(_, r)| r));
                }
                self.adaptive_round.pop_front()?
            }
        };
        Some(rank)
    }

    /// Record that `rank` completed a checkpoint, updating the adaptive
    /// baselines from its last status.
    pub fn on_checkpoint_done(&mut self, rank: Rank, status: Option<&NodeStatus>) {
        if let Some(s) = status {
            self.sent_at_ckpt[rank.idx()] = s.sent_bytes;
            self.recv_at_ckpt[rank.idx()] = s.recv_bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(rank: u32, sent: u64, recv: u64) -> NodeStatus {
        NodeStatus {
            rank: Rank(rank),
            logged_bytes: sent,
            sent_bytes: sent,
            recv_bytes: recv,
            ..Default::default()
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = Scheduler::new(Policy::RoundRobin, 3, 0);
        let picks: Vec<u32> = (0..6).map(|_| s.pick(&[]).unwrap().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn adaptive_prefers_high_recv_to_sent_ratio() {
        let mut s = Scheduler::new(Policy::Adaptive, 3, 0);
        // Rank 2 received a lot and sent little: checkpointing it frees the
        // most sender-log bytes per image byte.
        let statuses = vec![st(0, 1000, 10), st(1, 500, 500), st(2, 10, 1000)];
        assert_eq!(s.pick(&statuses), Some(Rank(2)));
    }

    #[test]
    fn adaptive_uses_deltas_since_last_checkpoint() {
        let mut s = Scheduler::new(Policy::Adaptive, 2, 0);
        let first = vec![st(0, 10, 1000), st(1, 10, 100)];
        assert_eq!(s.pick(&first), Some(Rank(0)));
        s.on_checkpoint_done(Rank(0), Some(&first[0]));
        // Since its checkpoint, rank 0 received nothing new; rank 1 wins.
        let second = vec![st(0, 20, 1000), st(1, 20, 200)];
        assert_eq!(s.pick(&second), Some(Rank(1)));
    }

    #[test]
    fn adaptive_without_statuses_falls_back_to_rr() {
        let mut s = Scheduler::new(Policy::Adaptive, 2, 0);
        assert_eq!(s.pick(&[]), Some(Rank(0)));
        assert_eq!(s.pick(&[]), Some(Rank(1)));
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let mut a = Scheduler::new(Policy::Random, 4, 42);
        let mut b = Scheduler::new(Policy::Random, 4, 42);
        let pa: Vec<u32> = (0..20).map(|_| a.pick(&[]).unwrap().0).collect();
        let pb: Vec<u32> = (0..20).map(|_| b.pick(&[]).unwrap().0).collect();
        assert_eq!(pa, pb);
        assert!(pa.iter().all(|&r| r < 4));
        // Not constant (sanity).
        assert!(pa.iter().any(|&r| r != pa[0]));
    }

    #[test]
    fn empty_world_yields_none() {
        let mut s = Scheduler::new(Policy::RoundRobin, 0, 0);
        assert_eq!(s.pick(&[]), None);
    }
}
