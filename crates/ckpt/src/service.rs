//! The checkpoint-server service loop, mirroring the event logger's.
//! Note §4.3: unlike the EL, the checkpoint server *may* be unreliable —
//! nodes whose images are lost simply restart from scratch. Tests kill it
//! to exercise exactly that path.
//!
//! The store itself models *stable storage* (the CS writes images to
//! disk): [`run_checkpoint_server_on`] serves an externally owned store,
//! so a relaunched CS process resumes with every image it ever acked.
//! This is what makes event-log truncation after a completed checkpoint
//! sound — a from-scratch restart is only ever needed for a rank with no
//! stored image, whose event log is still complete.

use crate::store::CheckpointStore;
use mvr_core::{CkptReply, CkptRequest, Rank};
use mvr_net::Mailbox;

/// One inbound request: who asked, and what.
#[derive(Clone, Debug)]
pub struct CkptPacket {
    /// The daemon (by rank) that sent the request.
    pub from: Rank,
    /// The request.
    pub req: CkptRequest,
}

/// Run the checkpoint server until its mailbox is killed, serving (and
/// mutating) an externally owned store — the "disk" that survives a crash
/// of the server process. `reply` ships a [`CkptReply`] back to the
/// daemon of the given rank.
pub fn run_checkpoint_server_on<F>(
    mailbox: Mailbox<CkptPacket>,
    store: &mut CheckpointStore,
    mut reply: F,
) where
    F: FnMut(Rank, CkptReply) -> bool,
{
    // A kill (or a spurious timeout) ends the service loop.
    while let Ok(pkt) = mailbox.recv() {
        let r = store.handle(pkt.req);
        let _ = reply(pkt.from, r);
    }
}

/// As [`run_checkpoint_server_on`], with a fresh private store returned
/// at shutdown.
pub fn run_checkpoint_server<F>(mailbox: Mailbox<CkptPacket>, reply: F) -> CheckpointStore
where
    F: FnMut(Rank, CkptReply) -> bool,
{
    let mut store = CheckpointStore::new();
    run_checkpoint_server_on(mailbox, &mut store, reply);
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::{ImageBlob, NodeId, Payload};
    use mvr_net::Fabric;
    use std::sync::mpsc;
    use std::thread;

    #[test]
    fn put_then_get_roundtrip_through_service() {
        let fabric = Fabric::new();
        let node = NodeId::CheckpointServer(0);
        let (mb, _id) = fabric.register::<CkptPacket>(node);
        let (tx, rx) = mpsc::channel::<(Rank, CkptReply)>();
        let h = thread::spawn(move || {
            run_checkpoint_server(mb, move |r, reply| tx.send((r, reply)).is_ok())
        });
        fabric
            .send_from_reliable(
                node,
                CkptPacket {
                    from: Rank(2),
                    req: CkptRequest::Put {
                        rank: Rank(2),
                        clock: 9,
                        image: ImageBlob {
                            meta: Payload::empty(),
                            segments: vec![Payload::filled(1, 64)],
                        },
                    },
                },
            )
            .unwrap();
        assert_eq!(
            rx.recv().unwrap().1,
            CkptReply::Stored {
                rank: Rank(2),
                clock: 9
            }
        );
        fabric
            .send_from_reliable(
                node,
                CkptPacket {
                    from: Rank(2),
                    req: CkptRequest::GetLatest { rank: Rank(2) },
                },
            )
            .unwrap();
        let (_, reply) = rx.recv().unwrap();
        assert!(matches!(reply, CkptReply::Image { clock: Some(9), .. }));
        fabric.kill(node);
        let store = h.join().unwrap();
        assert_eq!(store.ranks_stored(), 1);
    }
}
