//! # mvr-ckpt — checkpoint server, scheduler and policies
//!
//! The checkpoint subsystem of MPICH-V2 (§4.6): a [`CheckpointStore`] /
//! server storing node images, the [`Scheduler`] implementing the paper's
//! round-robin and adaptive (received/sent ratio) policies plus the random
//! policy of the faulty-execution experiment, and the §4.6.2
//! [`policy_sim`] comparing the policies on classical communication
//! schemes.
//!
//! Per §4.3 the checkpoint components *may* be unreliable: losing them
//! degrades restarts to from-scratch re-execution but never violates
//! correctness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod policy_sim;
pub mod scheduler;
pub mod service;
pub mod store;

pub use policy_sim::{compare_all, simulate, PolicySimConfig, PolicySimReport, Scheme};
pub use scheduler::{NodeStatus, Policy, Scheduler};
pub use service::{run_checkpoint_server, run_checkpoint_server_on, CkptPacket};
pub use store::{CheckpointStore, StoredImage};
