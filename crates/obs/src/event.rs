//! The structured protocol event schema.
//!
//! One [`FlightRecord`] is appended to a rank's ring buffer per
//! protocol transition. The event vocabulary mirrors §4 of the paper:
//! the pessimism gate, event-logger traffic, uncoordinated checkpoints,
//! the RESTART handshake and ordered replay — plus the chaos layer's
//! interventions, which is what makes a post-mortem timeline readable.

use serde::{Deserialize, Serialize};

/// What happened to an application send at emission time — the
/// span-correlation field the lifecycle stitcher and the online gate
/// monitor key on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SendDisposition {
    /// Transmitted immediately (gate open, nothing queued).
    Wire,
    /// Queued behind the closed pessimism gate; a later `GateOpen`
    /// releases it.
    Gated,
    /// Re-executed send whose transmission was suppressed (the peer's
    /// RESTART watermark already covers it); only SAVED is rebuilt.
    Suppressed,
}

/// A structured protocol event. Numeric fields are raw `u32`/`u64`
/// (ranks, clocks, byte counts) so the schema has no dependency on the
/// protocol crates.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtoEvent {
    /// Application send left the engine (clock-ticked, logged to SAVED).
    Send {
        /// Destination rank.
        to: u32,
        /// Sender logical clock stamped on the message — together with
        /// the recording rank, the lifecycle-span key.
        clock: u64,
        /// Payload bytes.
        bytes: u64,
        /// Whether the payload hit the wire, queued behind the gate, or
        /// was suppressed as an already-received re-execution.
        disposition: SendDisposition,
    },
    /// A send queued behind the closed pessimism gate (WAITLOGGED).
    GateDefer {
        /// Destination rank of the deferred send.
        to: u32,
        /// Sender clock of the deferred data message (span key).
        clock: u64,
        /// Number of sends now waiting behind the gate.
        queued: u64,
    },
    /// The gate opened (EL ack covered every owed event) and released
    /// the queued sends.
    GateOpen {
        /// Sends released by this opening.
        released: u64,
        /// Nanoseconds the oldest released send waited.
        waited_ns: u64,
    },
    /// A message was delivered to the application.
    Deliver {
        /// Source rank.
        from: u32,
        /// Sender clock of the delivered message.
        sender_clock: u64,
        /// Receiver clock assigned to the delivery.
        receiver_clock: u64,
        /// `true` when delivered during ordered replay.
        replay: bool,
    },
    /// A duplicate incoming message was dropped.
    DuplicateDropped {
        /// Source rank.
        from: u32,
        /// Sender clock of the duplicate.
        sender_clock: u64,
    },
    /// A batch of reception events shipped to the event logger.
    ElShip {
        /// Events carried by the batch.
        events: u64,
        /// Lowest receiver clock covered by the batch (span stitching
        /// attributes each delivered receiver clock to its batch).
        from_clock: u64,
        /// Highest receiver clock covered by the batch.
        up_to: u64,
    },
    /// An event-logger acknowledgement arrived.
    ElAck {
        /// Highest receiver clock the ack covers.
        up_to: u64,
        /// Shipped batches retired by this (possibly coalesced) ack.
        batches_retired: u64,
        /// Round-trip nanoseconds of the oldest retired batch
        /// (0 when the ack retired nothing).
        rtt_ns: u64,
    },
    /// Checkpoint armed: image serialized, upload begun.
    CkptBegin {
        /// Sequence number of the checkpoint.
        seq: u64,
        /// Sender-log bytes held at the snapshot instant (the dominant
        /// protocol-side component of the image).
        bytes: u64,
    },
    /// Checkpoint acknowledged by the checkpoint server.
    CkptCommit {
        /// Sequence number of the checkpoint.
        seq: u64,
        /// Nanoseconds between arm and commit (upload duration).
        store_ns: u64,
    },
    /// Sender-log garbage collection driven by a peer's CkptNotify.
    CkptGc {
        /// Peer whose watermark advanced.
        peer: u32,
        /// Bytes freed from the sender log.
        bytes_freed: u64,
    },
    /// RESTART phase 1: a restarting rank announced itself.
    Restart1 {
        /// The restarting rank.
        rank: u32,
    },
    /// RESTART phase 2: watermark exchanged with a peer.
    Restart2 {
        /// Peer rank the watermark was exchanged with.
        peer: u32,
        /// The exchanged high-watermark clock.
        watermark: u64,
    },
    /// Recovery began: checkpoint image restored, EL download issued.
    RecoveryBegin {
        /// Receiver clock restored from the checkpoint image.
        restored_clock: u64,
    },
    /// One ordered replay step consumed a logged reception event.
    ReplayStep {
        /// Source rank of the replayed message.
        from: u32,
        /// Sender clock of the replayed message (span key).
        sender_clock: u64,
        /// Receiver clock of the replayed delivery.
        receiver_clock: u64,
    },
    /// Ordered replay finished; the engine switched to normal mode.
    ReplayDone {
        /// Deliveries performed during the replay.
        replayed: u64,
        /// Nanoseconds spent replaying.
        replay_ns: u64,
    },
    /// The chaos layer killed a node.
    ChaosKill {
        /// Victim rank (computing ranks only; services use
        /// [`ProtoEvent::ServiceKill`]).
        victim: u32,
        /// `true` when the victim was already restarting (a re-kill).
        rekill: bool,
    },
    /// The chaos layer killed a service node.
    ServiceKill {
        /// Human-readable service name ("cs", "el0", ...).
        service: String,
    },
    /// A daemon incarnation exited cleanly (app finished).
    Finish {
        /// Final receiver clock.
        clock: u64,
    },
    /// The dispatcher detected a daemon death and scheduled a respawn.
    RespawnScheduled {
        /// Rank being respawned.
        rank: u32,
        /// Restart count for this rank so far.
        attempt: u64,
    },
    /// An invariant violation or payload divergence detected by a
    /// harness; recorded immediately before a dump.
    Divergence {
        /// What diverged, in prose.
        detail: String,
    },
    /// One event-logger replica acknowledged a shipped batch. Only
    /// emitted when the EL is replicated (`el_replicas > 1`); the
    /// quorum-level [`ProtoEvent::ElAck`] still marks the gate-visible
    /// watermark advance.
    ElReplicaAck {
        /// Shard the replica belongs to.
        shard: u32,
        /// Replica index within the shard.
        replica: u32,
        /// Highest receiver clock this replica has durably stored.
        up_to: u64,
    },
    /// The dispatcher revived a dead event-logger replica and it caught
    /// up from a surviving peer's ledger snapshot.
    ElReplicaRevive {
        /// Shard the replica belongs to.
        shard: u32,
        /// Replica index within the shard.
        replica: u32,
        /// Events absorbed from the peer snapshot during catch-up.
        caught_up: u64,
    },
    /// A transport-level peer link came up (socket backend handshake
    /// completed, or an in-memory endpoint attached).
    TransportUp {
        /// Wire name of the peer node (`cn3`, `el0`, `cs0`, ...).
        peer: String,
        /// Incarnation the peer announced in its hello.
        incarnation: u64,
    },
    /// A transport-level peer link was declared dead — the socket
    /// fail-stop detector's verdict (EOF, read-timeout, dial failure),
    /// which the supervisor maps onto rank-lost / replica-dead handling.
    TransportDown {
        /// Wire name of the peer node.
        peer: String,
        /// Diagnostic cause string ("eof", "read-timeout", ...).
        cause: String,
    },
}

impl ProtoEvent {
    /// Coarse protocol phase this event belongs to — used by triage to
    /// name the phase of the first divergence.
    pub fn phase(&self) -> &'static str {
        match self {
            ProtoEvent::Send { .. } => "send",
            ProtoEvent::GateDefer { .. } | ProtoEvent::GateOpen { .. } => "gate",
            ProtoEvent::Deliver { .. } | ProtoEvent::DuplicateDropped { .. } => "deliver",
            ProtoEvent::ElShip { .. }
            | ProtoEvent::ElAck { .. }
            | ProtoEvent::ElReplicaAck { .. }
            | ProtoEvent::ElReplicaRevive { .. } => "event-log",
            ProtoEvent::CkptBegin { .. }
            | ProtoEvent::CkptCommit { .. }
            | ProtoEvent::CkptGc { .. } => "checkpoint",
            ProtoEvent::Restart1 { .. }
            | ProtoEvent::Restart2 { .. }
            | ProtoEvent::RecoveryBegin { .. } => "recovery",
            ProtoEvent::ReplayStep { .. } | ProtoEvent::ReplayDone { .. } => "replay",
            ProtoEvent::ChaosKill { .. } | ProtoEvent::ServiceKill { .. } => "chaos",
            ProtoEvent::Finish { .. } | ProtoEvent::RespawnScheduled { .. } => "lifecycle",
            ProtoEvent::Divergence { .. } => "divergence",
            ProtoEvent::TransportUp { .. } | ProtoEvent::TransportDown { .. } => "transport",
        }
    }

    /// Short kebab-case name of the event kind (Chrome-trace label).
    pub fn kind(&self) -> &'static str {
        match self {
            ProtoEvent::Send { .. } => "send",
            ProtoEvent::GateDefer { .. } => "gate-defer",
            ProtoEvent::GateOpen { .. } => "gate-open",
            ProtoEvent::Deliver { .. } => "deliver",
            ProtoEvent::DuplicateDropped { .. } => "dup-dropped",
            ProtoEvent::ElShip { .. } => "el-ship",
            ProtoEvent::ElAck { .. } => "el-ack",
            ProtoEvent::CkptBegin { .. } => "ckpt-begin",
            ProtoEvent::CkptCommit { .. } => "ckpt-commit",
            ProtoEvent::CkptGc { .. } => "ckpt-gc",
            ProtoEvent::Restart1 { .. } => "restart1",
            ProtoEvent::Restart2 { .. } => "restart2",
            ProtoEvent::RecoveryBegin { .. } => "recovery-begin",
            ProtoEvent::ReplayStep { .. } => "replay-step",
            ProtoEvent::ReplayDone { .. } => "replay-done",
            ProtoEvent::ChaosKill { .. } => "chaos-kill",
            ProtoEvent::ServiceKill { .. } => "service-kill",
            ProtoEvent::Finish { .. } => "finish",
            ProtoEvent::RespawnScheduled { .. } => "respawn",
            ProtoEvent::Divergence { .. } => "divergence",
            ProtoEvent::ElReplicaAck { .. } => "el-replica-ack",
            ProtoEvent::ElReplicaRevive { .. } => "el-replica-revive",
            ProtoEvent::TransportUp { .. } => "transport-up",
            ProtoEvent::TransportDown { .. } => "transport-down",
        }
    }

    /// Stable ordinal of the event kind (declaration order). Used as the
    /// final tie-break when merging timelines, so two records carrying
    /// the same timestamp, rank and logical clock still order
    /// deterministically — a prerequisite for byte-stable dumps of
    /// seeded (and virtual-time) runs.
    pub fn kind_index(&self) -> u8 {
        match self {
            ProtoEvent::Send { .. } => 0,
            ProtoEvent::GateDefer { .. } => 1,
            ProtoEvent::GateOpen { .. } => 2,
            ProtoEvent::Deliver { .. } => 3,
            ProtoEvent::DuplicateDropped { .. } => 4,
            ProtoEvent::ElShip { .. } => 5,
            ProtoEvent::ElAck { .. } => 6,
            ProtoEvent::CkptBegin { .. } => 7,
            ProtoEvent::CkptCommit { .. } => 8,
            ProtoEvent::CkptGc { .. } => 9,
            ProtoEvent::Restart1 { .. } => 10,
            ProtoEvent::Restart2 { .. } => 11,
            ProtoEvent::RecoveryBegin { .. } => 12,
            ProtoEvent::ReplayStep { .. } => 13,
            ProtoEvent::ReplayDone { .. } => 14,
            ProtoEvent::ChaosKill { .. } => 15,
            ProtoEvent::ServiceKill { .. } => 16,
            ProtoEvent::Finish { .. } => 17,
            ProtoEvent::RespawnScheduled { .. } => 18,
            ProtoEvent::Divergence { .. } => 19,
            ProtoEvent::ElReplicaAck { .. } => 20,
            ProtoEvent::ElReplicaRevive { .. } => 21,
            ProtoEvent::TransportUp { .. } => 22,
            ProtoEvent::TransportDown { .. } => 23,
        }
    }

    /// `true` for events that mark a fault or detected anomaly — the
    /// candidates for "first divergence" in triage.
    pub fn is_anomaly(&self) -> bool {
        matches!(
            self,
            ProtoEvent::ChaosKill { .. }
                | ProtoEvent::ServiceKill { .. }
                | ProtoEvent::Divergence { .. }
        )
    }
}

/// One entry in a flight recorder: who, when (logical and physical),
/// and what.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Rank the record belongs to (`u32::MAX` for the dispatcher /
    /// harness pseudo-rank).
    pub rank: u32,
    /// The rank's logical clock at the time of the event (receiver
    /// clock for engine events; 0 where no clock applies).
    pub clock: u64,
    /// Monotonic nanoseconds since the deployment's recorder epoch.
    pub ts_ns: u64,
    /// The structured event.
    pub event: ProtoEvent,
}

/// Pseudo-rank used for records emitted by the dispatcher, the chaos
/// driver and harnesses rather than a computing rank.
pub const DISPATCHER_RANK: u32 = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip_all_kinds() {
        let samples = vec![
            ProtoEvent::Send {
                to: 1,
                clock: 2,
                bytes: 3,
                disposition: SendDisposition::Wire,
            },
            ProtoEvent::Send {
                to: 1,
                clock: 3,
                bytes: 3,
                disposition: SendDisposition::Suppressed,
            },
            ProtoEvent::GateDefer {
                to: 1,
                clock: 2,
                queued: 4,
            },
            ProtoEvent::GateOpen {
                released: 4,
                waited_ns: 900,
            },
            ProtoEvent::Deliver {
                from: 0,
                sender_clock: 9,
                receiver_clock: 10,
                replay: true,
            },
            ProtoEvent::DuplicateDropped {
                from: 2,
                sender_clock: 5,
            },
            ProtoEvent::ElShip {
                events: 8,
                from_clock: 37,
                up_to: 44,
            },
            ProtoEvent::ElAck {
                up_to: 44,
                batches_retired: 2,
                rtt_ns: 1200,
            },
            ProtoEvent::CkptBegin {
                seq: 3,
                bytes: 4096,
            },
            ProtoEvent::CkptCommit {
                seq: 3,
                store_ns: 88_000,
            },
            ProtoEvent::CkptGc {
                peer: 1,
                bytes_freed: 512,
            },
            ProtoEvent::Restart1 { rank: 2 },
            ProtoEvent::Restart2 {
                peer: 0,
                watermark: 17,
            },
            ProtoEvent::RecoveryBegin { restored_clock: 12 },
            ProtoEvent::ReplayStep {
                from: 1,
                sender_clock: 6,
                receiver_clock: 13,
            },
            ProtoEvent::ReplayDone {
                replayed: 5,
                replay_ns: 70_000,
            },
            ProtoEvent::ChaosKill {
                victim: 3,
                rekill: false,
            },
            ProtoEvent::ServiceKill {
                service: "cs".into(),
            },
            ProtoEvent::Finish { clock: 99 },
            ProtoEvent::RespawnScheduled {
                rank: 3,
                attempt: 2,
            },
            ProtoEvent::Divergence {
                detail: "rank 1 payload mismatch".into(),
            },
            ProtoEvent::ElReplicaAck {
                shard: 1,
                replica: 0,
                up_to: 44,
            },
            ProtoEvent::ElReplicaRevive {
                shard: 1,
                replica: 1,
                caught_up: 37,
            },
            ProtoEvent::TransportUp {
                peer: "cn3".into(),
                incarnation: 2,
            },
            ProtoEvent::TransportDown {
                peer: "el0".into(),
                cause: "read-timeout".into(),
            },
        ];
        let mut kinds = std::collections::BTreeSet::new();
        for (i, ev) in samples.into_iter().enumerate() {
            let rec = FlightRecord {
                rank: i as u32,
                clock: i as u64,
                ts_ns: 1000 + i as u64,
                event: ev,
            };
            let enc = bincode::serialize(&rec).unwrap();
            let dec: FlightRecord = bincode::deserialize(&enc).unwrap();
            assert_eq!(rec, dec);
            assert!(!rec.event.kind().is_empty());
            assert!(!rec.event.phase().is_empty());
            kinds.insert((rec.event.kind_index(), rec.event.kind()));
        }
        // kind_index is injective over the vocabulary (the two Send
        // samples share one ordinal by design).
        assert_eq!(kinds.len(), 24);
    }
}
