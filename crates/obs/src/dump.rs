//! Crash-dump writers and validators: the merged JSONL timeline, the
//! Chrome-trace/Perfetto export, schema validation, and first-divergence
//! triage.
//!
//! The vendored `serde_json` is write-only (no parser), so validation
//! works structurally: every record is round-tripped through bincode
//! and re-rendered to JSON for byte comparison against the dump file,
//! and the per-rank logical clocks are checked for monotonicity
//! (allowing the resets that legitimately accompany recovery).

use crate::event::{FlightRecord, ProtoEvent};
use serde::Serialize;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Where a dump landed, plus enough metadata for triage notes.
#[derive(Clone, Debug)]
pub struct DumpPaths {
    /// The merged clock-ordered JSONL timeline.
    pub jsonl: PathBuf,
    /// The Chrome-trace/Perfetto export.
    pub trace: PathBuf,
    /// Records written.
    pub records: usize,
    /// Records lost to ring-buffer wraparound before the dump.
    pub dropped: u64,
    /// First-divergence triage, if the timeline contains an anomaly.
    pub triage: Option<Triage>,
}

impl DumpPaths {
    /// One-paragraph triage note naming the dump paths and, when
    /// present, the rank and protocol phase of the first divergence.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "flight recorder: {} records ({} lost to wraparound)\n  timeline: {}\n  perfetto: {}",
            self.records,
            self.dropped,
            self.jsonl.display(),
            self.trace.display(),
        );
        match &self.triage {
            Some(t) => s.push_str(&format!("\n  {t}")),
            None => s.push_str("\n  no anomaly recorded in timeline"),
        }
        if self.dropped > 0 {
            s.push_str(&format!(
                "\n  WARNING: {} record(s) lost to ring wraparound — the timeline \
                 is truncated; causal analysis may report spurious orphan spans. \
                 Raise the recorder ring capacity.",
                self.dropped
            ));
        }
        s
    }
}

/// The first anomaly in a merged timeline: which rank diverged first,
/// and in which protocol phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Triage {
    /// Rank of the first anomalous record ([`crate::event::DISPATCHER_RANK`]
    /// for harness-level records).
    pub rank: u32,
    /// Protocol phase of the anomaly (see [`ProtoEvent::phase`]).
    pub phase: &'static str,
    /// Event kind of the anomaly.
    pub kind: &'static str,
    /// Timestamp of the anomaly.
    pub ts_ns: u64,
    /// Rendered event for the triage note.
    pub detail: String,
}

impl std::fmt::Display for Triage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rank = if self.rank == crate::event::DISPATCHER_RANK {
            "harness".to_string()
        } else {
            format!("rank {}", self.rank)
        };
        write!(
            f,
            "first divergence: {} in phase `{}` ({}, t={}ns): {}",
            rank, self.phase, self.kind, self.ts_ns, self.detail
        )
    }
}

/// Find the first anomaly in a ts-ordered timeline. Explicit
/// [`ProtoEvent::Divergence`] records win over chaos kills: a kill is
/// an injected fault, a divergence is the protocol failing to mask it.
pub fn triage(timeline: &[FlightRecord]) -> Option<Triage> {
    let pick = |rec: &FlightRecord| Triage {
        rank: rec.rank,
        phase: rec.event.phase(),
        kind: rec.event.kind(),
        ts_ns: rec.ts_ns,
        detail: format!("{:?}", rec.event),
    };
    timeline
        .iter()
        .find(|r| matches!(r.event, ProtoEvent::Divergence { .. }))
        .or_else(|| timeline.iter().find(|r| r.event.is_anomaly()))
        .map(pick)
}

/// Render one record as its canonical JSONL line (no trailing newline).
pub fn jsonl_line(rec: &FlightRecord) -> String {
    serde_json::to_string(rec).expect("FlightRecord serializes to JSON")
}

/// Metadata carried by the first line of a JSONL dump, so a reader can
/// tell a complete timeline from a ring-truncated one without access to
/// the live hub.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct DumpHeader {
    /// Records in the dump body (lines after the header).
    pub records: u64,
    /// Records lost to ring wraparound before the dump was taken.
    /// Non-zero means the timeline is truncated and causal analysis
    /// can report spurious orphan spans.
    pub dropped: u64,
}

#[derive(Serialize)]
struct HeaderLine {
    header: DumpHeader,
}

/// Render the dump-header line (no trailing newline):
/// `{"header":{"records":N,"dropped":N}}`.
pub fn header_line(header: DumpHeader) -> String {
    serde_json::to_string(&HeaderLine { header }).expect("DumpHeader serializes to JSON")
}

/// Write the merged timeline as JSONL: one header line, then one record
/// per line.
pub fn write_jsonl(path: &Path, timeline: &[FlightRecord], dropped: u64) -> std::io::Result<()> {
    let mut out = header_line(DumpHeader {
        records: timeline.len() as u64,
        dropped,
    });
    out.push('\n');
    for rec in timeline {
        out.push_str(&jsonl_line(rec));
        out.push('\n');
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// Instant ("i") trace event: one per flight record, on the rank's
/// track. Serialized individually and joined by hand because the
/// vendored `serde_json` has no heterogeneous `Value` serializer.
#[derive(Serialize)]
struct InstantEvent {
    name: String,
    cat: String,
    ph: String,
    s: String,
    ts: f64,
    pid: u64,
    tid: u64,
    args: EventArgs,
}

/// Complete ("X") trace event: a slice spanning a measured duration.
#[derive(Serialize)]
struct CompleteEvent {
    name: String,
    cat: String,
    ph: String,
    ts: f64,
    dur: f64,
    pid: u64,
    tid: u64,
    args: ClockArgs,
}

#[derive(Serialize)]
struct EventArgs {
    clock: u64,
    event: ProtoEvent,
}

#[derive(Serialize)]
struct ClockArgs {
    clock: u64,
}

/// Duration embedded in a completion event, if any: `(label, ns)`.
/// These become Chrome-trace `"X"` (complete) slices ending at the
/// record's timestamp.
fn embedded_duration(ev: &ProtoEvent) -> Option<(&'static str, u64)> {
    match ev {
        ProtoEvent::GateOpen { waited_ns, .. } if *waited_ns > 0 => Some(("gate-wait", *waited_ns)),
        ProtoEvent::ElAck { rtt_ns, .. } if *rtt_ns > 0 => Some(("el-ack-rtt", *rtt_ns)),
        ProtoEvent::CkptCommit { store_ns, .. } if *store_ns > 0 => Some(("ckpt-store", *store_ns)),
        ProtoEvent::ReplayDone { replay_ns, .. } if *replay_ns > 0 => Some(("replay", *replay_ns)),
        _ => None,
    }
}

/// Write the timeline in Chrome trace event format (load the file in
/// Perfetto / `chrome://tracing`). Every record becomes an instant
/// event on its rank's track; records carrying a measured duration
/// (gate open, EL ack, checkpoint commit, replay done) additionally
/// become complete (`"X"`) slices spanning that duration.
pub fn write_chrome_trace(path: &Path, timeline: &[FlightRecord]) -> std::io::Result<()> {
    let as_io =
        |e: serde_json::Error| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string());
    let mut events: Vec<String> = Vec::with_capacity(timeline.len());
    for rec in timeline {
        let ts_us = rec.ts_ns as f64 / 1000.0;
        events.push(
            serde_json::to_string(&InstantEvent {
                name: rec.event.kind().to_string(),
                cat: rec.event.phase().to_string(),
                ph: "i".to_string(),
                s: "t".to_string(),
                ts: ts_us,
                pid: rec.rank as u64,
                tid: 0,
                args: EventArgs {
                    clock: rec.clock,
                    event: rec.event.clone(),
                },
            })
            .map_err(as_io)?,
        );
        if let Some((label, ns)) = embedded_duration(&rec.event) {
            let dur_us = ns as f64 / 1000.0;
            events.push(
                serde_json::to_string(&CompleteEvent {
                    name: label.to_string(),
                    cat: rec.event.phase().to_string(),
                    ph: "X".to_string(),
                    ts: ts_us - dur_us,
                    dur: dur_us,
                    pid: rec.rank as u64,
                    tid: 1,
                    args: ClockArgs { clock: rec.clock },
                })
                .map_err(as_io)?,
            );
        }
    }
    let body = format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    );
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())
}

/// Validate a merged timeline against the event schema:
///
/// 1. every record survives a bincode serialize/deserialize round-trip
///    unchanged (the schema is self-consistent);
/// 2. per rank, timestamps are non-decreasing;
/// 3. per rank, logical clocks are non-decreasing *except* across a
///    recovery boundary (`restart1` / `recovery-begin` / `respawn`
///    records legitimately reset the clock to the restored checkpoint).
///
/// Returns a description of the first violation.
pub fn validate_records(timeline: &[FlightRecord]) -> Result<(), String> {
    use std::collections::HashMap;
    for rec in timeline {
        let enc = bincode::serialize(rec)
            .map_err(|e| format!("record failed to serialize: {e} ({rec:?})"))?;
        let dec: FlightRecord = bincode::deserialize(&enc)
            .map_err(|e| format!("record failed to deserialize: {e} ({rec:?})"))?;
        if dec != *rec {
            return Err(format!(
                "bincode round-trip changed record: {rec:?} -> {dec:?}"
            ));
        }
    }
    let mut last: HashMap<u32, (u64, u64)> = HashMap::new(); // rank -> (ts, clock)
    for rec in timeline {
        if let Some(&(ts, clock)) = last.get(&rec.rank) {
            if rec.ts_ns < ts {
                return Err(format!(
                    "rank {} timestamp went backwards: {} -> {} ({:?})",
                    rec.rank, ts, rec.ts_ns, rec.event
                ));
            }
            let recovery_boundary = matches!(
                rec.event,
                ProtoEvent::Restart1 { .. }
                    | ProtoEvent::RecoveryBegin { .. }
                    | ProtoEvent::RespawnScheduled { .. }
            );
            if rec.clock < clock && !recovery_boundary {
                return Err(format!(
                    "rank {} clock went backwards outside recovery: {} -> {} ({:?})",
                    rec.rank, clock, rec.clock, rec.event
                ));
            }
        }
        last.insert(rec.rank, (rec.ts_ns, rec.clock));
    }
    Ok(())
}

/// A [`RecordSink`](crate::monitor::RecordSink) that streams every
/// record to a JSONL file, flushing per record. Multi-process children
/// attach one so their timeline survives a `SIGKILL` — the ring buffer
/// dies with the process, the streamed file does not. The file carries
/// no header line; [`merge_dump_files`] supplies one when merging.
pub struct JsonlStreamSink {
    file: parking_lot::Mutex<std::fs::File>,
}

impl JsonlStreamSink {
    /// Create (truncate) `path` and stream records into it.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(JsonlStreamSink {
            file: parking_lot::Mutex::new(std::fs::File::create(path)?),
        })
    }
}

impl crate::monitor::RecordSink for JsonlStreamSink {
    fn observe(&self, rec: &FlightRecord) {
        let mut line = jsonl_line(rec);
        line.push('\n');
        let mut f = self.file.lock();
        // A failed write only costs observability; never the run.
        let _ = f.write_all(line.as_bytes());
        let _ = f.flush();
    }
}

/// Fan one record out to several sinks (e.g. the online invariant
/// monitor plus a [`JsonlStreamSink`]).
pub struct TeeSink(pub Vec<std::sync::Arc<dyn crate::monitor::RecordSink>>);

impl crate::monitor::RecordSink for TeeSink {
    fn observe(&self, rec: &FlightRecord) {
        for sink in &self.0 {
            sink.observe(rec);
        }
    }
}

/// Merge several JSONL dumps (with or without header lines) into one
/// timeline ordered by the hub comparator `(ts_ns, rank, clock,
/// kind_index)`, writing the result with a fresh header whose `dropped`
/// is the sum of the inputs'. Missing input files are skipped — a child
/// killed before it wrote anything contributes nothing, not an error.
pub fn merge_dump_files(inputs: &[PathBuf], output: &Path) -> std::io::Result<DumpHeader> {
    let mut all: Vec<FlightRecord> = Vec::new();
    let mut dropped = 0u64;
    for path in inputs {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let (header, records) = crate::jsonparse::parse_dump(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        dropped += header.map(|h| h.dropped).unwrap_or(0);
        all.extend(records);
    }
    all.sort_by_key(|r| (r.ts_ns, r.rank, r.clock, r.event.kind_index()));
    if let Some(parent) = output.parent() {
        std::fs::create_dir_all(parent)?;
    }
    write_jsonl(output, &all, dropped)?;
    Ok(DumpHeader {
        records: all.len() as u64,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rank: u32, clock: u64, ts_ns: u64, event: ProtoEvent) -> FlightRecord {
        FlightRecord {
            rank,
            clock,
            ts_ns,
            event,
        }
    }

    fn send(to: u32, clock: u64, bytes: u64) -> ProtoEvent {
        ProtoEvent::Send {
            to,
            clock,
            bytes,
            disposition: crate::event::SendDisposition::Wire,
        }
    }

    #[test]
    fn validate_accepts_clean_timeline() {
        let tl = vec![
            rec(0, 1, 10, send(1, 1, 8)),
            rec(
                1,
                1,
                20,
                ProtoEvent::Deliver {
                    from: 0,
                    sender_clock: 1,
                    receiver_clock: 1,
                    replay: false,
                },
            ),
            rec(0, 2, 30, send(1, 2, 8)),
        ];
        assert!(validate_records(&tl).is_ok());
        assert!(triage(&tl).is_none());
    }

    #[test]
    fn validate_allows_clock_reset_at_recovery() {
        let tl = vec![
            rec(2, 9, 10, send(0, 9, 8)),
            rec(2, 0, 20, ProtoEvent::Restart1 { rank: 2 }),
            rec(2, 4, 30, ProtoEvent::RecoveryBegin { restored_clock: 4 }),
            rec(
                2,
                5,
                40,
                ProtoEvent::ReplayStep {
                    from: 0,
                    sender_clock: 9,
                    receiver_clock: 5,
                },
            ),
        ];
        assert!(validate_records(&tl).is_ok());
    }

    #[test]
    fn validate_rejects_backwards_clock() {
        let tl = vec![rec(0, 5, 10, send(1, 5, 8)), rec(0, 3, 20, send(1, 3, 8))];
        let err = validate_records(&tl).unwrap_err();
        assert!(err.contains("clock went backwards"), "{err}");
    }

    #[test]
    fn validate_rejects_backwards_timestamp() {
        let tl = vec![rec(0, 1, 20, send(1, 1, 8)), rec(0, 2, 10, send(1, 2, 8))];
        assert!(validate_records(&tl).unwrap_err().contains("timestamp"));
    }

    #[test]
    fn triage_prefers_divergence_over_kill() {
        let tl = vec![
            rec(
                3,
                0,
                10,
                ProtoEvent::ChaosKill {
                    victim: 3,
                    rekill: false,
                },
            ),
            rec(
                crate::event::DISPATCHER_RANK,
                0,
                50,
                ProtoEvent::Divergence {
                    detail: "rank 1 sum mismatch".into(),
                },
            ),
        ];
        let t = triage(&tl).unwrap();
        assert_eq!(t.kind, "divergence");
        assert_eq!(t.phase, "divergence");
        assert!(t.to_string().contains("harness"));
        // Without the divergence, the kill is the first anomaly.
        let t2 = triage(&tl[..1]).unwrap();
        assert_eq!(t2.kind, "chaos-kill");
        assert_eq!(t2.rank, 3);
    }

    #[test]
    fn dump_files_render() {
        let dir = std::env::temp_dir().join("mvr-obs-dump-test");
        std::fs::create_dir_all(&dir).unwrap();
        let tl = vec![
            rec(
                0,
                1,
                1000,
                ProtoEvent::GateDefer {
                    to: 1,
                    clock: 1,
                    queued: 1,
                },
            ),
            rec(
                0,
                1,
                5000,
                ProtoEvent::GateOpen {
                    released: 1,
                    waited_ns: 4000,
                },
            ),
        ];
        let jsonl = dir.join("t.jsonl");
        let trace = dir.join("t.trace.json");
        write_jsonl(&jsonl, &tl, 3).unwrap();
        write_chrome_trace(&trace, &tl).unwrap();
        let body = std::fs::read_to_string(&jsonl).unwrap();
        assert_eq!(body.lines().count(), 3);
        let mut lines = body.lines();
        assert_eq!(
            lines.next().unwrap(),
            header_line(DumpHeader {
                records: 2,
                dropped: 3,
            })
        );
        assert_eq!(lines.next().unwrap(), jsonl_line(&tl[0]));
        let tr = std::fs::read_to_string(&trace).unwrap();
        assert!(tr.contains("traceEvents"));
        assert!(tr.contains("\"ph\":\"X\""));
        assert!(tr.contains("gate-wait"));
    }

    #[test]
    fn stream_sink_and_merge_roundtrip() {
        use crate::monitor::RecordSink;
        let dir = std::env::temp_dir().join("mvr-obs-merge-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a_path = dir.join("child-a.jsonl");
        let b_path = dir.join("child-b.jsonl");
        let a = JsonlStreamSink::create(&a_path).unwrap();
        let b = JsonlStreamSink::create(&b_path).unwrap();
        a.observe(&rec(0, 2, 300, send(1, 2, 8)));
        a.observe(&rec(0, 3, 900, ProtoEvent::Finish { clock: 3 }));
        b.observe(&rec(1, 1, 100, ProtoEvent::Restart1 { rank: 1 }));
        drop((a, b));
        let merged = dir.join("merged.jsonl");
        let header =
            merge_dump_files(&[a_path, b_path, dir.join("never-written.jsonl")], &merged).unwrap();
        assert_eq!(
            header,
            DumpHeader {
                records: 3,
                dropped: 0
            }
        );
        let (h, records) =
            crate::jsonparse::parse_dump(&std::fs::read_to_string(&merged).unwrap()).unwrap();
        assert_eq!(h, Some(header));
        let ts: Vec<u64> = records.iter().map(|r| r.ts_ns).collect();
        assert_eq!(ts, vec![100, 300, 900]);
    }

    #[test]
    fn summary_warns_loudly_on_drops() {
        let paths = DumpPaths {
            jsonl: PathBuf::from("/tmp/x.jsonl"),
            trace: PathBuf::from("/tmp/x.trace.json"),
            records: 10,
            dropped: 0,
            triage: None,
        };
        assert!(!paths.summary().contains("WARNING"));
        let truncated = DumpPaths {
            dropped: 7,
            ..paths
        };
        let s = truncated.summary();
        assert!(s.contains("WARNING"), "{s}");
        assert!(s.contains("7 record(s) lost"), "{s}");
    }
}
