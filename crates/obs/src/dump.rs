//! Crash-dump writers and validators: the merged JSONL timeline, the
//! Chrome-trace/Perfetto export, schema validation, and first-divergence
//! triage.
//!
//! The vendored `serde_json` is write-only (no parser), so validation
//! works structurally: every record is round-tripped through bincode
//! and re-rendered to JSON for byte comparison against the dump file,
//! and the per-rank logical clocks are checked for monotonicity
//! (allowing the resets that legitimately accompany recovery).

use crate::event::{FlightRecord, ProtoEvent};
use crate::skew::{RankOffset, RankTrack, SkewEstimate};
use serde::Serialize;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

/// Where a dump landed, plus enough metadata for triage notes.
#[derive(Clone, Debug)]
pub struct DumpPaths {
    /// The merged clock-ordered JSONL timeline.
    pub jsonl: PathBuf,
    /// The Chrome-trace/Perfetto export.
    pub trace: PathBuf,
    /// Records written.
    pub records: usize,
    /// Records lost to ring-buffer wraparound before the dump.
    pub dropped: u64,
    /// First-divergence triage, if the timeline contains an anomaly.
    pub triage: Option<Triage>,
}

impl DumpPaths {
    /// One-paragraph triage note naming the dump paths and, when
    /// present, the rank and protocol phase of the first divergence.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "flight recorder: {} records ({} lost to wraparound)\n  timeline: {}\n  perfetto: {}",
            self.records,
            self.dropped,
            self.jsonl.display(),
            self.trace.display(),
        );
        match &self.triage {
            Some(t) => s.push_str(&format!("\n  {t}")),
            None => s.push_str("\n  no anomaly recorded in timeline"),
        }
        if self.dropped > 0 {
            s.push_str(&format!(
                "\n  WARNING: {} record(s) lost to ring wraparound — the timeline \
                 is truncated; causal analysis may report spurious orphan spans. \
                 Raise the recorder ring capacity.",
                self.dropped
            ));
        }
        s
    }
}

/// The first anomaly in a merged timeline: which rank diverged first,
/// and in which protocol phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Triage {
    /// Rank of the first anomalous record ([`crate::event::DISPATCHER_RANK`]
    /// for harness-level records).
    pub rank: u32,
    /// Protocol phase of the anomaly (see [`ProtoEvent::phase`]).
    pub phase: &'static str,
    /// Event kind of the anomaly.
    pub kind: &'static str,
    /// Timestamp of the anomaly.
    pub ts_ns: u64,
    /// Rendered event for the triage note.
    pub detail: String,
}

impl std::fmt::Display for Triage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rank = if self.rank == crate::event::DISPATCHER_RANK {
            "harness".to_string()
        } else {
            format!("rank {}", self.rank)
        };
        write!(
            f,
            "first divergence: {} in phase `{}` ({}, t={}ns): {}",
            rank, self.phase, self.kind, self.ts_ns, self.detail
        )
    }
}

/// Find the first anomaly in a ts-ordered timeline. Explicit
/// [`ProtoEvent::Divergence`] records win over chaos kills: a kill is
/// an injected fault, a divergence is the protocol failing to mask it.
pub fn triage(timeline: &[FlightRecord]) -> Option<Triage> {
    let pick = |rec: &FlightRecord| Triage {
        rank: rec.rank,
        phase: rec.event.phase(),
        kind: rec.event.kind(),
        ts_ns: rec.ts_ns,
        detail: format!("{:?}", rec.event),
    };
    timeline
        .iter()
        .find(|r| matches!(r.event, ProtoEvent::Divergence { .. }))
        .or_else(|| timeline.iter().find(|r| r.event.is_anomaly()))
        .map(pick)
}

/// Render one record as its canonical JSONL line (no trailing newline).
pub fn jsonl_line(rec: &FlightRecord) -> String {
    serde_json::to_string(rec).expect("FlightRecord serializes to JSON")
}

/// Metadata carried by the first line of a JSONL dump, so a reader can
/// tell a complete timeline from a ring-truncated one without access to
/// the live hub.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct DumpHeader {
    /// Records in the dump body (lines after the header).
    pub records: u64,
    /// Records lost to ring wraparound before the dump was taken.
    /// Non-zero means the timeline is truncated and causal analysis
    /// can report spurious orphan spans.
    pub dropped: u64,
    /// Per-rank clock offsets the skew-corrected merge applied to the
    /// body's timestamps (see [`crate::estimate_skew`]). Empty for
    /// single-process dumps, skew-free merges, and merges corrected by
    /// a piecewise `track` (which supersedes constant offsets).
    pub offsets: Vec<RankOffset>,
    /// Per-rank piecewise-linear offset tracks the drift-aware merge
    /// applied (see [`crate::estimate_skew_drift`]). Empty unless the
    /// clocks drifted enough that constant offsets left inversions.
    pub track: Vec<RankTrack>,
    /// Ranks present in the body with zero causal edges: their offset
    /// is 0 by construction, not by evidence. Explicit so a reader can
    /// tell "measured clean" from "never measured".
    pub unconstrained: Vec<u32>,
}

#[derive(Serialize)]
struct HeaderLine {
    header: DumpHeader,
}

/// Render the dump-header line (no trailing newline):
/// `{"header":{"records":N,"dropped":N,"offsets":[...]}}`.
pub fn header_line(header: &DumpHeader) -> String {
    serde_json::to_string(&HeaderLine {
        header: header.clone(),
    })
    .expect("DumpHeader serializes to JSON")
}

/// Write the merged timeline as JSONL: one header line, then one record
/// per line.
pub fn write_jsonl(path: &Path, timeline: &[FlightRecord], dropped: u64) -> std::io::Result<()> {
    write_jsonl_with_offsets(path, timeline, dropped, Vec::new())
}

/// [`write_jsonl`] with applied skew offsets recorded in the header.
pub fn write_jsonl_with_offsets(
    path: &Path,
    timeline: &[FlightRecord],
    dropped: u64,
    offsets: Vec<RankOffset>,
) -> std::io::Result<()> {
    write_jsonl_with_skew(path, timeline, dropped, offsets, Vec::new(), Vec::new())
}

/// [`write_jsonl`] with the full skew story — constant offsets,
/// piecewise tracks, and unconstrained ranks — recorded in the header.
pub fn write_jsonl_with_skew(
    path: &Path,
    timeline: &[FlightRecord],
    dropped: u64,
    offsets: Vec<RankOffset>,
    track: Vec<RankTrack>,
    unconstrained: Vec<u32>,
) -> std::io::Result<()> {
    let mut out = header_line(&DumpHeader {
        records: timeline.len() as u64,
        dropped,
        offsets,
        track,
        unconstrained,
    });
    out.push('\n');
    for rec in timeline {
        out.push_str(&jsonl_line(rec));
        out.push('\n');
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// Instant ("i") trace event: one per flight record, on the rank's
/// track. Serialized individually and joined by hand because the
/// vendored `serde_json` has no heterogeneous `Value` serializer.
#[derive(Serialize)]
struct InstantEvent {
    name: String,
    cat: String,
    ph: String,
    s: String,
    ts: f64,
    pid: u64,
    tid: u64,
    args: EventArgs,
}

/// Complete ("X") trace event: a slice spanning a measured duration.
#[derive(Serialize)]
struct CompleteEvent {
    name: String,
    cat: String,
    ph: String,
    ts: f64,
    dur: f64,
    pid: u64,
    tid: u64,
    args: ClockArgs,
}

#[derive(Serialize)]
struct EventArgs {
    clock: u64,
    event: ProtoEvent,
}

#[derive(Serialize)]
struct ClockArgs {
    clock: u64,
}

/// Duration embedded in a completion event, if any: `(label, ns)`.
/// These become Chrome-trace `"X"` (complete) slices ending at the
/// record's timestamp.
fn embedded_duration(ev: &ProtoEvent) -> Option<(&'static str, u64)> {
    match ev {
        ProtoEvent::GateOpen { waited_ns, .. } if *waited_ns > 0 => Some(("gate-wait", *waited_ns)),
        ProtoEvent::ElAck { rtt_ns, .. } if *rtt_ns > 0 => Some(("el-ack-rtt", *rtt_ns)),
        ProtoEvent::CkptCommit { store_ns, .. } if *store_ns > 0 => Some(("ckpt-store", *store_ns)),
        ProtoEvent::ReplayDone { replay_ns, .. } if *replay_ns > 0 => Some(("replay", *replay_ns)),
        _ => None,
    }
}

/// Write the timeline in Chrome trace event format (load the file in
/// Perfetto / `chrome://tracing`). Every record becomes an instant
/// event on its rank's track; records carrying a measured duration
/// (gate open, EL ack, checkpoint commit, replay done) additionally
/// become complete (`"X"`) slices spanning that duration.
pub fn write_chrome_trace(path: &Path, timeline: &[FlightRecord]) -> std::io::Result<()> {
    let as_io =
        |e: serde_json::Error| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string());
    let mut events: Vec<String> = Vec::with_capacity(timeline.len());
    for rec in timeline {
        let ts_us = rec.ts_ns as f64 / 1000.0;
        events.push(
            serde_json::to_string(&InstantEvent {
                name: rec.event.kind().to_string(),
                cat: rec.event.phase().to_string(),
                ph: "i".to_string(),
                s: "t".to_string(),
                ts: ts_us,
                pid: rec.rank as u64,
                tid: 0,
                args: EventArgs {
                    clock: rec.clock,
                    event: rec.event.clone(),
                },
            })
            .map_err(as_io)?,
        );
        if let Some((label, ns)) = embedded_duration(&rec.event) {
            let dur_us = ns as f64 / 1000.0;
            events.push(
                serde_json::to_string(&CompleteEvent {
                    name: label.to_string(),
                    cat: rec.event.phase().to_string(),
                    ph: "X".to_string(),
                    ts: ts_us - dur_us,
                    dur: dur_us,
                    pid: rec.rank as u64,
                    tid: 1,
                    args: ClockArgs { clock: rec.clock },
                })
                .map_err(as_io)?,
            );
        }
    }
    let body = format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    );
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())
}

/// Validate a merged timeline against the event schema:
///
/// 1. every record survives a bincode serialize/deserialize round-trip
///    unchanged (the schema is self-consistent);
/// 2. per rank, timestamps are non-decreasing;
/// 3. per rank, logical clocks are non-decreasing *except* across a
///    recovery boundary (`restart1` / `recovery-begin` / `respawn`
///    records legitimately reset the clock to the restored checkpoint).
///
/// Returns a description of the first violation.
pub fn validate_records(timeline: &[FlightRecord]) -> Result<(), String> {
    use std::collections::HashMap;
    for rec in timeline {
        let enc = bincode::serialize(rec)
            .map_err(|e| format!("record failed to serialize: {e} ({rec:?})"))?;
        let dec: FlightRecord = bincode::deserialize(&enc)
            .map_err(|e| format!("record failed to deserialize: {e} ({rec:?})"))?;
        if dec != *rec {
            return Err(format!(
                "bincode round-trip changed record: {rec:?} -> {dec:?}"
            ));
        }
    }
    let mut last: HashMap<u32, (u64, u64)> = HashMap::new(); // rank -> (ts, clock)
    for rec in timeline {
        if let Some(&(ts, clock)) = last.get(&rec.rank) {
            if rec.ts_ns < ts {
                return Err(format!(
                    "rank {} timestamp went backwards: {} -> {} ({:?})",
                    rec.rank, ts, rec.ts_ns, rec.event
                ));
            }
            let recovery_boundary = matches!(
                rec.event,
                ProtoEvent::Restart1 { .. }
                    | ProtoEvent::RecoveryBegin { .. }
                    | ProtoEvent::RespawnScheduled { .. }
            );
            if rec.clock < clock && !recovery_boundary {
                return Err(format!(
                    "rank {} clock went backwards outside recovery: {} -> {} ({:?})",
                    rec.rank, clock, rec.clock, rec.event
                ));
            }
        }
        last.insert(rec.rank, (rec.ts_ns, rec.clock));
    }
    Ok(())
}

/// Rotation thresholds for a [`JsonlStreamSink`]. The sink starts a new
/// segment file whenever the active segment exceeds *either* limit
/// (0 = that limit unenforced). Default is no rotation — the historical
/// single-file behavior, and the only mode on the hot benchmark path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RotateConfig {
    /// Start a new segment after this many records (0 = unlimited).
    pub max_records: u64,
    /// Start a new segment once this many bytes were written
    /// (0 = unlimited).
    pub max_bytes: u64,
}

impl RotateConfig {
    /// `true` when either threshold is set.
    pub fn is_enabled(&self) -> bool {
        self.max_records > 0 || self.max_bytes > 0
    }
}

/// One completed or active segment in a rotated stream's index.
#[derive(Clone, Debug, Serialize)]
struct SegmentIndexEntry {
    path: String,
    records: u64,
    bytes: u64,
}

#[derive(Serialize)]
struct SegmentIndexFile {
    base: String,
    active: String,
    segments: Vec<SegmentIndexEntry>,
}

struct StreamState {
    file: std::fs::File,
    /// Lines rendered but not yet handed to `write(2)`. Only non-empty
    /// in buffered mode (`flush_every > 1`).
    buf: String,
    pending: u32,
    /// Rotation bookkeeping. `base` is the segment-0 path; segment N>0
    /// lives at `{stem}.segN.jsonl` next to it.
    base: PathBuf,
    rotate: RotateConfig,
    seg: u32,
    seg_records: u64,
    seg_bytes: u64,
    closed: Vec<SegmentIndexEntry>,
}

impl StreamState {
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        // A failed write only costs observability; never the run.
        let _ = self.file.write_all(self.buf.as_bytes());
        let _ = self.file.flush();
        self.buf.clear();
        self.pending = 0;
    }

    fn segment_path(&self, seg: u32) -> PathBuf {
        if seg == 0 {
            return self.base.clone();
        }
        let stem = self
            .base
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("stream");
        self.base.with_file_name(format!("{stem}.seg{seg}.jsonl"))
    }

    /// Close the active segment and open the next one, rewriting the
    /// segment index so offline tooling can enumerate the set without
    /// globbing. A failed rotation keeps streaming into the old file —
    /// observability degrades, the run does not.
    fn rotate_segment(&mut self) {
        self.flush();
        self.closed.push(SegmentIndexEntry {
            path: self
                .segment_path(self.seg)
                .file_name()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string(),
            records: self.seg_records,
            bytes: self.seg_bytes,
        });
        let next = self.segment_path(self.seg + 1);
        match std::fs::File::create(&next) {
            Ok(f) => {
                self.file = f;
                self.seg += 1;
                self.seg_records = 0;
                self.seg_bytes = 0;
            }
            Err(_) => {
                self.closed.pop();
                return;
            }
        }
        let index = SegmentIndexFile {
            base: self
                .base
                .file_name()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string(),
            active: self
                .segment_path(self.seg)
                .file_name()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string(),
            segments: self.closed.clone(),
        };
        if let Ok(body) = serde_json::to_string(&index) {
            let _ = std::fs::write(segment_index_path(&self.base), body);
        }
    }
}

/// Where a rotated [`JsonlStreamSink`]'s segment index lives:
/// `{stem}.segments.json` next to the base file. Not a `.jsonl`, so
/// merge-input discovery never mistakes it for a timeline.
pub fn segment_index_path(base: &Path) -> PathBuf {
    let stem = base
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("stream");
    base.with_file_name(format!("{stem}.segments.json"))
}

/// A [`RecordSink`](crate::monitor::RecordSink) that streams every
/// record to a JSONL file. Multi-process children attach one so their
/// timeline survives a `SIGKILL` — the ring buffer dies with the
/// process, the streamed file does not. The file carries no header
/// line; [`merge_dump_files`] supplies one when merging.
///
/// The default cadence writes each record out immediately (one
/// `write(2)` per record — what makes the stream SIGKILL-durable). A
/// buffered cadence (`flush_every > 1`) batches rendered lines and
/// writes every N records, on any [`ProtoEvent::Finish`], on an
/// explicit [`flush`](crate::monitor::RecordSink::flush), and on drop —
/// trading up to N−1 records of SIGKILL durability for N× fewer
/// syscalls on the recording thread.
/// With rotation enabled ([`with_rotation`](Self::with_rotation)), the
/// stream is cut into bounded segment files — `base.jsonl`,
/// `{stem}.seg1.jsonl`, `{stem}.seg2.jsonl`, … — plus a
/// `{stem}.segments.json` index, so a week-long soak never holds (or
/// re-reads) one gigabyte file. Segment 0 keeps the base name, so
/// consumers of the unrotated layout keep working, and every segment
/// keeps the `.jsonl` extension, so [`merge_dump_files`] input
/// discovery picks rotated segments up unchanged.
pub struct JsonlStreamSink {
    flush_every: u32,
    state: parking_lot::Mutex<StreamState>,
}

impl JsonlStreamSink {
    /// Create (truncate) `path` and stream records into it, flushing
    /// per record (the durable default).
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Self::with_flush_every(path, 1)
    }

    /// Create (truncate) `path`, writing out every `flush_every`
    /// records (0 is treated as 1).
    pub fn with_flush_every(path: &Path, flush_every: u32) -> std::io::Result<Self> {
        Self::with_rotation(path, flush_every, RotateConfig::default())
    }

    /// Create (truncate) `path`, writing out every `flush_every`
    /// records and rotating to a new segment file whenever the active
    /// one exceeds a [`RotateConfig`] threshold.
    pub fn with_rotation(
        path: &Path,
        flush_every: u32,
        rotate: RotateConfig,
    ) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(JsonlStreamSink {
            flush_every: flush_every.max(1),
            state: parking_lot::Mutex::new(StreamState {
                file: std::fs::File::create(path)?,
                buf: String::new(),
                pending: 0,
                base: path.to_path_buf(),
                rotate,
                seg: 0,
                seg_records: 0,
                seg_bytes: 0,
                closed: Vec::new(),
            }),
        })
    }

    /// Segment files opened so far (1 while unrotated).
    pub fn segments(&self) -> u32 {
        self.state.lock().seg + 1
    }
}

impl crate::monitor::RecordSink for JsonlStreamSink {
    fn observe(&self, rec: &FlightRecord) {
        let line = jsonl_line(rec);
        let mut st = self.state.lock();
        st.buf.push_str(&line);
        st.buf.push('\n');
        st.pending += 1;
        st.seg_records += 1;
        st.seg_bytes += line.len() as u64 + 1;
        if st.pending >= self.flush_every || matches!(rec.event, ProtoEvent::Finish { .. }) {
            st.flush();
        }
        let r = st.rotate;
        if (r.max_records > 0 && st.seg_records >= r.max_records)
            || (r.max_bytes > 0 && st.seg_bytes >= r.max_bytes)
        {
            st.rotate_segment();
        }
    }

    fn flush(&self) {
        self.state.lock().flush();
    }
}

impl Drop for JsonlStreamSink {
    fn drop(&mut self) {
        self.state.lock().flush();
    }
}

/// Fan one record out to several sinks (e.g. the online invariant
/// monitor plus a [`JsonlStreamSink`]).
pub struct TeeSink(pub Vec<std::sync::Arc<dyn crate::monitor::RecordSink>>);

impl crate::monitor::RecordSink for TeeSink {
    fn observe(&self, rec: &FlightRecord) {
        for sink in &self.0 {
            sink.observe(rec);
        }
    }

    fn flush(&self) {
        for sink in &self.0 {
            sink.flush();
        }
    }
}

/// What [`merge_dump_files`] produced: the written artifacts, the
/// header counters, the skew estimate it applied, and first-divergence
/// triage over the corrected timeline.
#[derive(Clone, Debug)]
pub struct MergeSummary {
    /// The merged, skew-corrected JSONL timeline.
    pub jsonl: PathBuf,
    /// The Chrome-trace/Perfetto export of the merged timeline.
    pub trace: PathBuf,
    /// Records in the merged dump.
    pub records: u64,
    /// Summed drop count across the inputs.
    pub dropped: u64,
    /// The clock-skew estimate (offsets already applied to the output).
    pub skew: SkewEstimate,
    /// First-divergence triage over the corrected timeline.
    pub triage: Option<Triage>,
}

impl MergeSummary {
    /// Multi-line human summary for supervisor output.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "merged dump: {} records ({} dropped)\n  timeline: {}\n  perfetto: {}\n  {}",
            self.records,
            self.dropped,
            self.jsonl.display(),
            self.trace.display(),
            self.skew.summary(),
        );
        if let Some(t) = &self.triage {
            s.push_str(&format!("\n  {t}"));
        }
        s
    }
}

/// Merge several JSONL dumps (with or without header lines) into one
/// timeline ordered by the hub comparator `(ts_ns, rank, clock,
/// kind_index)`. Inputs are parsed line-wise through a [`BufRead`], so
/// a long soak run's dumps are never all held as raw text at once.
/// Missing input files are skipped — a child killed before it wrote
/// anything contributes nothing, not an error.
///
/// Rotated stream segments are just more inputs: every `.jsonl`
/// segment of every process merges through the same path, headerless
/// files contributing only records.
///
/// Before writing, per-rank clock corrections are estimated from the
/// timeline's causal edges ([`crate::estimate_skew_drift`]) and
/// applied, so cross-process skew — constant *or* drifting — cannot
/// render a delivery before its send; the applied offsets or piecewise
/// tracks land in the output header, along with ranks whose offset is
/// unconstrained by any causal edge. Residual inversions (infeasible
/// clock model) are reported loudly in the summary, never hidden. A
/// Perfetto export of the corrected timeline is written next to the
/// JSONL.
pub fn merge_dump_files(inputs: &[PathBuf], output: &Path) -> std::io::Result<MergeSummary> {
    let mut all: Vec<FlightRecord> = Vec::new();
    let mut dropped = 0u64;
    for path in inputs {
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let invalid = |e: String| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        };
        for (i, line) in std::io::BufReader::new(file).lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if i == 0 {
                if let Some(h) = crate::jsonparse::parse_header_line(line) {
                    dropped += h.dropped;
                    continue;
                }
            }
            all.push(
                crate::jsonparse::parse_record_line(line)
                    .map_err(|e| invalid(format!("line {}: {e}", i + 1)))?,
            );
        }
    }
    let skew = crate::skew::estimate_skew_drift(&all);
    if skew.track.is_empty() {
        crate::skew::apply_offsets(&mut all, &skew.offsets);
    } else {
        crate::skew::apply_track(&mut all, &skew.track);
    }
    all.sort_by_key(|r| (r.ts_ns, r.rank, r.clock, r.event.kind_index()));
    if let Some(parent) = output.parent() {
        std::fs::create_dir_all(parent)?;
    }
    write_jsonl_with_skew(
        output,
        &all,
        dropped,
        skew.header_offsets(),
        skew.header_track(),
        skew.unconstrained.clone(),
    )?;
    let trace = output.with_extension("trace.json");
    write_chrome_trace(&trace, &all)?;
    Ok(MergeSummary {
        jsonl: output.to_path_buf(),
        trace,
        records: all.len() as u64,
        dropped,
        skew,
        triage: triage(&all),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rank: u32, clock: u64, ts_ns: u64, event: ProtoEvent) -> FlightRecord {
        FlightRecord {
            rank,
            clock,
            ts_ns,
            event,
        }
    }

    fn send(to: u32, clock: u64, bytes: u64) -> ProtoEvent {
        ProtoEvent::Send {
            to,
            clock,
            bytes,
            disposition: crate::event::SendDisposition::Wire,
        }
    }

    #[test]
    fn validate_accepts_clean_timeline() {
        let tl = vec![
            rec(0, 1, 10, send(1, 1, 8)),
            rec(
                1,
                1,
                20,
                ProtoEvent::Deliver {
                    from: 0,
                    sender_clock: 1,
                    receiver_clock: 1,
                    replay: false,
                },
            ),
            rec(0, 2, 30, send(1, 2, 8)),
        ];
        assert!(validate_records(&tl).is_ok());
        assert!(triage(&tl).is_none());
    }

    #[test]
    fn validate_allows_clock_reset_at_recovery() {
        let tl = vec![
            rec(2, 9, 10, send(0, 9, 8)),
            rec(2, 0, 20, ProtoEvent::Restart1 { rank: 2 }),
            rec(2, 4, 30, ProtoEvent::RecoveryBegin { restored_clock: 4 }),
            rec(
                2,
                5,
                40,
                ProtoEvent::ReplayStep {
                    from: 0,
                    sender_clock: 9,
                    receiver_clock: 5,
                },
            ),
        ];
        assert!(validate_records(&tl).is_ok());
    }

    #[test]
    fn validate_rejects_backwards_clock() {
        let tl = vec![rec(0, 5, 10, send(1, 5, 8)), rec(0, 3, 20, send(1, 3, 8))];
        let err = validate_records(&tl).unwrap_err();
        assert!(err.contains("clock went backwards"), "{err}");
    }

    #[test]
    fn validate_rejects_backwards_timestamp() {
        let tl = vec![rec(0, 1, 20, send(1, 1, 8)), rec(0, 2, 10, send(1, 2, 8))];
        assert!(validate_records(&tl).unwrap_err().contains("timestamp"));
    }

    #[test]
    fn triage_prefers_divergence_over_kill() {
        let tl = vec![
            rec(
                3,
                0,
                10,
                ProtoEvent::ChaosKill {
                    victim: 3,
                    rekill: false,
                },
            ),
            rec(
                crate::event::DISPATCHER_RANK,
                0,
                50,
                ProtoEvent::Divergence {
                    detail: "rank 1 sum mismatch".into(),
                },
            ),
        ];
        let t = triage(&tl).unwrap();
        assert_eq!(t.kind, "divergence");
        assert_eq!(t.phase, "divergence");
        assert!(t.to_string().contains("harness"));
        // Without the divergence, the kill is the first anomaly.
        let t2 = triage(&tl[..1]).unwrap();
        assert_eq!(t2.kind, "chaos-kill");
        assert_eq!(t2.rank, 3);
    }

    #[test]
    fn dump_files_render() {
        let dir = std::env::temp_dir().join("mvr-obs-dump-test");
        std::fs::create_dir_all(&dir).unwrap();
        let tl = vec![
            rec(
                0,
                1,
                1000,
                ProtoEvent::GateDefer {
                    to: 1,
                    clock: 1,
                    queued: 1,
                },
            ),
            rec(
                0,
                1,
                5000,
                ProtoEvent::GateOpen {
                    released: 1,
                    waited_ns: 4000,
                },
            ),
        ];
        let jsonl = dir.join("t.jsonl");
        let trace = dir.join("t.trace.json");
        write_jsonl(&jsonl, &tl, 3).unwrap();
        write_chrome_trace(&trace, &tl).unwrap();
        let body = std::fs::read_to_string(&jsonl).unwrap();
        assert_eq!(body.lines().count(), 3);
        let mut lines = body.lines();
        assert_eq!(
            lines.next().unwrap(),
            header_line(&DumpHeader {
                records: 2,
                dropped: 3,
                offsets: Vec::new(),
                track: Vec::new(),
                unconstrained: Vec::new(),
            })
        );
        assert_eq!(lines.next().unwrap(), jsonl_line(&tl[0]));
        let tr = std::fs::read_to_string(&trace).unwrap();
        assert!(tr.contains("traceEvents"));
        assert!(tr.contains("\"ph\":\"X\""));
        assert!(tr.contains("gate-wait"));
    }

    #[test]
    fn stream_sink_and_merge_roundtrip() {
        use crate::monitor::RecordSink;
        let dir = std::env::temp_dir().join("mvr-obs-merge-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a_path = dir.join("child-a.jsonl");
        let b_path = dir.join("child-b.jsonl");
        let a = JsonlStreamSink::create(&a_path).unwrap();
        let b = JsonlStreamSink::create(&b_path).unwrap();
        a.observe(&rec(0, 2, 300, send(1, 2, 8)));
        a.observe(&rec(0, 3, 900, ProtoEvent::Finish { clock: 3 }));
        b.observe(&rec(1, 1, 100, ProtoEvent::Restart1 { rank: 1 }));
        drop((a, b));
        let merged = dir.join("merged.jsonl");
        let summary =
            merge_dump_files(&[a_path, b_path, dir.join("never-written.jsonl")], &merged).unwrap();
        assert_eq!(summary.records, 3);
        assert_eq!(summary.dropped, 0);
        assert!(!summary.skew.is_correction());
        assert!(summary.trace.exists(), "{:?}", summary.trace);
        let (h, records) =
            crate::jsonparse::parse_dump(&std::fs::read_to_string(&merged).unwrap()).unwrap();
        assert_eq!(
            h,
            Some(DumpHeader {
                records: 3,
                dropped: 0,
                offsets: Vec::new(),
                track: Vec::new(),
                // The send was never delivered and rank 1 only restarted:
                // neither rank's clock is tied to the other by evidence,
                // and the header says so explicitly.
                unconstrained: vec![0, 1],
            })
        );
        let ts: Vec<u64> = records.iter().map(|r| r.ts_ns).collect();
        assert_eq!(ts, vec![100, 300, 900]);
        assert!(summary.summary().contains("merged dump: 3 records"));
    }

    #[test]
    fn merge_corrects_skewed_inputs_and_reports_offsets() {
        use crate::monitor::RecordSink;
        let dir = std::env::temp_dir().join("mvr-obs-merge-skew-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a_path = dir.join("skew-a.jsonl");
        let b_path = dir.join("skew-b.jsonl");
        let a = JsonlStreamSink::create(&a_path).unwrap();
        let b = JsonlStreamSink::create(&b_path).unwrap();
        // Rank 0 sends at t=6ms; rank 1 (clock 5ms behind) delivers at
        // an apparent t=2ms — an inversion the merge must repair.
        a.observe(&rec(0, 1, 6_000_000, send(1, 1, 8)));
        b.observe(&rec(
            1,
            1,
            2_000_000,
            ProtoEvent::Deliver {
                from: 0,
                sender_clock: 1,
                receiver_clock: 1,
                replay: false,
            },
        ));
        drop((a, b));
        let merged = dir.join("merged.jsonl");
        let summary = merge_dump_files(&[a_path, b_path], &merged).unwrap();
        assert_eq!(summary.skew.inversions_before, 1);
        assert_eq!(summary.skew.inversions_after, 0);
        assert_eq!(summary.skew.offsets[&1], 4_000_000);
        let body = std::fs::read_to_string(&merged).unwrap();
        let (h, records) = crate::jsonparse::parse_dump(&body).unwrap();
        let h = h.expect("header");
        assert_eq!(
            h.offsets,
            vec![crate::skew::RankOffset {
                rank: 1,
                offset_ns: 4_000_000,
            }]
        );
        // Corrected order: send strictly precedes deliver.
        assert_eq!(records[0].rank, 0);
        assert_eq!(records[1].ts_ns, 6_000_000);
        assert_eq!(crate::skew::count_inversions(&records), 0);
    }

    #[test]
    fn buffered_stream_sink_flushes_on_cadence_finish_and_drop() {
        use crate::monitor::RecordSink;
        let dir = std::env::temp_dir().join("mvr-obs-buffered-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("buffered.jsonl");
        let sink = JsonlStreamSink::with_flush_every(&path, 3).unwrap();
        sink.observe(&rec(0, 1, 10, send(1, 1, 8)));
        sink.observe(&rec(0, 2, 20, send(1, 2, 8)));
        // Below the cadence: nothing written out yet.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        sink.observe(&rec(0, 3, 30, send(1, 3, 8)));
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 3);
        // A Finish flushes early regardless of cadence.
        sink.observe(&rec(0, 4, 40, ProtoEvent::Finish { clock: 4 }));
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 4);
        // Explicit flush and drop cover partial batches.
        sink.observe(&rec(0, 5, 50, send(1, 5, 8)));
        sink.flush();
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 5);
        sink.observe(&rec(0, 6, 60, send(1, 6, 8)));
        drop(sink);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 6);
        let (_, records) = crate::jsonparse::parse_dump(&body).unwrap();
        assert_eq!(records.len(), 6);
    }

    #[test]
    fn rotation_cuts_segments_and_merge_consumes_them_all() {
        use crate::monitor::RecordSink;
        let dir = std::env::temp_dir().join("mvr-obs-rotate-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("cn0-i0.jsonl");
        let sink = JsonlStreamSink::with_rotation(
            &base,
            1,
            RotateConfig {
                max_records: 4,
                max_bytes: 0,
            },
        )
        .unwrap();
        for i in 0..10u64 {
            sink.observe(&rec(0, i + 1, (i + 1) * 100, send(1, i + 1, 8)));
        }
        assert_eq!(sink.segments(), 3); // 4 + 4 + 2 records
        drop(sink);
        // Segment 0 keeps the base name; later segments sit next to it.
        assert!(base.exists());
        let seg1 = dir.join("cn0-i0.seg1.jsonl");
        let seg2 = dir.join("cn0-i0.seg2.jsonl");
        assert!(seg1.exists() && seg2.exists());
        assert_eq!(
            std::fs::read_to_string(&base).unwrap().lines().count(),
            4,
            "segment 0 capped at max_records"
        );
        // The index names the closed segments and the active one.
        let idx = std::fs::read_to_string(segment_index_path(&base)).unwrap();
        assert!(idx.contains("\"cn0-i0.jsonl\""), "{idx}");
        assert!(idx.contains("\"cn0-i0.seg1.jsonl\""), "{idx}");
        assert!(idx.contains("\"records\":4"), "{idx}");
        assert!(idx.contains("\"active\":\"cn0-i0.seg2.jsonl\""), "{idx}");
        // Merging the segments restores the full, ordered timeline.
        let merged = dir.join("merged.jsonl");
        let summary = merge_dump_files(&[base, seg1, seg2], &merged).unwrap();
        assert_eq!(summary.records, 10);
        let (_, records) =
            crate::jsonparse::parse_dump(&std::fs::read_to_string(&merged).unwrap()).unwrap();
        let clocks: Vec<u64> = records.iter().map(|r| r.clock).collect();
        assert_eq!(clocks, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn rotation_by_bytes_rotates_once_threshold_is_crossed() {
        use crate::monitor::RecordSink;
        let dir = std::env::temp_dir().join("mvr-obs-rotate-bytes-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("s.jsonl");
        let sink = JsonlStreamSink::with_rotation(
            &base,
            1,
            RotateConfig {
                max_records: 0,
                max_bytes: 200,
            },
        )
        .unwrap();
        let line_len = jsonl_line(&rec(0, 1, 100, send(1, 1, 8))).len() as u64 + 1;
        let per_seg = 200u64.div_ceil(line_len).max(1);
        for i in 0..3 * per_seg {
            sink.observe(&rec(0, i + 1, (i + 1) * 10, send(1, i + 1, 8)));
        }
        assert!(sink.segments() >= 3, "segments: {}", sink.segments());
        drop(sink);
        let seg1 = dir.join("s.seg1.jsonl");
        assert!(seg1.exists());
        assert!(
            std::fs::metadata(&base).unwrap().len() >= 200,
            "rotates after crossing the byte threshold, not before"
        );
    }

    #[test]
    fn merge_applies_piecewise_track_for_drifting_inputs() {
        use crate::monitor::RecordSink;
        let dir = std::env::temp_dir().join("mvr-obs-merge-drift-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a_path = dir.join("drift-a.jsonl");
        let b_path = dir.join("drift-b.jsonl");
        let a = JsonlStreamSink::create(&a_path).unwrap();
        let b = JsonlStreamSink::create(&b_path).unwrap();
        // Rank 1's clock runs 2% slow; bidirectional traffic every 1ms
        // over 150ms. No constant offset explains both directions.
        let slow = |t: u64| t - t / 50;
        let delta = 100_000u64;
        for i in 0..150u64 {
            let t = 1_000_000 + i * 1_000_000;
            a.observe(&rec(0, 2 * i + 1, t, send(1, 2 * i + 1, 8)));
            b.observe(&rec(
                1,
                2 * i + 1,
                slow(t + delta),
                ProtoEvent::Deliver {
                    from: 0,
                    sender_clock: 2 * i + 1,
                    receiver_clock: 2 * i + 1,
                    replay: false,
                },
            ));
            let t2 = t + 500_000;
            b.observe(&rec(1, 2 * i + 2, slow(t2), send(0, 2 * i + 2, 8)));
            a.observe(&rec(
                0,
                2 * i + 2,
                t2 + delta,
                ProtoEvent::Deliver {
                    from: 1,
                    sender_clock: 2 * i + 2,
                    receiver_clock: 2 * i + 2,
                    replay: false,
                },
            ));
        }
        drop((a, b));
        let merged = dir.join("merged.jsonl");
        let summary = merge_dump_files(&[a_path, b_path], &merged).unwrap();
        assert!(summary.skew.inversions_before >= 1);
        assert_eq!(summary.skew.inversions_after, 0, "{}", summary.summary());
        assert!(!summary.skew.track.is_empty());
        let body = std::fs::read_to_string(&merged).unwrap();
        let (h, records) = crate::jsonparse::parse_dump(&body).unwrap();
        let h = h.expect("header");
        // The track (not constant offsets) is what the header records.
        assert!(h.offsets.is_empty());
        assert!(h.track.iter().any(|t| t.rank == 1 && t.anchors.len() >= 3));
        assert_eq!(crate::skew::count_inversions(&records), 0);
        assert!(validate_records(&records).is_ok());
        assert!(summary.summary().contains("drift-corrected"));
    }

    #[test]
    fn summary_warns_loudly_on_drops() {
        let paths = DumpPaths {
            jsonl: PathBuf::from("/tmp/x.jsonl"),
            trace: PathBuf::from("/tmp/x.trace.json"),
            records: 10,
            dropped: 0,
            triage: None,
        };
        assert!(!paths.summary().contains("WARNING"));
        let truncated = DumpPaths {
            dropped: 7,
            ..paths
        };
        let s = truncated.summary();
        assert!(s.contains("WARNING"), "{s}");
        assert!(s.contains("7 record(s) lost"), "{s}");
    }
}
