//! Windowed metrics for long-horizon runs.
//!
//! Cumulative histograms answer "what happened since boot", which is
//! the wrong question once a deployment has been up for hours: a
//! latency regression that started five minutes ago is invisible under
//! millions of healthy samples. This module turns the cheap
//! snapshot/delta algebra of [`LogHistogram`](crate::LogHistogram)
//! ([`ProtocolTimings::diff`]) into a small in-memory ring of
//! fixed-length time windows, each holding the protocol-interval
//! histograms for *just that window*. Health endpoints publish the ring
//! alongside the cumulative families, so a scrape sees both the
//! lifetime percentiles and the last few windows' worth.
//!
//! The ring never touches the hot path: callers feed it the cumulative
//! [`ProtocolTimings`] they already maintain, at whatever cadence they
//! already poll (telemetry ticks, health refreshes). Closing a window
//! costs one `diff` (a fixed-size bucket subtraction) and one clone of
//! the cumulative snapshot as the next baseline.

use crate::timings::ProtocolTimings;
use std::collections::VecDeque;

/// Default window length: 5 seconds.
pub const DEFAULT_WINDOW_NS: u64 = 5_000_000_000;
/// Default number of closed windows retained in the ring.
pub const DEFAULT_WINDOW_RING: usize = 8;

/// One closed (or in-progress) metrics window: the protocol-interval
/// histograms restricted to `[start_ns, end_ns)`.
#[derive(Clone, Debug)]
pub struct MetricsWindow {
    /// Window start, nanoseconds since the deployment epoch.
    pub start_ns: u64,
    /// Window end (exclusive). For the in-progress window this is the
    /// observation time, not a boundary.
    pub end_ns: u64,
    /// Interval histograms for samples recorded inside the window.
    pub timings: ProtocolTimings,
}

impl MetricsWindow {
    /// Window length in nanoseconds.
    pub fn span_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A ring of fixed-length metrics windows over a cumulative
/// [`ProtocolTimings`], fed by periodic observations.
///
/// Attribution is bounded by the feed cadence: samples land in the
/// window that was current when [`WindowRing::advance`] saw them in
/// the cumulative totals. When several boundaries pass between two
/// calls (a stall), the whole backlog is attributed to the first
/// window crossed — the one that was current when the samples could
/// last have been observed — and the skipped windows close empty.
#[derive(Clone, Debug)]
pub struct WindowRing {
    window_ns: u64,
    cap: usize,
    baseline: ProtocolTimings,
    current_start_ns: u64,
    closed: VecDeque<MetricsWindow>,
}

impl WindowRing {
    /// A ring of `cap` retained windows, each `window_ns` long, with
    /// the first window starting at `start_ns`.
    pub fn new(start_ns: u64, window_ns: u64, cap: usize) -> Self {
        WindowRing {
            window_ns: window_ns.max(1),
            cap: cap.max(1),
            baseline: ProtocolTimings::new(),
            current_start_ns: start_ns,
            closed: VecDeque::new(),
        }
    }

    /// A ring with the default 5 s windows and 8-deep retention.
    pub fn with_defaults(start_ns: u64) -> Self {
        WindowRing::new(start_ns, DEFAULT_WINDOW_NS, DEFAULT_WINDOW_RING)
    }

    /// Window length in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Observe the cumulative totals at time `now_ns`, closing every
    /// window whose boundary has passed.
    pub fn advance(&mut self, now_ns: u64, cumulative: &ProtocolTimings) {
        while now_ns.saturating_sub(self.current_start_ns) >= self.window_ns {
            let end = self.current_start_ns + self.window_ns;
            let delta = cumulative.diff(&self.baseline);
            self.closed.push_back(MetricsWindow {
                start_ns: self.current_start_ns,
                end_ns: end,
                timings: delta,
            });
            while self.closed.len() > self.cap {
                self.closed.pop_front();
            }
            self.baseline = cumulative.clone();
            self.current_start_ns = end;
        }
    }

    /// The retained closed windows, oldest first.
    pub fn closed(&self) -> impl Iterator<Item = &MetricsWindow> {
        self.closed.iter()
    }

    /// Number of retained closed windows.
    pub fn closed_len(&self) -> usize {
        self.closed.len()
    }

    /// The in-progress window: everything since the last boundary up
    /// to `now_ns`. Does not mutate the ring, so it can be rendered on
    /// every scrape without perturbing window boundaries.
    pub fn current(&self, now_ns: u64, cumulative: &ProtocolTimings) -> MetricsWindow {
        MetricsWindow {
            start_ns: self.current_start_ns,
            end_ns: now_ns.max(self.current_start_ns),
            timings: cumulative.diff(&self.baseline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings_with(gate: &[u64]) -> ProtocolTimings {
        let mut t = ProtocolTimings::new();
        for &v in gate {
            t.gate_wait.record(v);
        }
        t
    }

    #[test]
    fn windows_partition_the_cumulative_series() {
        let mut ring = WindowRing::new(0, 1_000, 4);
        let mut cum = ProtocolTimings::new();
        // Three windows' worth of samples. Advance-then-record is the
        // sink's discipline: boundaries close over the pre-sample
        // totals, so each sample lands in the window holding its
        // timestamp.
        for (now, v) in [(500u64, 10u64), (1_500, 20), (2_500, 30)] {
            ring.advance(now, &cum);
            cum.gate_wait.record(v);
        }
        ring.advance(3_000, &cum);
        let closed: Vec<_> = ring.closed().collect();
        assert_eq!(closed.len(), 3);
        for (i, w) in closed.iter().enumerate() {
            assert_eq!(w.start_ns, i as u64 * 1_000);
            assert_eq!(w.span_ns(), 1_000);
            assert_eq!(w.timings.gate_wait.summary().count, 1, "window {i}");
        }
        // Sum of windows == cumulative.
        let mut merged = ProtocolTimings::new();
        for w in &closed {
            merged.merge(&w.timings);
        }
        assert_eq!(
            merged.gate_wait.summary(),
            cum.gate_wait.summary(),
            "window deltas must repartition the cumulative series"
        );
    }

    #[test]
    fn stall_attributes_backlog_to_first_crossed_window_and_skips_close_empty() {
        let mut ring = WindowRing::new(0, 1_000, 8);
        let mut cum = timings_with(&[5]);
        ring.advance(100, &cum); // still inside window 0
        cum.gate_wait.record(7);
        // Next observation jumps three windows at once.
        ring.advance(3_200, &cum);
        let closed: Vec<_> = ring.closed().collect();
        assert_eq!(closed.len(), 3);
        assert_eq!(closed[0].timings.gate_wait.summary().count, 2);
        assert_eq!(closed[1].timings.gate_wait.summary().count, 0);
        assert_eq!(closed[2].timings.gate_wait.summary().count, 0);
    }

    #[test]
    fn ring_caps_retention_and_current_window_tracks_the_tail() {
        let mut ring = WindowRing::new(0, 100, 2);
        let mut cum = ProtocolTimings::new();
        for i in 0..5u64 {
            cum.gate_wait.record(i + 1);
            ring.advance((i + 1) * 100, &cum);
        }
        assert_eq!(ring.closed_len(), 2, "retention capped");
        let oldest = ring.closed().next().expect("non-empty");
        assert_eq!(oldest.start_ns, 300);
        cum.gate_wait.record(99);
        let cur = ring.current(560, &cum);
        assert_eq!(cur.start_ns, 500);
        assert_eq!(cur.end_ns, 560);
        assert_eq!(cur.timings.gate_wait.summary().count, 1);
        assert_eq!(cur.timings.gate_wait.summary().max, 99);
    }
}
