//! The online invariant monitor: a streaming checker of the protocol's
//! core safety properties, fed live records from every rank's flight
//! recorder (via [`RecordSink`]) or replayed over a dumped timeline.
//!
//! Three invariant families are checked, per rank and per incarnation:
//!
//! 1. **Pessimism gate** (§4.1): no payload leaves on the wire — and no
//!    `GateOpen` fires — while reception events of already-performed
//!    deliveries are still unacknowledged by the event logger.
//! 2. **Watermark monotonicity**: sender clocks (`HS`) and receiver
//!    clocks strictly increase within an incarnation, and per-sender
//!    `HR` watermarks never regress on a fresh delivery.
//! 3. **Exactly-once delivery**: no `(sender, sender_clock)` pair is
//!    handed to the application twice within one incarnation.
//!
//! The monitor halts at the *first* violation (the AADEBUG'03 argument:
//! the first deviating process localizes the fault; everything after it
//! is noise) and keeps a structured [`Violation`] report.

use crate::event::{FlightRecord, ProtoEvent, SendDisposition, DISPATCHER_RANK};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Consumers of live flight records. [`Recorder`](crate::Recorder)
/// invokes the sink inline on the recording thread's slow path, so an
/// implementation must be cheap and must never call back into a
/// recorder.
pub trait RecordSink: Send + Sync {
    /// Observe one record as it is written.
    fn observe(&self, rec: &FlightRecord);

    /// Write out anything the sink has buffered. Stateless sinks (the
    /// monitor, per-record streams) need nothing; buffered streams
    /// override this so a teardown path can make the stream durable
    /// before `exit`.
    fn flush(&self) {}
}

/// A first-violation report: which invariant broke, where, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rank whose record violated the invariant.
    pub rank: u32,
    /// Logical clock of the violating record.
    pub clock: u64,
    /// Timestamp of the violating record.
    pub ts_ns: u64,
    /// Short stable name of the invariant ("pessimism-gate", ...).
    pub invariant: &'static str,
    /// Human-readable account of the violation.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant `{}` violated at rank {} clock {} t={}ns: {}",
            self.invariant, self.rank, self.clock, self.ts_ns, self.detail
        )
    }
}

/// Per-rank, per-incarnation streaming state.
#[derive(Default)]
struct RankState {
    /// Incarnation counter (bumped on `Restart1`/`RecoveryBegin`).
    incarnation: u64,
    /// Receiver clocks of performed deliveries whose reception events
    /// the event logger has not yet acknowledged.
    unacked: BTreeSet<u64>,
    /// `(sender, sender_clock)` pairs delivered this incarnation.
    delivered: HashSet<(u32, u64)>,
    /// Highest send clock stamped this incarnation.
    last_send_clock: Option<u64>,
    /// Highest receiver clock assigned this incarnation.
    last_recv_clock: Option<u64>,
    /// Per-sender `HR` watermark rebuilt this incarnation.
    hr: HashMap<u32, u64>,
    /// Per-replica durable watermark from `ElReplicaAck` records, keyed
    /// `(shard, replica)`. EL ledgers outlive rank incarnations *and*
    /// replica revivals (a revived replica absorbs its live peers before
    /// re-acking), so these never regress — not cleared by `restart`.
    replica_acked: HashMap<(u32, u32), u64>,
}

impl RankState {
    /// Reset for a fresh incarnation starting at `restored_clock`.
    fn restart(&mut self, restored_clock: Option<u64>) {
        self.incarnation += 1;
        self.unacked.clear();
        self.delivered.clear();
        self.last_send_clock = None;
        self.last_recv_clock = restored_clock;
        self.hr.clear();
    }
}

#[derive(Default)]
struct MonitorState {
    ranks: BTreeMap<u32, RankState>,
    violation: Option<Violation>,
    records_seen: u64,
}

/// The streaming invariant checker. Thread-safe: wrap it in an `Arc`
/// and hand it to [`RecorderHub::set_sink`](crate::RecorderHub::set_sink)
/// for live checking, or feed it a dumped timeline with
/// [`observe_all`](InvariantMonitor::observe_all) offline.
#[derive(Default)]
pub struct InvariantMonitor {
    state: Mutex<MonitorState>,
}

impl std::fmt::Debug for InvariantMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("InvariantMonitor")
            .field("records_seen", &st.records_seen)
            .field("violation", &st.violation)
            .finish()
    }
}

impl InvariantMonitor {
    /// A fresh monitor with no observed history.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Replay a full (merged, timestamp-ordered) timeline through the
    /// checker. Per-rank streams keep their relative order in a merged
    /// timeline, which is all the per-rank state machines need.
    pub fn observe_all(&self, records: &[FlightRecord]) {
        for r in records {
            self.observe(r);
        }
    }

    /// The first violation seen, if any.
    pub fn violation(&self) -> Option<Violation> {
        self.state.lock().violation.clone()
    }

    /// Records checked so far (violating record included; records after
    /// the first violation are not counted — the monitor has halted).
    pub fn records_seen(&self) -> u64 {
        self.state.lock().records_seen
    }

    fn check(&self, rec: &FlightRecord) {
        let mut st = self.state.lock();
        if st.violation.is_some() {
            return; // halted: first violation only
        }
        st.records_seen += 1;
        if rec.rank == DISPATCHER_RANK {
            return; // dispatcher/chaos bookkeeping, not protocol state
        }
        let rs = st.ranks.entry(rec.rank).or_default();
        if let Some((invariant, detail)) = Self::step(rs, &rec.event) {
            st.violation = Some(Violation {
                rank: rec.rank,
                clock: rec.clock,
                ts_ns: rec.ts_ns,
                invariant,
                detail,
            });
        }
    }

    /// Advance one rank's state machine; `Some` names the violated
    /// invariant.
    fn step(rs: &mut RankState, event: &ProtoEvent) -> Option<(&'static str, String)> {
        match event {
            ProtoEvent::Send {
                clock, disposition, ..
            } => {
                if *disposition == SendDisposition::Wire {
                    if let Some(&owed) = rs.unacked.iter().next() {
                        let n = rs.unacked.len();
                        return Some((
                            "pessimism-gate",
                            format!(
                                "payload transmitted while {n} reception event(s) \
                                 unacked (oldest receiver clock {owed})"
                            ),
                        ));
                    }
                }
                if let Some(last) = rs.last_send_clock {
                    if *clock <= last {
                        return Some((
                            "hs-monotonic",
                            format!("send clock {clock} not above previous {last}"),
                        ));
                    }
                }
                rs.last_send_clock = Some(*clock);
            }
            ProtoEvent::GateOpen { .. } => {
                if let Some(&owed) = rs.unacked.iter().next() {
                    let n = rs.unacked.len();
                    return Some((
                        "pessimism-gate",
                        format!(
                            "gate opened while {n} reception event(s) unacked \
                             (oldest receiver clock {owed})"
                        ),
                    ));
                }
            }
            ProtoEvent::Deliver {
                from,
                sender_clock,
                receiver_clock,
                ..
            } => {
                if !rs.delivered.insert((*from, *sender_clock)) {
                    return Some((
                        "exactly-once",
                        format!("({from}, {sender_clock}) delivered twice in one incarnation"),
                    ));
                }
                let hr = rs.hr.entry(*from).or_insert(0);
                if *sender_clock <= *hr && *hr > 0 {
                    return Some((
                        "hr-monotonic",
                        format!(
                            "fresh delivery from {from} at sender clock {sender_clock} \
                             at or below HR watermark {hr}"
                        ),
                    ));
                }
                *hr = *sender_clock;
                if let Some(last) = rs.last_recv_clock {
                    if *receiver_clock <= last {
                        return Some((
                            "receiver-clock-monotonic",
                            format!("receiver clock {receiver_clock} not above previous {last}"),
                        ));
                    }
                }
                rs.last_recv_clock = Some(*receiver_clock);
                rs.unacked.insert(*receiver_clock);
            }
            ProtoEvent::ReplayStep {
                from,
                sender_clock,
                receiver_clock,
            } => {
                // Replayed deliveries consume events already durable at
                // the EL — they owe no ack — but exactly-once and clock
                // monotonicity hold for them too.
                if !rs.delivered.insert((*from, *sender_clock)) {
                    return Some((
                        "exactly-once",
                        format!("({from}, {sender_clock}) replayed twice in one incarnation"),
                    ));
                }
                let hr = rs.hr.entry(*from).or_insert(0);
                *hr = (*hr).max(*sender_clock);
                if let Some(last) = rs.last_recv_clock {
                    if *receiver_clock <= last {
                        return Some((
                            "receiver-clock-monotonic",
                            format!(
                                "replayed receiver clock {receiver_clock} not above \
                                 previous {last}"
                            ),
                        ));
                    }
                }
                rs.last_recv_clock = Some(*receiver_clock);
            }
            ProtoEvent::ElAck { up_to, .. } => {
                // Coalesced high-watermark ack: everything at or below
                // `up_to` is durable at the EL (the quorum of replicas,
                // when logging is replicated).
                let still_owed = rs.unacked.split_off(&(up_to.saturating_add(1)));
                rs.unacked = still_owed;
            }
            ProtoEvent::ElReplicaAck {
                shard,
                replica,
                up_to,
            } => {
                // Per-replica durable watermarks only grow: the ledger
                // survives rank restarts, and revival absorbs every live
                // peer before the replica speaks again. A regression
                // means a replica came back with holes below its ack.
                let slot = rs.replica_acked.entry((*shard, *replica)).or_insert(0);
                if *up_to < *slot {
                    return Some((
                        "replica-ack-monotonic",
                        format!(
                            "replica ({shard}, {replica}) acked {up_to} below                              its previous watermark {slot}"
                        ),
                    ));
                }
                *slot = *up_to;
            }
            ProtoEvent::Restart1 { .. } => {
                rs.restart(None);
            }
            ProtoEvent::RecoveryBegin { restored_clock } => {
                // The engine records `RecoveryBegin` then `Restart1` at
                // every incarnation start; either order leaves a clean
                // slate. A restored clock on an untouched slate seeds
                // the receiver-clock floor.
                if rs.last_recv_clock.is_some() || !rs.unacked.is_empty() {
                    rs.restart(Some(*restored_clock));
                } else {
                    rs.last_recv_clock = Some(*restored_clock);
                }
            }
            _ => {}
        }
        None
    }
}

impl RecordSink for InvariantMonitor {
    fn observe(&self, rec: &FlightRecord) {
        self.check(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rank: u32, clock: u64, ts_ns: u64, event: ProtoEvent) -> FlightRecord {
        FlightRecord {
            rank,
            clock,
            ts_ns,
            event,
        }
    }

    fn deliver(from: u32, sc: u64, rc: u64) -> ProtoEvent {
        ProtoEvent::Deliver {
            from,
            sender_clock: sc,
            receiver_clock: rc,
            replay: false,
        }
    }

    fn wire_send(to: u32, clock: u64) -> ProtoEvent {
        ProtoEvent::Send {
            to,
            clock,
            bytes: 8,
            disposition: SendDisposition::Wire,
        }
    }

    fn ack(up_to: u64) -> ProtoEvent {
        ProtoEvent::ElAck {
            up_to,
            batches_retired: 1,
            rtt_ns: 10,
        }
    }

    #[test]
    fn clean_stream_passes() {
        let m = InvariantMonitor::new();
        m.observe_all(&[
            rec(1, 1, 10, deliver(0, 1, 1)),
            rec(
                1,
                1,
                20,
                ProtoEvent::ElShip {
                    events: 1,
                    from_clock: 1,
                    up_to: 1,
                },
            ),
            rec(1, 1, 30, ack(1)),
            rec(
                1,
                1,
                35,
                ProtoEvent::GateOpen {
                    released: 1,
                    waited_ns: 5,
                },
            ),
            rec(1, 2, 40, wire_send(0, 2)),
        ]);
        assert_eq!(m.violation(), None);
        assert_eq!(m.records_seen(), 5);
    }

    #[test]
    fn wire_send_with_unacked_delivery_is_gate_violation() {
        let m = InvariantMonitor::new();
        m.observe_all(&[
            rec(1, 1, 10, deliver(0, 1, 1)),
            rec(1, 2, 20, wire_send(0, 2)),
        ]);
        let v = m.violation().expect("gate violation");
        assert_eq!(v.invariant, "pessimism-gate");
        assert_eq!(v.rank, 1);
    }

    #[test]
    fn gated_and_suppressed_sends_do_not_trip_the_gate() {
        let m = InvariantMonitor::new();
        m.observe_all(&[
            rec(1, 1, 10, deliver(0, 1, 1)),
            rec(
                1,
                2,
                20,
                ProtoEvent::Send {
                    to: 0,
                    clock: 2,
                    bytes: 8,
                    disposition: SendDisposition::Gated,
                },
            ),
            rec(
                1,
                3,
                30,
                ProtoEvent::Send {
                    to: 0,
                    clock: 3,
                    bytes: 8,
                    disposition: SendDisposition::Suppressed,
                },
            ),
        ]);
        assert_eq!(m.violation(), None);
    }

    #[test]
    fn double_delivery_is_exactly_once_violation() {
        let m = InvariantMonitor::new();
        m.observe_all(&[
            rec(1, 1, 10, deliver(0, 7, 1)),
            rec(1, 1, 15, ack(1)),
            rec(1, 2, 20, deliver(0, 7, 2)),
        ]);
        let v = m.violation().expect("exactly-once violation");
        // HR watermark trips first — the duplicate key necessarily sits
        // at or below HR — either name localizes the same fault.
        assert!(v.invariant == "exactly-once" || v.invariant == "hr-monotonic");
    }

    #[test]
    fn receiver_clock_regression_detected() {
        let m = InvariantMonitor::new();
        m.observe_all(&[
            rec(1, 5, 10, deliver(0, 1, 5)),
            rec(1, 5, 15, ack(5)),
            rec(1, 3, 20, deliver(2, 1, 3)),
        ]);
        let v = m.violation().expect("clock regression");
        assert_eq!(v.invariant, "receiver-clock-monotonic");
    }

    #[test]
    fn restart_resets_incarnation_state() {
        let m = InvariantMonitor::new();
        m.observe_all(&[
            rec(1, 1, 10, deliver(0, 4, 1)),
            // Crash before the ack; new incarnation replays the same key.
            rec(1, 0, 50, ProtoEvent::Restart1 { rank: 1 }),
            rec(1, 0, 55, ProtoEvent::RecoveryBegin { restored_clock: 0 }),
            rec(
                1,
                1,
                60,
                ProtoEvent::ReplayStep {
                    from: 0,
                    sender_clock: 4,
                    receiver_clock: 1,
                },
            ),
            // Replay owes no ack: a wire send right after is legal.
            rec(1, 2, 70, wire_send(0, 2)),
        ]);
        assert_eq!(m.violation(), None);
    }

    #[test]
    fn monitor_halts_at_first_violation() {
        let m = InvariantMonitor::new();
        m.observe_all(&[
            rec(1, 1, 10, deliver(0, 1, 1)),
            rec(1, 2, 20, wire_send(0, 2)),  // violation #1
            rec(1, 3, 30, deliver(0, 1, 1)), // would be violation #2
        ]);
        let v = m.violation().expect("violation");
        assert_eq!(v.invariant, "pessimism-gate");
        assert_eq!(v.ts_ns, 20);
        assert_eq!(m.records_seen(), 2);
    }

    #[test]
    fn replica_ack_watermark_regression_is_flagged() {
        let m = InvariantMonitor::new();
        let ack = |replica, up_to| ProtoEvent::ElReplicaAck {
            shard: 0,
            replica,
            up_to,
        };
        // Per-replica watermarks grow independently; equal re-acks are
        // fine (coalesced announcements), regression is not.
        m.observe_all(&[
            rec(1, 5, 10, ack(0, 5)),
            rec(1, 9, 20, ack(1, 9)),
            rec(1, 9, 30, ack(0, 5)),
            rec(1, 12, 40, ack(0, 12)),
        ]);
        assert_eq!(m.violation(), None);
        m.observe_all(&[rec(1, 3, 50, ack(0, 3))]);
        let v = m.violation().expect("regression must be flagged");
        assert_eq!(v.invariant, "replica-ack-monotonic");
        assert_eq!(v.ts_ns, 50);
    }

    #[test]
    fn replica_watermarks_survive_rank_restart() {
        // The ledger outlives the incarnation: a restart must not let a
        // stale-looking (but legitimate) re-ack trip the rule, nor reset
        // the floor under a real regression.
        let m = InvariantMonitor::new();
        let ack = |up_to| ProtoEvent::ElReplicaAck {
            shard: 0,
            replica: 0,
            up_to,
        };
        m.observe_all(&[
            rec(2, 8, 10, ack(8)),
            rec(2, 0, 20, ProtoEvent::Restart1 { rank: 2 }),
            rec(2, 0, 30, ProtoEvent::RecoveryBegin { restored_clock: 4 }),
            rec(2, 8, 40, ack(8)),
        ]);
        assert_eq!(m.violation(), None, "re-acking the same watermark is fine");
        m.observe_all(&[rec(2, 2, 50, ack(2))]);
        assert!(m.violation().is_some(), "floor survives the restart");
    }

    #[test]
    fn dispatcher_records_are_ignored() {
        let m = InvariantMonitor::new();
        m.observe_all(&[rec(
            DISPATCHER_RANK,
            0,
            5,
            ProtoEvent::ChaosKill {
                victim: 1,
                rekill: false,
            },
        )]);
        assert_eq!(m.violation(), None);
    }
}
