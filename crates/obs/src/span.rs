//! Per-message lifecycle spans stitched from a merged flight-recorder
//! timeline.
//!
//! A span follows one application message — keyed by `(sender,
//! sender_clock)`, the paper's message identifier — through its whole
//! life: send (with gate disposition) → gate defer/open → delivery →
//! reception-event ship to the EL → EL ack, plus any replayed
//! re-deliveries after a crash. Spans are what turn 50 000 interleaved
//! records into per-message latency attribution, and their *absence*
//! is diagnostic: an orphan (a delivery with no send, a wire send with
//! no delivery, a gated send never released) localizes either a ring
//! truncation or a protocol bug.

use crate::event::{FlightRecord, ProtoEvent, SendDisposition};
use crate::hist::LogHistogram;
use std::collections::{BTreeMap, HashMap};

/// Span key: `(sender rank, sender logical clock at emission)`.
pub type SpanKey = (u32, u64);

/// One delivery of a span's message (a message can be delivered once
/// per receiver incarnation: normally first, by replay after a crash).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryLeg {
    /// Receiving rank.
    pub receiver: u32,
    /// Receiver clock assigned to the delivery.
    pub receiver_clock: u64,
    /// Timestamp of the delivery record.
    pub ts_ns: u64,
    /// `true` when the delivery happened during ordered replay.
    pub replay: bool,
    /// Timestamp of the `ElShip` batch carrying this delivery's
    /// reception event, once observed.
    pub el_ship_ts: Option<u64>,
    /// Timestamp of the first (sub-quorum) `ElReplicaAck` covering this
    /// delivery's reception event, once observed. Only recorded under
    /// replicated logging; unreplicated acks go straight to `el_ack_ts`.
    pub el_replica_ack_ts: Option<u64>,
    /// Timestamp of the `ElAck` covering this delivery's reception
    /// event, once observed. Under replicated logging this is the
    /// *quorum* ack — the one that can reopen the gate.
    pub el_ack_ts: Option<u64>,
}

/// The lifecycle of one application message.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// Destination rank (from the send record).
    pub to: Option<u32>,
    /// Payload bytes.
    pub bytes: u64,
    /// Timestamp of the first send record.
    pub send_ts: Option<u64>,
    /// Disposition of every send record carrying this key (a key is
    /// re-sent when a crashed sender re-executes).
    pub dispositions: Vec<SendDisposition>,
    /// Timestamp of the `GateDefer` record, when the send queued
    /// behind the closed pessimism gate.
    pub gate_defer_ts: Option<u64>,
    /// Timestamp of the `GateOpen` that released the deferred send.
    pub gate_open_ts: Option<u64>,
    /// Every observed delivery of the message, oldest first.
    pub deliveries: Vec<DeliveryLeg>,
}

impl Span {
    /// Nanoseconds from send to first delivery.
    pub fn wire_latency_ns(&self) -> Option<u64> {
        let send = self.send_ts?;
        let d = self.deliveries.first()?;
        Some(d.ts_ns.saturating_sub(send))
    }

    /// Nanoseconds the send waited behind the pessimism gate.
    pub fn gate_wait_ns(&self) -> Option<u64> {
        Some(self.gate_open_ts?.saturating_sub(self.gate_defer_ts?))
    }

    /// Ship→ack round-trip of the first delivery's reception event.
    /// Under replicated logging the ack is the quorum ack.
    pub fn el_rtt_ns(&self) -> Option<u64> {
        let d = self.deliveries.first()?;
        Some(d.el_ack_ts?.saturating_sub(d.el_ship_ts?))
    }

    /// Nanoseconds between the first replica's ack and the quorum ack
    /// for the first delivery's reception event — the price of waiting
    /// for a majority instead of trusting one copy. `None` when the
    /// logging is unreplicated (no `ElReplicaAck` leg exists).
    pub fn quorum_wait_ns(&self) -> Option<u64> {
        let d = self.deliveries.first()?;
        Some(d.el_ack_ts?.saturating_sub(d.el_replica_ack_ts?))
    }

    /// Whether any send record put the payload on the wire (directly
    /// or after a gate release).
    pub fn transmitted(&self) -> bool {
        self.dispositions
            .iter()
            .any(|d| !matches!(d, SendDisposition::Suppressed))
    }
}

/// Why a span is incomplete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrphanKind {
    /// A delivery or replay referenced a key with no send record —
    /// a truncated ring or a fabricated message.
    SendlessDelivery,
    /// A transmitted (wire or gated) send was never delivered anywhere.
    UndeliveredSend,
    /// A gated send's rank finished cleanly without ever releasing it.
    StuckGate,
}

impl OrphanKind {
    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            OrphanKind::SendlessDelivery => "sendless-delivery",
            OrphanKind::UndeliveredSend => "undelivered-send",
            OrphanKind::StuckGate => "stuck-gate",
        }
    }
}

/// One orphan span edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Orphan {
    /// The span's key.
    pub key: SpanKey,
    /// What is missing.
    pub kind: OrphanKind,
    /// Human-readable account.
    pub detail: String,
}

/// Every span of a timeline plus the orphans found while stitching.
#[derive(Debug, Default)]
pub struct SpanSet {
    /// Spans by key, ordered.
    pub spans: BTreeMap<SpanKey, Span>,
    /// Incomplete spans (zero on a clean, completed, untruncated run).
    pub orphans: Vec<Orphan>,
}

/// Per-rank stitching state, reset at each incarnation boundary.
#[derive(Default)]
struct RankStitch {
    /// Keys deferred behind the gate, not yet released.
    open_defers: Vec<SpanKey>,
    /// Delivered receiver clocks awaiting their `ElShip`.
    awaiting_ship: Vec<(u64, SpanKey)>,
    /// Shipped receiver clocks awaiting their `ElAck`.
    awaiting_ack: Vec<(u64, SpanKey)>,
    /// Whether the rank's (last) incarnation recorded a clean finish.
    finished: bool,
    /// Keys still deferred when the rank finished.
    stuck_candidates: Vec<SpanKey>,
}

impl SpanSet {
    /// Stitch a merged, per-rank-ordered timeline into spans.
    pub fn build(timeline: &[FlightRecord]) -> SpanSet {
        let mut spans: BTreeMap<SpanKey, Span> = BTreeMap::new();
        let mut ranks: HashMap<u32, RankStitch> = HashMap::new();
        for rec in timeline {
            match &rec.event {
                ProtoEvent::Send {
                    to,
                    clock,
                    bytes,
                    disposition,
                } => {
                    let s = spans.entry((rec.rank, *clock)).or_default();
                    s.to = Some(*to);
                    s.bytes = *bytes;
                    s.send_ts.get_or_insert(rec.ts_ns);
                    s.dispositions.push(*disposition);
                }
                ProtoEvent::GateDefer { clock, .. } => {
                    let key = (rec.rank, *clock);
                    spans
                        .entry(key)
                        .or_default()
                        .gate_defer_ts
                        .get_or_insert(rec.ts_ns);
                    ranks.entry(rec.rank).or_default().open_defers.push(key);
                }
                ProtoEvent::GateOpen { .. } => {
                    let st = ranks.entry(rec.rank).or_default();
                    for key in st.open_defers.drain(..) {
                        if let Some(s) = spans.get_mut(&key) {
                            s.gate_open_ts.get_or_insert(rec.ts_ns);
                        }
                    }
                }
                ProtoEvent::Deliver {
                    from,
                    sender_clock,
                    receiver_clock,
                    replay,
                } => {
                    let key = (*from, *sender_clock);
                    spans.entry(key).or_default().deliveries.push(DeliveryLeg {
                        receiver: rec.rank,
                        receiver_clock: *receiver_clock,
                        ts_ns: rec.ts_ns,
                        replay: *replay,
                        el_ship_ts: None,
                        el_replica_ack_ts: None,
                        el_ack_ts: None,
                    });
                    if !replay {
                        ranks
                            .entry(rec.rank)
                            .or_default()
                            .awaiting_ship
                            .push((*receiver_clock, key));
                    }
                }
                ProtoEvent::ReplayStep {
                    from,
                    sender_clock,
                    receiver_clock,
                } => {
                    let key = (*from, *sender_clock);
                    spans.entry(key).or_default().deliveries.push(DeliveryLeg {
                        receiver: rec.rank,
                        receiver_clock: *receiver_clock,
                        ts_ns: rec.ts_ns,
                        replay: true,
                        el_ship_ts: None,
                        el_replica_ack_ts: None,
                        el_ack_ts: None,
                    });
                }
                ProtoEvent::ElShip {
                    from_clock, up_to, ..
                } => {
                    let st = ranks.entry(rec.rank).or_default();
                    let mut kept = Vec::new();
                    for (rc, key) in st.awaiting_ship.drain(..) {
                        if rc >= *from_clock && rc <= *up_to {
                            if let Some(leg) = last_leg(&mut spans, key, rec.rank, rc) {
                                leg.el_ship_ts = Some(rec.ts_ns);
                            }
                            st.awaiting_ack.push((rc, key));
                        } else {
                            kept.push((rc, key));
                        }
                    }
                    st.awaiting_ship = kept;
                }
                ProtoEvent::ElReplicaAck { up_to, .. } => {
                    // A sub-quorum ack: the event is durable on one
                    // replica but cannot reopen the gate yet. Stamp the
                    // first such ack and keep waiting for the quorum
                    // `ElAck`.
                    let st = ranks.entry(rec.rank).or_default();
                    for (rc, key) in st.awaiting_ack.iter() {
                        if *rc <= *up_to {
                            if let Some(leg) = last_leg(&mut spans, *key, rec.rank, *rc) {
                                leg.el_replica_ack_ts.get_or_insert(rec.ts_ns);
                            }
                        }
                    }
                }
                ProtoEvent::ElAck { up_to, .. } => {
                    let st = ranks.entry(rec.rank).or_default();
                    let mut kept = Vec::new();
                    for (rc, key) in st.awaiting_ack.drain(..) {
                        if rc <= *up_to {
                            if let Some(leg) = last_leg(&mut spans, key, rec.rank, rc) {
                                leg.el_ack_ts = Some(rec.ts_ns);
                            }
                        } else {
                            kept.push((rc, key));
                        }
                    }
                    st.awaiting_ack = kept;
                }
                ProtoEvent::Restart1 { .. } | ProtoEvent::RecoveryBegin { .. } => {
                    // Dead incarnation's in-flight stitching state dies
                    // with it (its unshipped events were dropped by the
                    // engine for the same reason).
                    let st = ranks.entry(rec.rank).or_default();
                    st.open_defers.clear();
                    st.awaiting_ship.clear();
                    st.awaiting_ack.clear();
                    st.finished = false;
                }
                ProtoEvent::Finish { .. } => {
                    let st = ranks.entry(rec.rank).or_default();
                    st.finished = true;
                    st.stuck_candidates = st.open_defers.clone();
                }
                _ => {}
            }
        }
        let mut orphans = Vec::new();
        for (key, span) in &spans {
            if !span.deliveries.is_empty() && span.send_ts.is_none() {
                orphans.push(Orphan {
                    key: *key,
                    kind: OrphanKind::SendlessDelivery,
                    detail: format!(
                        "delivered to rank {} but no send record for ({}, {})",
                        span.deliveries[0].receiver, key.0, key.1
                    ),
                });
            } else if span.transmitted() && span.deliveries.is_empty() {
                orphans.push(Orphan {
                    key: *key,
                    kind: OrphanKind::UndeliveredSend,
                    detail: format!(
                        "({}, {}) put on the wire to rank {} but never delivered",
                        key.0,
                        key.1,
                        span.to.map(|t| t as i64).unwrap_or(-1)
                    ),
                });
            }
        }
        for st in ranks.values() {
            if !st.finished {
                continue;
            }
            for key in &st.stuck_candidates {
                let stuck = spans
                    .get(key)
                    .map(|s| s.deliveries.is_empty() && s.gate_open_ts.is_none())
                    .unwrap_or(false);
                if stuck {
                    orphans.push(Orphan {
                        key: *key,
                        kind: OrphanKind::StuckGate,
                        detail: format!(
                            "({}, {}) still gated when its rank finished",
                            key.0, key.1
                        ),
                    });
                }
            }
        }
        orphans.sort_by_key(|o| o.key);
        orphans.dedup();
        SpanSet { spans, orphans }
    }

    /// Deliveries across all spans (replays included).
    pub fn total_deliveries(&self) -> usize {
        self.spans.values().map(|s| s.deliveries.len()).sum()
    }

    /// Multi-line human report: span counts, latency percentiles per
    /// component, slowest spans, orphans.
    pub fn report(&self, top: usize) -> String {
        let mut wire = LogHistogram::new();
        let mut gate = LogHistogram::new();
        let mut el = LogHistogram::new();
        let mut replayed = 0usize;
        let mut suppressed = 0usize;
        let mut gated = 0usize;
        for s in self.spans.values() {
            if let Some(ns) = s.wire_latency_ns() {
                wire.record(ns);
            }
            if let Some(ns) = s.gate_wait_ns() {
                gate.record(ns);
            }
            if let Some(ns) = s.el_rtt_ns() {
                el.record(ns);
            }
            replayed += s.deliveries.iter().filter(|d| d.replay).count();
            suppressed += s
                .dispositions
                .iter()
                .filter(|d| matches!(d, SendDisposition::Suppressed))
                .count();
            gated += s
                .dispositions
                .iter()
                .filter(|d| matches!(d, SendDisposition::Gated))
                .count();
        }
        let mut out = format!(
            "spans: {} keys, {} deliveries ({} replayed), {} gated sends, {} suppressed re-sends\n",
            self.spans.len(),
            self.total_deliveries(),
            replayed,
            gated,
            suppressed,
        );
        for (label, h) in [
            ("send→deliver", &wire),
            ("gate-wait", &gate),
            ("el ship→ack", &el),
        ] {
            let s = h.summary();
            if s.count > 0 {
                out.push_str(&format!(
                    "  {label}: n={} p50={}ns p99={}ns max={}ns\n",
                    s.count, s.p50, s.p99, s.max
                ));
            } else {
                out.push_str(&format!("  {label}: n=0\n"));
            }
        }
        let mut slowest: Vec<(u64, SpanKey)> = self
            .spans
            .iter()
            .filter_map(|(k, s)| s.wire_latency_ns().map(|ns| (ns, *k)))
            .collect();
        slowest.sort_by(|a, b| b.cmp(a));
        for (ns, key) in slowest.iter().take(top) {
            let s = &self.spans[key];
            out.push_str(&format!(
                "  slow: ({}, {}) → rank {} {}ns (gate {}ns)\n",
                key.0,
                key.1,
                s.to.unwrap_or(u32::MAX),
                ns,
                s.gate_wait_ns().unwrap_or(0),
            ));
        }
        if self.orphans.is_empty() {
            out.push_str("  orphan edges: none\n");
        } else {
            out.push_str(&format!("  orphan edges: {}\n", self.orphans.len()));
            for o in self.orphans.iter().take(top.max(8)) {
                out.push_str(&format!("    [{}] {}\n", o.kind.name(), o.detail));
            }
        }
        out
    }
}

/// The newest delivery leg of `key` on `receiver` with `receiver_clock`.
fn last_leg(
    spans: &mut BTreeMap<SpanKey, Span>,
    key: SpanKey,
    receiver: u32,
    receiver_clock: u64,
) -> Option<&mut DeliveryLeg> {
    spans
        .get_mut(&key)?
        .deliveries
        .iter_mut()
        .rev()
        .find(|d| d.receiver == receiver && d.receiver_clock == receiver_clock && !d.replay)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rank: u32, clock: u64, ts_ns: u64, event: ProtoEvent) -> FlightRecord {
        FlightRecord {
            rank,
            clock,
            ts_ns,
            event,
        }
    }

    fn send(to: u32, clock: u64, disposition: SendDisposition) -> ProtoEvent {
        ProtoEvent::Send {
            to,
            clock,
            bytes: 8,
            disposition,
        }
    }

    fn deliver(from: u32, sc: u64, rc: u64) -> ProtoEvent {
        ProtoEvent::Deliver {
            from,
            sender_clock: sc,
            receiver_clock: rc,
            replay: false,
        }
    }

    #[test]
    fn full_lifecycle_stitches() {
        let tl = vec![
            rec(0, 1, 100, send(1, 1, SendDisposition::Wire)),
            rec(1, 1, 250, deliver(0, 1, 1)),
            rec(
                1,
                1,
                300,
                ProtoEvent::ElShip {
                    events: 1,
                    from_clock: 1,
                    up_to: 1,
                },
            ),
            rec(
                1,
                1,
                900,
                ProtoEvent::ElAck {
                    up_to: 1,
                    batches_retired: 1,
                    rtt_ns: 600,
                },
            ),
        ];
        let set = SpanSet::build(&tl);
        assert!(set.orphans.is_empty());
        let span = &set.spans[&(0, 1)];
        assert_eq!(span.wire_latency_ns(), Some(150));
        assert_eq!(span.el_rtt_ns(), Some(600));
        assert_eq!(span.deliveries.len(), 1);
        assert!(set.report(3).contains("orphan edges: none"));
    }

    #[test]
    fn gated_send_attributes_gate_wait() {
        let tl = vec![
            rec(0, 2, 100, send(1, 2, SendDisposition::Gated)),
            rec(
                0,
                2,
                110,
                ProtoEvent::GateDefer {
                    to: 1,
                    clock: 2,
                    queued: 1,
                },
            ),
            rec(
                0,
                2,
                500,
                ProtoEvent::GateOpen {
                    released: 1,
                    waited_ns: 390,
                },
            ),
            rec(1, 1, 700, deliver(0, 2, 1)),
        ];
        let set = SpanSet::build(&tl);
        assert!(set.orphans.is_empty());
        assert_eq!(set.spans[&(0, 2)].gate_wait_ns(), Some(390));
    }

    #[test]
    fn replay_adds_second_leg() {
        let tl = vec![
            rec(0, 1, 100, send(1, 1, SendDisposition::Wire)),
            rec(1, 1, 200, deliver(0, 1, 1)),
            rec(1, 0, 500, ProtoEvent::Restart1 { rank: 1 }),
            rec(1, 0, 510, ProtoEvent::RecoveryBegin { restored_clock: 0 }),
            rec(
                1,
                1,
                600,
                ProtoEvent::ReplayStep {
                    from: 0,
                    sender_clock: 1,
                    receiver_clock: 1,
                },
            ),
        ];
        let set = SpanSet::build(&tl);
        assert!(set.orphans.is_empty());
        let span = &set.spans[&(0, 1)];
        assert_eq!(span.deliveries.len(), 2);
        assert!(span.deliveries[1].replay);
    }

    #[test]
    fn sendless_delivery_is_orphan() {
        let set = SpanSet::build(&[rec(1, 1, 200, deliver(0, 9, 1))]);
        assert_eq!(set.orphans.len(), 1);
        assert_eq!(set.orphans[0].kind, OrphanKind::SendlessDelivery);
        assert_eq!(set.orphans[0].key, (0, 9));
    }

    #[test]
    fn undelivered_wire_send_is_orphan() {
        let set = SpanSet::build(&[rec(0, 1, 100, send(1, 1, SendDisposition::Wire))]);
        assert_eq!(set.orphans.len(), 1);
        assert_eq!(set.orphans[0].kind, OrphanKind::UndeliveredSend);
    }

    #[test]
    fn suppressed_only_send_is_not_orphan() {
        // A suppressed re-send whose original delivery is in the dump.
        let tl = vec![
            rec(0, 1, 100, send(1, 1, SendDisposition::Wire)),
            rec(1, 1, 200, deliver(0, 1, 1)),
            rec(0, 1, 900, send(1, 1, SendDisposition::Suppressed)),
        ];
        let set = SpanSet::build(&tl);
        assert!(set.orphans.is_empty());
        assert_eq!(set.spans[&(0, 1)].dispositions.len(), 2);
    }

    #[test]
    fn stuck_gate_at_finish_is_orphan() {
        let tl = vec![
            rec(0, 2, 100, send(1, 2, SendDisposition::Gated)),
            rec(
                0,
                2,
                110,
                ProtoEvent::GateDefer {
                    to: 1,
                    clock: 2,
                    queued: 1,
                },
            ),
            rec(0, 2, 500, ProtoEvent::Finish { clock: 2 }),
        ];
        let set = SpanSet::build(&tl);
        assert!(set
            .orphans
            .iter()
            .any(|o| o.kind == OrphanKind::StuckGate && o.key == (0, 2)));
    }

    #[test]
    fn crashed_incarnation_gated_send_is_not_stuck() {
        // The defer dies with the incarnation; the re-executed send
        // delivers. No orphan.
        let tl = vec![
            rec(0, 2, 100, send(1, 2, SendDisposition::Gated)),
            rec(
                0,
                2,
                110,
                ProtoEvent::GateDefer {
                    to: 1,
                    clock: 2,
                    queued: 1,
                },
            ),
            rec(0, 0, 300, ProtoEvent::Restart1 { rank: 0 }),
            rec(0, 0, 310, ProtoEvent::RecoveryBegin { restored_clock: 0 }),
            rec(0, 2, 400, send(1, 2, SendDisposition::Wire)),
            rec(1, 1, 600, deliver(0, 2, 1)),
            rec(0, 2, 700, ProtoEvent::Finish { clock: 2 }),
        ];
        let set = SpanSet::build(&tl);
        assert!(set.orphans.is_empty(), "{:?}", set.orphans);
    }

    #[test]
    fn replicated_ack_stitches_quorum_wait() {
        // First replica acks at t=500, quorum ack lands at t=900: the
        // span carries both legs and quorum_wait_ns is the difference.
        let tl = vec![
            rec(0, 1, 100, send(1, 1, SendDisposition::Wire)),
            rec(1, 1, 250, deliver(0, 1, 1)),
            rec(
                1,
                1,
                300,
                ProtoEvent::ElShip {
                    events: 1,
                    from_clock: 1,
                    up_to: 1,
                },
            ),
            rec(
                1,
                1,
                500,
                ProtoEvent::ElReplicaAck {
                    shard: 0,
                    replica: 1,
                    up_to: 1,
                },
            ),
            rec(
                1,
                1,
                900,
                ProtoEvent::ElAck {
                    up_to: 1,
                    batches_retired: 1,
                    rtt_ns: 600,
                },
            ),
        ];
        let set = SpanSet::build(&tl);
        assert!(set.orphans.is_empty(), "{:?}", set.orphans);
        let span = &set.spans[&(0, 1)];
        assert_eq!(span.el_rtt_ns(), Some(600), "RTT runs to the quorum ack");
        assert_eq!(span.quorum_wait_ns(), Some(400));
        assert_eq!(span.deliveries[0].el_replica_ack_ts, Some(500));
    }
}
