//! Prometheus text-format page builder shared by every health
//! endpoint in the tree.
//!
//! Both health publishers (the in-process dispatcher and the
//! multi-process supervisor) render the same metric families; before
//! this module each hand-rolled its own `format!` lines and neither
//! emitted `# HELP` / `# TYPE` headers, so scrapers flying blind had
//! to guess types. [`PromPage`] centralises the rendering: a family is
//! declared once (first sample wins), sample lines keep the exact
//! `name{labels} value` shape dashboards already match on, and the
//! emitters for families shared between endpoints ([`timing_families`],
//! [`window_families`]) live here so the two pages cannot drift apart.

use crate::hist::LogHistogram;
use crate::window::MetricsWindow;
use std::collections::BTreeSet;
use std::fmt::Display;
use std::fmt::Write as _;

/// Builder for one Prometheus text-format page.
///
/// Samples are appended in call order; `# HELP` and `# TYPE` lines are
/// emitted immediately before the first sample of each family and
/// suppressed for later samples of the same family, which is exactly
/// the layout the Prometheus text exposition format asks for.
#[derive(Debug, Default)]
pub struct PromPage {
    out: String,
    declared: BTreeSet<&'static str>,
}

impl PromPage {
    /// A fresh page opened with a free-form `# banner` comment line.
    pub fn new(banner: &str) -> Self {
        let mut p = PromPage {
            out: String::with_capacity(2048),
            declared: BTreeSet::new(),
        };
        let _ = writeln!(p.out, "# {banner}");
        p
    }

    /// Append a free-form comment line (prefixed `# `).
    pub fn comment(&mut self, text: &str) {
        let _ = writeln!(self.out, "# {text}");
    }

    /// Append one sample `name{labels} value` (no braces when `labels`
    /// is empty), declaring the family's `# HELP`/`# TYPE` lines the
    /// first time the family appears on this page.
    pub fn sample(
        &mut self,
        name: &'static str,
        kind: &'static str,
        help: &'static str,
        labels: &str,
        value: impl Display,
    ) {
        if self.declared.insert(name) {
            let _ = writeln!(self.out, "# HELP {name} {help}");
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
        if labels.is_empty() {
            let _ = writeln!(self.out, "{name} {value}");
        } else {
            let _ = writeln!(self.out, "{name}{{{labels}}} {value}");
        }
    }

    /// Finish the page and return the rendered text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Emit the cumulative protocol-interval histogram families
/// (`mvr_timing_{count,sum_ns,p50_ns,p99_ns,max_ns}{interval=…}`) for
/// each named histogram — the shape both health endpoints export.
pub fn timing_families(page: &mut PromPage, intervals: &[(&str, &LogHistogram)]) {
    for (name, h) in intervals {
        let s = h.summary();
        let l = format!("interval=\"{name}\"");
        page.sample(
            "mvr_timing_count",
            "counter",
            "Samples recorded for the protocol interval since boot.",
            &l,
            s.count,
        );
        page.sample(
            "mvr_timing_sum_ns",
            "counter",
            "Summed duration (ns) of the protocol interval since boot.",
            &l,
            s.sum,
        );
        page.sample(
            "mvr_timing_p50_ns",
            "gauge",
            "Median duration (ns) of the protocol interval since boot.",
            &l,
            s.p50,
        );
        page.sample(
            "mvr_timing_p99_ns",
            "gauge",
            "99th-percentile duration (ns) of the protocol interval since boot.",
            &l,
            s.p99,
        );
        page.sample(
            "mvr_timing_max_ns",
            "gauge",
            "Maximum duration (ns) of the protocol interval since boot.",
            &l,
            s.max,
        );
    }
}

/// Emit the per-window protocol-interval families for a ring of closed
/// windows plus the in-progress one.
///
/// Closed windows are labelled by age: `window="-1"` is the most
/// recently closed, `window="-2"` the one before, …; the in-progress
/// window is `window="current"`. Ages (rather than absolute indices)
/// keep the label set bounded, so scrape tooling sees a stable family
/// even on week-long runs.
pub fn window_families(page: &mut PromPage, closed: &[&MetricsWindow], current: &MetricsWindow) {
    let mut tagged: Vec<(String, &MetricsWindow)> = Vec::with_capacity(closed.len() + 1);
    for (i, w) in closed.iter().rev().enumerate() {
        tagged.push((format!("-{}", i + 1), w));
    }
    tagged.push(("current".to_string(), current));
    for (tag, w) in &tagged {
        page.sample(
            "mvr_window_span_ns",
            "gauge",
            "Length (ns) of the metrics window.",
            &format!("window=\"{tag}\""),
            w.span_ns(),
        );
        for (name, h) in [
            ("gate_wait", &w.timings.gate_wait),
            ("el_ack_rtt", &w.timings.el_ack_rtt),
            ("ckpt_store", &w.timings.ckpt_store),
            ("replay", &w.timings.replay),
        ] {
            let s = h.summary();
            let l = format!("interval=\"{name}\",window=\"{tag}\"");
            page.sample(
                "mvr_timing_window_count",
                "gauge",
                "Samples recorded for the protocol interval within the window.",
                &l,
                s.count,
            );
            page.sample(
                "mvr_timing_window_p50_ns",
                "gauge",
                "Median duration (ns) of the protocol interval within the window.",
                &l,
                s.p50,
            );
            page.sample(
                "mvr_timing_window_p99_ns",
                "gauge",
                "99th-percentile duration (ns) of the protocol interval within the window.",
                &l,
                s.p99,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timings::ProtocolTimings;
    use crate::window::WindowRing;

    #[test]
    fn help_and_type_emitted_once_per_family_before_first_sample() {
        let mut page = PromPage::new("test page");
        page.sample("mvr_up", "gauge", "Run liveness.", "", 1);
        page.sample("mvr_rank_alive", "gauge", "Rank liveness.", "rank=\"0\"", 1);
        page.sample("mvr_rank_alive", "gauge", "Rank liveness.", "rank=\"1\"", 0);
        let out = page.finish();
        assert_eq!(out.matches("# HELP mvr_rank_alive").count(), 1, "{out}");
        assert_eq!(out.matches("# TYPE mvr_rank_alive gauge").count(), 1);
        // Declaration precedes the first sample of the family.
        let decl = out.find("# TYPE mvr_rank_alive").expect("declared");
        let first = out.find("mvr_rank_alive{rank=\"0\"} 1").expect("sampled");
        assert!(decl < first, "{out}");
        // Sample-line shape is unchanged from the pre-HELP pages.
        assert!(out.contains("mvr_up 1\n"), "{out}");
        assert!(out.contains("mvr_rank_alive{rank=\"1\"} 0\n"), "{out}");
    }

    #[test]
    fn timing_and_window_families_render_every_interval() {
        let mut t = ProtocolTimings::new();
        t.gate_wait.record(1_000);
        t.replay.record(2_000);
        let mut ring = WindowRing::new(0, 1_000, 4);
        ring.advance(1_500, &t);
        let mut page = PromPage::new("x");
        timing_families(
            &mut page,
            &[("gate_wait", &t.gate_wait), ("replay", &t.replay)],
        );
        let closed: Vec<_> = ring.closed().collect();
        window_families(&mut page, &closed, &ring.current(1_600, &t));
        let out = page.finish();
        assert!(out.contains("mvr_timing_count{interval=\"gate_wait\"} 1"));
        assert!(out.contains("mvr_timing_count{interval=\"replay\"} 1"));
        assert!(out.contains("# TYPE mvr_timing_window_count gauge"));
        assert!(out.contains("mvr_timing_window_count{interval=\"gate_wait\",window=\"-1\"} 1"));
        assert!(
            out.contains("mvr_timing_window_count{interval=\"gate_wait\",window=\"current\"} 0")
        );
        assert!(out.contains("mvr_window_span_ns{window=\"-1\"} 1000"));
    }
}
