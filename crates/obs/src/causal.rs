//! The cross-rank happens-before DAG of a merged timeline, and the
//! critical path through it with per-component attribution.
//!
//! Nodes are timeline records; edges are the protocol's causal
//! dependencies: per-rank program order, send → delivery (network),
//! gate defer → gate open (pessimism stall), EL ship → EL ack
//! (logging round-trip), checkpoint begin → commit (upload), and
//! recovery begin → replay done (replay).
//!
//! Every edge's weight is the timestamp difference of its endpoints,
//! so *all* start→end paths telescope to the same total — the path
//! itself is not interesting, its *composition* is. The critical path
//! is therefore reconstructed backwards from the last record, at each
//! node following the incoming edge whose source is latest: that edge
//! is the binding dependency (the one the node actually waited for),
//! and summing each hop's Δt per edge category attributes the run's
//! wall-clock to gate waits vs. EL round-trips vs. checkpoints vs.
//! replay vs. plain computation.

use crate::event::{FlightRecord, ProtoEvent};
use crate::span::{SpanKey, SpanSet};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::Path;

/// Category of a happens-before edge — the component a hop's wall
/// clock is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeCat {
    /// Per-rank program order (computation / local progress).
    Local,
    /// Send → delivery across the network.
    Net,
    /// Gate defer → gate open (pessimism stall).
    GateWait,
    /// EL ship → EL ack (logging round-trip).
    ElRtt,
    /// Checkpoint begin → commit (image upload).
    CkptStore,
    /// Recovery begin → replay done, and send → replayed delivery.
    Replay,
}

impl EdgeCat {
    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            EdgeCat::Local => "local",
            EdgeCat::Net => "network",
            EdgeCat::GateWait => "gate-wait",
            EdgeCat::ElRtt => "el-rtt",
            EdgeCat::CkptStore => "ckpt-store",
            EdgeCat::Replay => "replay",
        }
    }
}

/// The happens-before DAG over a merged timeline. Node `i` is
/// `timeline[i]`.
#[derive(Debug, Default)]
pub struct CausalGraph {
    /// Incoming edges per node: `(source index, category)`.
    preds: Vec<Vec<(usize, EdgeCat)>>,
    edges: usize,
}

impl CausalGraph {
    /// Build the DAG from a merged, per-rank-ordered timeline.
    pub fn build(timeline: &[FlightRecord]) -> CausalGraph {
        let mut g = CausalGraph {
            preds: vec![Vec::new(); timeline.len()],
            edges: 0,
        };
        let mut prev_of_rank: HashMap<u32, usize> = HashMap::new();
        let mut send_of: HashMap<SpanKey, usize> = HashMap::new();
        let mut defers_of_rank: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut ships_of_rank: HashMap<u32, Vec<(u64, usize)>> = HashMap::new();
        let mut ckpt_of: HashMap<(u32, u64), usize> = HashMap::new();
        let mut recovery_of_rank: HashMap<u32, usize> = HashMap::new();
        for (i, rec) in timeline.iter().enumerate() {
            if let Some(&p) = prev_of_rank.get(&rec.rank) {
                g.add(p, i, EdgeCat::Local);
            }
            prev_of_rank.insert(rec.rank, i);
            match &rec.event {
                ProtoEvent::Send { clock, .. } => {
                    send_of.entry((rec.rank, *clock)).or_insert(i);
                }
                ProtoEvent::GateDefer { .. } => {
                    defers_of_rank.entry(rec.rank).or_default().push(i);
                }
                ProtoEvent::GateOpen { .. } => {
                    for d in defers_of_rank.entry(rec.rank).or_default().drain(..) {
                        g.add(d, i, EdgeCat::GateWait);
                    }
                }
                ProtoEvent::Deliver {
                    from, sender_clock, ..
                } => {
                    if let Some(&s) = send_of.get(&(*from, *sender_clock)) {
                        g.add(s, i, EdgeCat::Net);
                    }
                }
                ProtoEvent::ReplayStep {
                    from, sender_clock, ..
                } => {
                    if let Some(&s) = send_of.get(&(*from, *sender_clock)) {
                        g.add(s, i, EdgeCat::Replay);
                    }
                }
                ProtoEvent::ElShip { up_to, .. } => {
                    ships_of_rank.entry(rec.rank).or_default().push((*up_to, i));
                }
                ProtoEvent::ElAck { up_to, .. } => {
                    let ships = ships_of_rank.entry(rec.rank).or_default();
                    let mut kept = Vec::new();
                    for (ship_up_to, s) in ships.drain(..) {
                        if ship_up_to <= *up_to {
                            g.add(s, i, EdgeCat::ElRtt);
                        } else {
                            kept.push((ship_up_to, s));
                        }
                    }
                    *ships = kept;
                }
                ProtoEvent::CkptBegin { seq, .. } => {
                    ckpt_of.insert((rec.rank, *seq), i);
                }
                ProtoEvent::CkptCommit { seq, .. } => {
                    if let Some(&b) = ckpt_of.get(&(rec.rank, *seq)) {
                        g.add(b, i, EdgeCat::CkptStore);
                    }
                }
                ProtoEvent::RecoveryBegin { .. } => {
                    recovery_of_rank.insert(rec.rank, i);
                    // In-flight EL batches and defers died with the
                    // previous incarnation.
                    ships_of_rank.entry(rec.rank).or_default().clear();
                    defers_of_rank.entry(rec.rank).or_default().clear();
                }
                ProtoEvent::ReplayDone { .. } => {
                    if let Some(r) = recovery_of_rank.remove(&rec.rank) {
                        g.add(r, i, EdgeCat::Replay);
                    }
                }
                _ => {}
            }
        }
        g
    }

    fn add(&mut self, from: usize, to: usize, cat: EdgeCat) {
        self.preds[to].push((from, cat));
        self.edges += 1;
    }

    /// Number of edges in the DAG.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Number of nodes in the DAG.
    pub fn node_count(&self) -> usize {
        self.preds.len()
    }

    /// Reconstruct the critical path ending at the timeline's last
    /// record (the run's completion). `None` on an empty timeline.
    pub fn critical_path(&self, timeline: &[FlightRecord]) -> Option<CriticalPath> {
        let end = (0..timeline.len()).max_by_key(|&i| (timeline[i].ts_ns, i))?;
        let mut steps = Vec::new();
        let mut by_category: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut cur = end;
        // The DAG is acyclic (edges follow causality), so the walk
        // terminates; the cap is a defensive bound against a future
        // edge-construction bug turning it into a livelock.
        for _ in 0..=self.preds.len() {
            let Some(&(pred, cat)) = self.preds[cur]
                .iter()
                .max_by_key(|(p, _)| (timeline[*p].ts_ns, *p))
            else {
                break;
            };
            let dt = timeline[cur].ts_ns.saturating_sub(timeline[pred].ts_ns);
            *by_category.entry(cat.name()).or_insert(0) += dt;
            steps.push(CriticalStep {
                from_idx: pred,
                to_idx: cur,
                cat,
                dt_ns: dt,
            });
            cur = pred;
        }
        steps.reverse();
        Some(CriticalPath {
            total_ns: timeline[end].ts_ns.saturating_sub(timeline[cur].ts_ns),
            start_idx: cur,
            end_idx: end,
            steps,
            by_category,
        })
    }
}

/// One hop of the critical path.
#[derive(Clone, Copy, Debug)]
pub struct CriticalStep {
    /// Source node (timeline index).
    pub from_idx: usize,
    /// Target node (timeline index).
    pub to_idx: usize,
    /// Edge category the hop's Δt is attributed to.
    pub cat: EdgeCat,
    /// Nanoseconds between the two records.
    pub dt_ns: u64,
}

/// The binding-dependency chain from the run's first implicated record
/// to its last, with wall-clock attribution per edge category.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Nanoseconds covered by the path.
    pub total_ns: u64,
    /// Timeline index the path starts at.
    pub start_idx: usize,
    /// Timeline index the path ends at (the run's last record).
    pub end_idx: usize,
    /// Hops, oldest first.
    pub steps: Vec<CriticalStep>,
    /// Total nanoseconds attributed to each edge category.
    pub by_category: BTreeMap<&'static str, u64>,
}

impl CriticalPath {
    /// The category holding the most wall-clock, `(name, ns)`.
    pub fn dominant(&self) -> Option<(&'static str, u64)> {
        self.by_category
            .iter()
            .max_by_key(|(name, ns)| (**ns, **name))
            .map(|(name, ns)| (*name, *ns))
    }

    /// Multi-line human report of the attribution and longest hops.
    pub fn report(&self, timeline: &[FlightRecord], top: usize) -> String {
        let mut out = format!(
            "critical path: {} hops, {}ns total\n",
            self.steps.len(),
            self.total_ns
        );
        let mut cats: Vec<(&'static str, u64)> =
            self.by_category.iter().map(|(n, v)| (*n, *v)).collect();
        cats.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        for (name, ns) in &cats {
            let pct = if self.total_ns > 0 {
                *ns as f64 * 100.0 / self.total_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!("  {name}: {ns}ns ({pct:.1}%)\n"));
        }
        if let Some((name, ns)) = self.dominant() {
            out.push_str(&format!("  dominant component: {name} ({ns}ns)\n"));
        }
        let mut slow: Vec<&CriticalStep> = self.steps.iter().collect();
        slow.sort_by_key(|s| std::cmp::Reverse(s.dt_ns));
        for s in slow.iter().take(top) {
            let from = &timeline[s.from_idx];
            let to = &timeline[s.to_idx];
            out.push_str(&format!(
                "  hop: r{} {} → r{} {} = {}ns [{}]\n",
                from.rank,
                from.event.kind(),
                to.rank,
                to.event.kind(),
                s.dt_ns,
                s.cat.name()
            ));
        }
        out
    }
}

#[derive(Serialize)]
struct FlowSlice {
    name: String,
    cat: String,
    ph: String,
    ts: f64,
    dur: f64,
    pid: u64,
    tid: u64,
}

#[derive(Serialize)]
struct FlowEvent {
    name: String,
    cat: String,
    ph: String,
    id: u64,
    ts: f64,
    pid: u64,
    tid: u64,
}

#[derive(Serialize)]
struct FlowEnd {
    name: String,
    cat: String,
    ph: String,
    bp: String,
    id: u64,
    ts: f64,
    pid: u64,
    tid: u64,
}

/// Write per-edge Perfetto flow events for every delivered span: a thin
/// slice at the send and at each delivery, connected by a `"s"`/`"f"`
/// flow arrow, so Perfetto draws every message's path across rank
/// tracks. Load alongside (or instead of) the instant-event trace.
pub fn write_flow_trace(path: &Path, spans: &SpanSet) -> std::io::Result<()> {
    let as_io =
        |e: serde_json::Error| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string());
    let mut events: Vec<String> = Vec::new();
    let mut flow_id = 0u64;
    for ((sender, sender_clock), span) in &spans.spans {
        let Some(send_ts) = span.send_ts else {
            continue;
        };
        let name = format!("msg {sender}:{sender_clock}");
        let send_us = send_ts as f64 / 1000.0;
        if !span.deliveries.is_empty() {
            events.push(
                serde_json::to_string(&FlowSlice {
                    name: name.clone(),
                    cat: "span".into(),
                    ph: "X".into(),
                    ts: send_us,
                    dur: 1.0,
                    pid: *sender as u64,
                    tid: 2,
                })
                .map_err(as_io)?,
            );
        }
        for leg in &span.deliveries {
            flow_id += 1;
            let deliver_us = leg.ts_ns as f64 / 1000.0;
            let cat = if leg.replay { "replay" } else { "flow" };
            events.push(
                serde_json::to_string(&FlowSlice {
                    name: name.clone(),
                    cat: "span".into(),
                    ph: "X".into(),
                    ts: deliver_us,
                    dur: 1.0,
                    pid: leg.receiver as u64,
                    tid: 2,
                })
                .map_err(as_io)?,
            );
            events.push(
                serde_json::to_string(&FlowEvent {
                    name: name.clone(),
                    cat: cat.into(),
                    ph: "s".into(),
                    id: flow_id,
                    ts: send_us + 0.5,
                    pid: *sender as u64,
                    tid: 2,
                })
                .map_err(as_io)?,
            );
            events.push(
                serde_json::to_string(&FlowEnd {
                    name: name.clone(),
                    cat: cat.into(),
                    ph: "f".into(),
                    bp: "e".into(),
                    id: flow_id,
                    ts: deliver_us + 0.5,
                    pid: leg.receiver as u64,
                    tid: 2,
                })
                .map_err(as_io)?,
            );
        }
    }
    let body = format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    );
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SendDisposition;

    fn rec(rank: u32, clock: u64, ts_ns: u64, event: ProtoEvent) -> FlightRecord {
        FlightRecord {
            rank,
            clock,
            ts_ns,
            event,
        }
    }

    fn send(to: u32, clock: u64, disposition: SendDisposition) -> ProtoEvent {
        ProtoEvent::Send {
            to,
            clock,
            bytes: 8,
            disposition,
        }
    }

    fn deliver(from: u32, sc: u64, rc: u64) -> ProtoEvent {
        ProtoEvent::Deliver {
            from,
            sender_clock: sc,
            receiver_clock: rc,
            replay: false,
        }
    }

    /// rank 0 sends; rank 1 delivers, ships, waits a long EL RTT, then
    /// finishes. The EL round-trip dominates the critical path.
    fn el_bound_timeline() -> Vec<FlightRecord> {
        vec![
            rec(0, 1, 100, send(1, 1, SendDisposition::Wire)),
            rec(1, 1, 200, deliver(0, 1, 1)),
            rec(
                1,
                1,
                250,
                ProtoEvent::ElShip {
                    events: 1,
                    from_clock: 1,
                    up_to: 1,
                },
            ),
            rec(
                1,
                1,
                9_000,
                ProtoEvent::ElAck {
                    up_to: 1,
                    batches_retired: 1,
                    rtt_ns: 8_750,
                },
            ),
            rec(1, 1, 9_100, ProtoEvent::Finish { clock: 1 }),
        ]
    }

    #[test]
    fn dag_has_expected_edges() {
        let tl = el_bound_timeline();
        let g = CausalGraph::build(&tl);
        // Local: 0 edges on rank 0 (single record), 3 on rank 1.
        // Cross: send→deliver, ship→ack.
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn critical_path_names_dominant_component() {
        let tl = el_bound_timeline();
        let g = CausalGraph::build(&tl);
        let cp = g.critical_path(&tl).unwrap();
        // 9_100 - 100 = 9_000 total, of which 8_750 is the EL RTT.
        assert_eq!(cp.total_ns, 9_000);
        let (name, ns) = cp.dominant().unwrap();
        assert_eq!(name, "el-rtt");
        assert_eq!(ns, 8_750);
        let report = cp.report(&tl, 3);
        assert!(report.contains("dominant component: el-rtt"), "{report}");
    }

    #[test]
    fn paths_telescope_to_the_same_total() {
        // Two parallel chains converging on the last record: the walk
        // picks the binding (latest-source) dependency at each node,
        // and the total equals end-start regardless of route.
        let tl = vec![
            rec(0, 1, 0, send(1, 1, SendDisposition::Wire)),
            rec(0, 2, 10, send(2, 2, SendDisposition::Wire)),
            rec(2, 1, 4000, deliver(0, 2, 1)),
            rec(1, 1, 5000, deliver(0, 1, 1)),
        ];
        let g = CausalGraph::build(&tl);
        let cp = g.critical_path(&tl).unwrap();
        assert_eq!(cp.total_ns, 5000);
        // Binding pred of the last deliver is the send at ts=0 on the
        // network edge (rank 1 has no other records).
        assert_eq!(cp.steps.last().unwrap().cat, EdgeCat::Net);
    }

    #[test]
    fn gate_wait_attributed() {
        let tl = vec![
            rec(1, 1, 0, deliver(0, 9, 1)),
            rec(
                1,
                2,
                10,
                ProtoEvent::GateDefer {
                    to: 0,
                    clock: 2,
                    queued: 1,
                },
            ),
            rec(
                1,
                1,
                20,
                ProtoEvent::ElShip {
                    events: 1,
                    from_clock: 1,
                    up_to: 1,
                },
            ),
            rec(
                1,
                1,
                3_000,
                ProtoEvent::ElAck {
                    up_to: 1,
                    batches_retired: 1,
                    rtt_ns: 2_980,
                },
            ),
            rec(
                1,
                2,
                3_050,
                ProtoEvent::GateOpen {
                    released: 1,
                    waited_ns: 3_040,
                },
            ),
        ];
        let g = CausalGraph::build(&tl);
        let cp = g.critical_path(&tl).unwrap();
        // GateOpen's binding pred is the ElAck at 3_000 (local edge) —
        // gate-wait appears in the DAG but the ack is later.
        assert!(cp.by_category.contains_key("local"));
        // The defer→open edge exists.
        assert_eq!(
            g.preds[4]
                .iter()
                .filter(|(_, c)| *c == EdgeCat::GateWait)
                .count(),
            1
        );
    }

    #[test]
    fn flow_trace_renders() {
        let tl = el_bound_timeline();
        let spans = SpanSet::build(&tl);
        let dir = std::env::temp_dir().join("mvr-obs-flow-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flow.trace.json");
        write_flow_trace(&path, &spans).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"ph\":\"s\""), "{body}");
        assert!(body.contains("\"ph\":\"f\""), "{body}");
        assert!(body.contains("msg 0:1"), "{body}");
    }

    #[test]
    fn empty_timeline_has_no_critical_path() {
        let g = CausalGraph::build(&[]);
        assert!(g.critical_path(&[]).is_none());
    }
}
