//! A minimal JSON reader for flight-recorder dumps.
//!
//! The vendored `serde_json` stand-in is write-only, so `obs_analyze`
//! needs its own way back from a `.jsonl` dump to [`FlightRecord`]s.
//! This is a small recursive-descent parser over exactly the JSON the
//! dump writer emits — objects, arrays, strings, booleans and integers
//! (unsigned record fields plus the signed clock offsets in the dump
//! header) — plus a decoder for the externally-tagged [`ProtoEvent`]
//! rendering (`{"Send":{...}}`, unit enum variants as bare strings).

use crate::dump::DumpHeader;
use crate::event::{FlightRecord, ProtoEvent, SendDisposition};
use crate::skew::{RankOffset, RankTrack};

/// A parsed JSON value (only the shapes the dump writer produces).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (every record field).
    Int(u64),
    /// A negative integer (clock offsets in the dump header).
    NegInt(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer of either sign.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => i64::try_from(*v).ok(),
            Json::NegInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|_| Json::Null),
            Some(b'0'..=b'9') | Some(b'-') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits after `-`"));
        }
        if matches!(
            self.peek(),
            Some(b'.') | Some(b'e') | Some(b'E') | Some(b'-') | Some(b'+')
        ) {
            return Err(self.err("non-integer numbers do not appear in dumps"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are UTF-8");
        if negative {
            text.parse::<i64>()
                .map(Json::NegInt)
                .map_err(|e| self.err(&format!("bad integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Json::Int)
                .map_err(|e| self.err(&format!("bad integer `{text}`: {e}")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: the writer never emits
                            // them (it escapes only controls), but
                            // accept them for robustness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.eat_lit("\\u")?;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unharmed: advance
                    // to the next char boundary.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }
}

/// Parse one JSON document.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field `{key}` in {obj:?}"))
}

fn field_u32(obj: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(field_u64(obj, key)?).map_err(|_| format!("field `{key}` exceeds u32"))
}

fn field_i64(obj: &Json, key: &str) -> Result<i64, String> {
    obj.get(key)
        .and_then(Json::as_i64)
        .ok_or_else(|| format!("missing integer field `{key}` in {obj:?}"))
}

fn field_bool(obj: &Json, key: &str) -> Result<bool, String> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing bool field `{key}` in {obj:?}"))
}

fn field_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}` in {obj:?}"))
}

fn decode_disposition(v: &Json) -> Result<SendDisposition, String> {
    match v.as_str() {
        Some("Wire") => Ok(SendDisposition::Wire),
        Some("Gated") => Ok(SendDisposition::Gated),
        Some("Suppressed") => Ok(SendDisposition::Suppressed),
        _ => Err(format!("bad SendDisposition: {v:?}")),
    }
}

fn decode_event(v: &Json) -> Result<ProtoEvent, String> {
    let Json::Obj(fields) = v else {
        return Err(format!("event is not an object: {v:?}"));
    };
    let [(name, body)] = fields.as_slice() else {
        return Err(format!("event object must have exactly one tag: {v:?}"));
    };
    Ok(match name.as_str() {
        "Send" => ProtoEvent::Send {
            to: field_u32(body, "to")?,
            clock: field_u64(body, "clock")?,
            bytes: field_u64(body, "bytes")?,
            disposition: decode_disposition(
                body.get("disposition")
                    .ok_or_else(|| format!("missing disposition in {body:?}"))?,
            )?,
        },
        "GateDefer" => ProtoEvent::GateDefer {
            to: field_u32(body, "to")?,
            clock: field_u64(body, "clock")?,
            queued: field_u64(body, "queued")?,
        },
        "GateOpen" => ProtoEvent::GateOpen {
            released: field_u64(body, "released")?,
            waited_ns: field_u64(body, "waited_ns")?,
        },
        "Deliver" => ProtoEvent::Deliver {
            from: field_u32(body, "from")?,
            sender_clock: field_u64(body, "sender_clock")?,
            receiver_clock: field_u64(body, "receiver_clock")?,
            replay: field_bool(body, "replay")?,
        },
        "DuplicateDropped" => ProtoEvent::DuplicateDropped {
            from: field_u32(body, "from")?,
            sender_clock: field_u64(body, "sender_clock")?,
        },
        "ElShip" => ProtoEvent::ElShip {
            events: field_u64(body, "events")?,
            from_clock: field_u64(body, "from_clock")?,
            up_to: field_u64(body, "up_to")?,
        },
        "ElAck" => ProtoEvent::ElAck {
            up_to: field_u64(body, "up_to")?,
            batches_retired: field_u64(body, "batches_retired")?,
            rtt_ns: field_u64(body, "rtt_ns")?,
        },
        "CkptBegin" => ProtoEvent::CkptBegin {
            seq: field_u64(body, "seq")?,
            bytes: field_u64(body, "bytes")?,
        },
        "CkptCommit" => ProtoEvent::CkptCommit {
            seq: field_u64(body, "seq")?,
            store_ns: field_u64(body, "store_ns")?,
        },
        "CkptGc" => ProtoEvent::CkptGc {
            peer: field_u32(body, "peer")?,
            bytes_freed: field_u64(body, "bytes_freed")?,
        },
        "Restart1" => ProtoEvent::Restart1 {
            rank: field_u32(body, "rank")?,
        },
        "Restart2" => ProtoEvent::Restart2 {
            peer: field_u32(body, "peer")?,
            watermark: field_u64(body, "watermark")?,
        },
        "RecoveryBegin" => ProtoEvent::RecoveryBegin {
            restored_clock: field_u64(body, "restored_clock")?,
        },
        "ReplayStep" => ProtoEvent::ReplayStep {
            from: field_u32(body, "from")?,
            sender_clock: field_u64(body, "sender_clock")?,
            receiver_clock: field_u64(body, "receiver_clock")?,
        },
        "ReplayDone" => ProtoEvent::ReplayDone {
            replayed: field_u64(body, "replayed")?,
            replay_ns: field_u64(body, "replay_ns")?,
        },
        "ChaosKill" => ProtoEvent::ChaosKill {
            victim: field_u32(body, "victim")?,
            rekill: field_bool(body, "rekill")?,
        },
        "ServiceKill" => ProtoEvent::ServiceKill {
            service: field_str(body, "service")?,
        },
        "Finish" => ProtoEvent::Finish {
            clock: field_u64(body, "clock")?,
        },
        "RespawnScheduled" => ProtoEvent::RespawnScheduled {
            rank: field_u32(body, "rank")?,
            attempt: field_u64(body, "attempt")?,
        },
        "Divergence" => ProtoEvent::Divergence {
            detail: field_str(body, "detail")?,
        },
        "ElReplicaAck" => ProtoEvent::ElReplicaAck {
            shard: field_u32(body, "shard")?,
            replica: field_u32(body, "replica")?,
            up_to: field_u64(body, "up_to")?,
        },
        "ElReplicaRevive" => ProtoEvent::ElReplicaRevive {
            shard: field_u32(body, "shard")?,
            replica: field_u32(body, "replica")?,
            caught_up: field_u64(body, "caught_up")?,
        },
        "TransportUp" => ProtoEvent::TransportUp {
            peer: field_str(body, "peer")?,
            incarnation: field_u64(body, "incarnation")?,
        },
        "TransportDown" => ProtoEvent::TransportDown {
            peer: field_str(body, "peer")?,
            cause: field_str(body, "cause")?,
        },
        other => return Err(format!("unknown event tag `{other}`")),
    })
}

/// Decode one JSONL record line.
pub fn parse_record_line(line: &str) -> Result<FlightRecord, String> {
    let v = parse(line)?;
    Ok(FlightRecord {
        rank: field_u32(&v, "rank")?,
        clock: field_u64(&v, "clock")?,
        ts_ns: field_u64(&v, "ts_ns")?,
        event: decode_event(
            v.get("event")
                .ok_or_else(|| format!("missing `event` in {line}"))?,
        )?,
    })
}

/// Decode a header line, or `None` if the line is not a header. The
/// `offsets`, `track` and `unconstrained` fields are all optional:
/// dumps written before the skew-corrected (or drift-corrected) merge
/// carry none, and every field degrades to empty independently.
pub fn parse_header_line(line: &str) -> Option<DumpHeader> {
    let v = parse(line).ok()?;
    let h = v.get("header")?;
    let mut offsets = Vec::new();
    if let Some(Json::Arr(items)) = h.get("offsets") {
        for item in items {
            offsets.push(RankOffset {
                rank: field_u32(item, "rank").ok()?,
                offset_ns: field_i64(item, "offset_ns").ok()?,
            });
        }
    }
    let mut track = Vec::new();
    if let Some(Json::Arr(items)) = h.get("track") {
        for item in items {
            let mut anchors = Vec::new();
            if let Some(Json::Arr(vals)) = item.get("anchors") {
                for a in vals {
                    anchors.push(a.as_i64()?);
                }
            }
            track.push(RankTrack {
                rank: field_u32(item, "rank").ok()?,
                start_ns: field_u64(item, "start_ns").ok()?,
                seg_ns: field_u64(item, "seg_ns").ok()?,
                anchors,
            });
        }
    }
    let mut unconstrained = Vec::new();
    if let Some(Json::Arr(items)) = h.get("unconstrained") {
        for item in items {
            unconstrained.push(u32::try_from(item.as_u64()?).ok()?);
        }
    }
    Some(DumpHeader {
        records: h.get("records")?.as_u64()?,
        dropped: h.get("dropped")?.as_u64()?,
        offsets,
        track,
        unconstrained,
    })
}

/// Decode a whole JSONL dump: optional header line, then records.
/// Headerless dumps (pre-header format) still parse.
pub fn parse_dump(text: &str) -> Result<(Option<DumpHeader>, Vec<FlightRecord>), String> {
    let mut header = None;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if i == 0 {
            if let Some(h) = parse_header_line(line) {
                header = Some(h);
                continue;
            }
        }
        records.push(parse_record_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{header_line, jsonl_line};

    #[test]
    fn scalars_and_containers_parse() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-42").unwrap(), Json::NegInt(-42));
        assert_eq!(parse("-42").unwrap().as_i64(), Some(-42));
        assert_eq!(parse("42").unwrap().as_i64(), Some(42));
        assert_eq!(parse("-42").unwrap().as_u64(), None);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" null ").unwrap(), Json::Null);
        assert_eq!(
            parse("[1,2,3]").unwrap(),
            Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Int(3)])
        );
        let obj = parse(r#"{"a":1,"b":"x"}"#).unwrap();
        assert_eq!(obj.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(obj.get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse(r#""quote \" slash \\ nl \n tab \t u \u0007""#).unwrap();
        assert_eq!(v.as_str(), Some("quote \" slash \\ nl \n tab \t u \u{7}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("42 extra").is_err());
        assert!(parse("-").is_err());
        assert!(parse("-1.5").is_err());
    }

    #[test]
    fn every_event_kind_roundtrips_through_the_writer() {
        let samples = vec![
            ProtoEvent::Send {
                to: 1,
                clock: 5,
                bytes: 64,
                disposition: SendDisposition::Gated,
            },
            ProtoEvent::GateDefer {
                to: 1,
                clock: 5,
                queued: 2,
            },
            ProtoEvent::GateOpen {
                released: 2,
                waited_ns: 900,
            },
            ProtoEvent::Deliver {
                from: 0,
                sender_clock: 5,
                receiver_clock: 9,
                replay: false,
            },
            ProtoEvent::DuplicateDropped {
                from: 0,
                sender_clock: 5,
            },
            ProtoEvent::ElShip {
                events: 3,
                from_clock: 7,
                up_to: 9,
            },
            ProtoEvent::ElAck {
                up_to: 9,
                batches_retired: 1,
                rtt_ns: 1200,
            },
            ProtoEvent::CkptBegin { seq: 2, bytes: 100 },
            ProtoEvent::CkptCommit {
                seq: 2,
                store_ns: 500,
            },
            ProtoEvent::CkptGc {
                peer: 1,
                bytes_freed: 40,
            },
            ProtoEvent::Restart1 { rank: 3 },
            ProtoEvent::Restart2 {
                peer: 1,
                watermark: 8,
            },
            ProtoEvent::RecoveryBegin { restored_clock: 4 },
            ProtoEvent::ReplayStep {
                from: 0,
                sender_clock: 5,
                receiver_clock: 6,
            },
            ProtoEvent::ReplayDone {
                replayed: 4,
                replay_ns: 8000,
            },
            ProtoEvent::ChaosKill {
                victim: 2,
                rekill: true,
            },
            ProtoEvent::ServiceKill {
                service: "el0".into(),
            },
            ProtoEvent::Finish { clock: 20 },
            ProtoEvent::RespawnScheduled {
                rank: 2,
                attempt: 1,
            },
            ProtoEvent::Divergence {
                detail: "sum mismatch \"x\"\n".into(),
            },
            ProtoEvent::ElReplicaAck {
                shard: 2,
                replica: 1,
                up_to: 33,
            },
            ProtoEvent::ElReplicaRevive {
                shard: 0,
                replica: 1,
                caught_up: 12,
            },
            ProtoEvent::TransportUp {
                peer: "cn2".into(),
                incarnation: 1,
            },
            ProtoEvent::TransportDown {
                peer: "cn2".into(),
                cause: "eof".into(),
            },
        ];
        for (i, event) in samples.into_iter().enumerate() {
            let rec = FlightRecord {
                rank: i as u32,
                clock: i as u64,
                ts_ns: 10_000 + i as u64,
                event,
            };
            let line = jsonl_line(&rec);
            let back = parse_record_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, rec, "{line}");
        }
    }

    #[test]
    fn dump_with_header_parses() {
        let rec = FlightRecord {
            rank: 0,
            clock: 1,
            ts_ns: 10,
            event: ProtoEvent::Finish { clock: 1 },
        };
        let text = format!(
            "{}\n{}\n",
            header_line(&crate::dump::DumpHeader {
                records: 1,
                dropped: 2,
                offsets: Vec::new(),
                track: Vec::new(),
                unconstrained: Vec::new(),
            }),
            jsonl_line(&rec)
        );
        let (header, records) = parse_dump(&text).unwrap();
        assert_eq!(
            header,
            Some(DumpHeader {
                records: 1,
                dropped: 2,
                offsets: Vec::new(),
                track: Vec::new(),
                unconstrained: Vec::new(),
            })
        );
        assert_eq!(records, vec![rec]);
    }

    #[test]
    fn legacy_header_without_track_fields_still_parses() {
        // Dumps written before the drift-aware merge lack `track` and
        // `unconstrained`; both must degrade to empty, not to None.
        let line = r#"{"header":{"records":5,"dropped":1,"offsets":[{"rank":2,"offset_ns":300}]}}"#;
        let h = parse_header_line(line).expect("legacy header parses");
        assert_eq!(h.records, 5);
        assert_eq!(h.offsets.len(), 1);
        assert!(h.track.is_empty());
        assert!(h.unconstrained.is_empty());
    }

    #[test]
    fn header_track_and_unconstrained_roundtrip() {
        let hdr = crate::dump::DumpHeader {
            records: 7,
            dropped: 0,
            offsets: Vec::new(),
            track: vec![RankTrack {
                rank: 1,
                start_ns: 1_000_000,
                seg_ns: 250_000,
                anchors: vec![0, 5_000, -20, 11_000],
            }],
            unconstrained: vec![3, 9],
        };
        let line = header_line(&hdr);
        assert!(line.contains("\"track\""), "{line}");
        assert!(line.contains("\"unconstrained\":[3,9]"), "{line}");
        let back = parse_header_line(&line).expect("header parses");
        assert_eq!(back, hdr);
    }

    #[test]
    fn header_offsets_roundtrip_including_negative() {
        let hdr = crate::dump::DumpHeader {
            records: 3,
            dropped: 0,
            offsets: vec![
                RankOffset {
                    rank: 1,
                    offset_ns: 5_000_000,
                },
                RankOffset {
                    rank: 2,
                    offset_ns: -250,
                },
            ],
            track: Vec::new(),
            unconstrained: Vec::new(),
        };
        let line = header_line(&hdr);
        assert!(line.contains("-250"), "{line}");
        let back = parse_header_line(&line).expect("header parses");
        assert_eq!(back, hdr);
    }

    #[test]
    fn headerless_dump_still_parses() {
        let rec = FlightRecord {
            rank: 0,
            clock: 1,
            ts_ns: 10,
            event: ProtoEvent::Restart1 { rank: 0 },
        };
        let (header, records) = parse_dump(&format!("{}\n", jsonl_line(&rec))).unwrap();
        assert_eq!(header, None);
        assert_eq!(records, vec![rec]);
    }
}
