//! The flight recorder: a lock-light per-engine ring buffer of
//! [`FlightRecord`]s, plus the [`RecorderHub`] that owns the shared
//! monotonic epoch and collects every recorder for post-mortem dumps.

use crate::dump::{self, DumpPaths};
use crate::event::{FlightRecord, ProtoEvent};
use crate::monitor::RecordSink;
use parking_lot::Mutex;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How a deployment's recorders behave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Record events at all. When `false`, [`Recorder::record`] is a
    /// single relaxed atomic load — the benchmark-safe fast path.
    pub enabled: bool,
    /// Ring capacity per recorder; the oldest records are overwritten
    /// once full (the overwrite count is preserved for triage).
    pub capacity: usize,
    /// Mirror every record to stderr as it is written — the successor
    /// of the old `MVR_ENGINE_TRACE=1` eprintln spew.
    pub trace_stderr: bool,
    /// Flush cadence for streaming JSONL sinks fed by this deployment's
    /// recorders: write out every N records. 1 (the default) writes per
    /// record — the SIGKILL-durable discipline; larger values batch
    /// syscalls at the cost of up to N−1 records on an abrupt kill.
    pub stream_flush_every: u32,
    /// Injected clock drift in parts-per-billion, applied to
    /// [`Recorder::now_ns`]: every elapsed second gains (positive) or
    /// loses (negative) this many nanoseconds. 0 — the default, and
    /// the only sane production value — leaves the clock untouched.
    /// Test harnesses use it to simulate a node whose oscillator runs
    /// fast or slow, exercising the drift-aware skew correction on the
    /// merge path.
    pub clock_drift_ppb: i64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            enabled: false,
            capacity: 4096,
            trace_stderr: false,
            stream_flush_every: 1,
            clock_drift_ppb: 0,
        }
    }
}

impl RecorderConfig {
    /// Recording on, stderr mirroring off.
    pub fn enabled() -> Self {
        RecorderConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

struct Ring {
    buf: Vec<FlightRecord>,
    capacity: usize,
    /// Next write position once the ring has wrapped.
    head: usize,
    /// Records overwritten after the ring filled.
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, rec: FlightRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records oldest → newest.
    fn snapshot(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

struct Shared {
    rank: u32,
    enabled: AtomicBool,
    trace_stderr: AtomicBool,
    epoch: Instant,
    /// Injected drift rate (ppb) baked in at mint time; see
    /// [`RecorderConfig::clock_drift_ppb`].
    drift_ppb: i64,
    ring: Mutex<Ring>,
    /// Live consumer of records (the online invariant monitor). Fired
    /// inline on the recording thread's slow path, after the ring push.
    sink: Option<Arc<dyn RecordSink>>,
}

/// A cloneable handle to one rank's flight recorder. Cloning shares
/// the underlying ring, so a daemon and the engine it hosts write into
/// the same timeline.
#[derive(Clone)]
pub struct Recorder(Arc<Shared>);

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("rank", &self.0.rank)
            .field("enabled", &self.0.enabled.load(Ordering::Relaxed))
            .finish()
    }
}

impl Recorder {
    /// A standalone recorder with its own epoch (tests, single-process
    /// tools). Deployments should mint recorders from a [`RecorderHub`]
    /// so all timelines share one epoch.
    pub fn new(rank: u32, cfg: RecorderConfig) -> Self {
        Self::with_epoch(rank, cfg, Instant::now())
    }

    /// A permanently-disabled recorder: the engine default, costing one
    /// relaxed atomic load per would-be record.
    pub fn disabled() -> Self {
        Self::new(u32::MAX, RecorderConfig::default())
    }

    fn with_epoch(rank: u32, cfg: RecorderConfig, epoch: Instant) -> Self {
        Self::with_epoch_sink(rank, cfg, epoch, None)
    }

    fn with_epoch_sink(
        rank: u32,
        cfg: RecorderConfig,
        epoch: Instant,
        sink: Option<Arc<dyn RecordSink>>,
    ) -> Self {
        Recorder(Arc::new(Shared {
            rank,
            enabled: AtomicBool::new(cfg.enabled),
            trace_stderr: AtomicBool::new(cfg.trace_stderr),
            epoch,
            drift_ppb: cfg.clock_drift_ppb,
            ring: Mutex::new(Ring::new(cfg.capacity)),
            sink,
        }))
    }

    /// Whether records are currently being kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Rank this recorder writes records for.
    pub fn rank(&self) -> u32 {
        self.0.rank
    }

    /// Whether records are mirrored to stderr. Host code gates its own
    /// free-form debug lines behind the same switch, so `--trace-stderr`
    /// keeps the whole old `MVR_ENGINE_TRACE=1` spew.
    #[inline]
    pub fn trace_stderr(&self) -> bool {
        self.0.trace_stderr.load(Ordering::Relaxed)
    }

    /// Monotonic nanoseconds since the deployment epoch. Usable even
    /// when recording is disabled — the engines' duration histograms
    /// read time through this single source.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        let ns = self.0.epoch.elapsed().as_nanos() as u64;
        if self.0.drift_ppb == 0 {
            return ns;
        }
        // Injected drift (tests only): scale elapsed time by
        // (1 + ppb/1e9), clamped at zero for pathological negatives.
        let skewed = ns as i128 + ns as i128 * self.0.drift_ppb as i128 / 1_000_000_000;
        skewed.max(0) as u64
    }

    /// Append a record. The disabled fast path is a branch on one
    /// relaxed atomic load; no lock is touched.
    #[inline]
    pub fn record(&self, clock: u64, event: ProtoEvent) {
        if !self.0.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.record_slow(clock, event);
    }

    /// Append a record at an explicit timestamp instead of wall time.
    /// The simulator uses this to write virtual-time records, so its
    /// dumps are byte-stable across runs of the same seed.
    #[inline]
    pub fn record_at(&self, clock: u64, ts_ns: u64, event: ProtoEvent) {
        if !self.0.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.push(FlightRecord {
            rank: self.0.rank,
            clock,
            ts_ns,
            event,
        });
    }

    #[cold]
    fn record_slow(&self, clock: u64, event: ProtoEvent) {
        self.push(FlightRecord {
            rank: self.0.rank,
            clock,
            ts_ns: self.now_ns(),
            event,
        });
    }

    fn push(&self, rec: FlightRecord) {
        if self.0.trace_stderr.load(Ordering::Relaxed) {
            eprintln!(
                "[mvr r{} c{} t{}ns] {}: {:?}",
                rec.rank,
                rec.clock,
                rec.ts_ns,
                rec.event.kind(),
                rec.event
            );
        }
        if let Some(sink) = &self.0.sink {
            sink.observe(&rec);
        }
        self.0.ring.lock().push(rec);
    }

    /// Copy of the ring, oldest → newest.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        self.0.ring.lock().snapshot()
    }

    /// Records overwritten after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.0.ring.lock().dropped
    }
}

/// The deployment-wide registry of flight recorders. Owns the shared
/// monotonic epoch (so merged timelines order correctly across ranks)
/// and survives individual incarnations: a rank that restarts gets a
/// fresh recorder handle writing into the same registry, so the dump
/// contains every incarnation's records.
pub struct RecorderHub {
    cfg: RecorderConfig,
    epoch: Instant,
    recorders: Mutex<Vec<Recorder>>,
    sink: Mutex<Option<Arc<dyn RecordSink>>>,
}

impl std::fmt::Debug for RecorderHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderHub")
            .field("cfg", &self.cfg)
            .field("recorders", &self.recorders.lock().len())
            .finish()
    }
}

impl RecorderHub {
    /// A hub minting recorders with the given configuration.
    pub fn new(cfg: RecorderConfig) -> Arc<Self> {
        Self::with_epoch(cfg, Instant::now())
    }

    /// A hub whose recorders stamp timestamps relative to an explicit
    /// epoch. Multi-process deployments translate one wall-clock epoch
    /// (broadcast by the supervisor) into a local `Instant` per process,
    /// so the merged cross-process timeline orders correctly.
    pub fn with_epoch(cfg: RecorderConfig, epoch: Instant) -> Arc<Self> {
        Arc::new(RecorderHub {
            cfg,
            epoch,
            recorders: Mutex::new(Vec::new()),
            sink: Mutex::new(None),
        })
    }

    /// Attach a live record sink (the online invariant monitor).
    /// Recorders minted *after* this call feed the sink inline from
    /// their recording threads; call before spawning any nodes.
    pub fn set_sink(&self, sink: Arc<dyn RecordSink>) {
        *self.sink.lock() = Some(sink);
    }

    /// Flush the attached sink's buffers, if any — the explicit
    /// teardown a child performs before `exit` instead of sleeping and
    /// hoping the stream drained.
    pub fn flush_sink(&self) {
        if let Some(sink) = self.sink.lock().as_ref() {
            sink.flush();
        }
    }

    /// Whether minted recorders keep records.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Mint (and register) a recorder for `rank`. Call once per
    /// incarnation; all incarnations' records end up in the dump.
    pub fn recorder(&self, rank: u32) -> Recorder {
        let r = Recorder::with_epoch_sink(rank, self.cfg, self.epoch, self.sink.lock().clone());
        self.recorders.lock().push(r.clone());
        r
    }

    /// Merged snapshot of every registered recorder, ordered by
    /// timestamp (ties broken by rank, then logical clock, then event
    /// kind, so equal-timestamp records from a virtual-time run merge
    /// deterministically and dumps are byte-stable per seed).
    pub fn timeline(&self) -> Vec<FlightRecord> {
        let mut all: Vec<FlightRecord> = self
            .recorders
            .lock()
            .iter()
            .flat_map(|r| r.snapshot())
            .collect();
        all.sort_by_key(|r| (r.ts_ns, r.rank, r.clock, r.event.kind_index()));
        all
    }

    /// Total records overwritten across all rings (reported in the
    /// dump so a truncated timeline is never mistaken for a full one).
    pub fn dropped(&self) -> u64 {
        self.recorders.lock().iter().map(|r| r.dropped()).sum()
    }

    /// Collect every recorder and write the merged clock-ordered JSONL
    /// timeline plus the Chrome-trace/Perfetto export under `dir`,
    /// named `<tag>.jsonl` / `<tag>.trace.json`.
    pub fn dump(&self, dir: &Path, tag: &str) -> std::io::Result<DumpPaths> {
        let timeline = self.timeline();
        std::fs::create_dir_all(dir)?;
        let jsonl = dir.join(format!("{tag}.jsonl"));
        let trace = dir.join(format!("{tag}.trace.json"));
        dump::write_jsonl(&jsonl, &timeline, self.dropped())?;
        dump::write_chrome_trace(&trace, &timeline)?;
        Ok(DumpPaths {
            jsonl,
            trace,
            records: timeline.len(),
            dropped: self.dropped(),
            triage: dump::triage(&timeline),
        })
    }
}

/// Nanoseconds since `UNIX_EPOCH` right now — the form a supervisor
/// broadcasts its recorder epoch in (an `Instant` cannot cross a
/// process boundary).
pub fn unix_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos() as u64
}

/// Translate a shared wall-clock epoch (nanoseconds since `UNIX_EPOCH`,
/// broadcast by the supervising process) into a local [`Instant`] lying
/// the same distance in the past, so `now_ns()` values agree across
/// processes up to wall-clock skew. An epoch from the future clamps to
/// now rather than panicking.
pub fn epoch_from_unix_ns(epoch_unix_ns: u64) -> Instant {
    let now = Instant::now();
    let elapsed = unix_now_ns().saturating_sub(epoch_unix_ns);
    now.checked_sub(std::time::Duration::from_nanos(elapsed))
        .unwrap_or(now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SendDisposition;

    fn send(to: u32, clock: u64, bytes: u64) -> ProtoEvent {
        ProtoEvent::Send {
            to,
            clock,
            bytes,
            disposition: SendDisposition::Wire,
        }
    }

    #[test]
    fn injected_drift_scales_the_recorder_clock() {
        let fast = Recorder::new(
            0,
            RecorderConfig {
                // +10%: a full second gains 100ms.
                clock_drift_ppb: 100_000_000,
                ..Default::default()
            },
        );
        let slow = Recorder::new(
            1,
            RecorderConfig {
                clock_drift_ppb: -100_000_000,
                ..Default::default()
            },
        );
        let true_r = Recorder::new(2, RecorderConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(5));
        let (f, s, t) = (fast.now_ns(), slow.now_ns(), true_r.now_ns());
        // Epochs differ by creation order (µs apart), but ±10% over
        // ≥5ms dwarfs that: the drifted clocks straddle the true one.
        assert!(f > t, "fast clock must read ahead: {f} vs {t}");
        assert!(s < t, "slow clock must read behind: {s} vs {t}");
    }

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let r = Recorder::disabled();
        r.record(1, send(0, 1, 8));
        assert!(r.snapshot().is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let r = Recorder::new(
            0,
            RecorderConfig {
                enabled: true,
                capacity: 4,
                ..Default::default()
            },
        );
        for i in 0..10u64 {
            r.record(i, send(1, i, 1));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(r.dropped(), 6);
        // Oldest → newest: clocks 6, 7, 8, 9.
        let clocks: Vec<u64> = snap.iter().map(|f| f.clock).collect();
        assert_eq!(clocks, vec![6, 7, 8, 9]);
    }

    #[test]
    fn hub_merges_across_ranks_in_ts_order() {
        let hub = RecorderHub::new(RecorderConfig::enabled());
        let a = hub.recorder(0);
        let b = hub.recorder(1);
        a.record(1, send(1, 1, 8));
        b.record(
            1,
            ProtoEvent::Deliver {
                from: 0,
                sender_clock: 1,
                receiver_clock: 1,
                replay: false,
            },
        );
        a.record(2, send(1, 2, 8));
        let tl = hub.timeline();
        assert_eq!(tl.len(), 3);
        assert!(tl.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn equal_ts_ties_break_by_rank_clock_kind() {
        let hub = RecorderHub::new(RecorderConfig::enabled());
        let a = hub.recorder(0);
        let b = hub.recorder(1);
        // All four records share ts_ns=500; merge order must be fully
        // determined by (rank, clock, kind_index).
        b.record_at(2, 500, ProtoEvent::Finish { clock: 2 });
        a.record_at(
            3,
            500,
            ProtoEvent::GateOpen {
                released: 1,
                waited_ns: 7,
            },
        );
        a.record_at(3, 500, send(1, 3, 8));
        a.record_at(1, 500, ProtoEvent::Restart1 { rank: 0 });
        let tl = hub.timeline();
        let keys: Vec<(u32, u64, u8)> = tl
            .iter()
            .map(|r| (r.rank, r.clock, r.event.kind_index()))
            .collect();
        assert_eq!(keys, vec![(0, 1, 10), (0, 3, 0), (0, 3, 2), (1, 2, 17)]);
    }

    #[test]
    fn clones_share_the_ring() {
        let r = Recorder::new(3, RecorderConfig::enabled());
        let r2 = r.clone();
        r.record(1, ProtoEvent::Restart1 { rank: 3 });
        r2.record(2, ProtoEvent::Finish { clock: 2 });
        assert_eq!(r.snapshot().len(), 2);
    }
}
