//! `mvr-obs` — the observability layer threaded through every protocol
//! component: a lock-light per-engine flight recorder of structured
//! protocol events, HDR-style mergeable latency histograms for the hot
//! protocol intervals, and a crash dump path that merges the recorders
//! of all involved ranks into a clock-ordered JSONL timeline plus a
//! Chrome-trace/Perfetto export.
//!
//! The crate is a leaf: it speaks raw `u32` ranks so that `mvr-core`
//! (and everything above it) can depend on it without a cycle.
//!
//! Design constraints honoured here:
//! - the disabled-recorder fast path is a single relaxed atomic load
//!   (`Recorder::record` returns before touching the ring lock), so
//!   benchmark figures are unaffected when tracing is off;
//! - every record carries rank, logical clock and a monotonic
//!   timestamp taken from an epoch shared across the whole deployment
//!   (via [`RecorderHub`]), so merged timelines order correctly;
//! - histogram summaries are all-integer ([`HistSummary`]) so they can
//!   ride in wire messages that derive `Eq`.

#![warn(missing_docs)]

mod dump;
mod event;
mod hist;
mod recorder;
mod timings;

pub use dump::{
    jsonl_line, triage, validate_records, write_chrome_trace, write_jsonl, DumpPaths, Triage,
};
pub use event::{FlightRecord, ProtoEvent, DISPATCHER_RANK};
pub use hist::{HistSummary, LogHistogram};
pub use recorder::{Recorder, RecorderConfig, RecorderHub};
pub use timings::{ProtocolTimings, TimingSummary};
