//! `mvr-obs` — the observability layer threaded through every protocol
//! component: a lock-light per-engine flight recorder of structured
//! protocol events, HDR-style mergeable latency histograms for the hot
//! protocol intervals, and a crash dump path that merges the recorders
//! of all involved ranks into a clock-ordered JSONL timeline plus a
//! Chrome-trace/Perfetto export.
//!
//! The crate is a leaf: it speaks raw `u32` ranks so that `mvr-core`
//! (and everything above it) can depend on it without a cycle.
//!
//! Design constraints honoured here:
//! - the disabled-recorder fast path is a single relaxed atomic load
//!   (`Recorder::record` returns before touching the ring lock), so
//!   benchmark figures are unaffected when tracing is off;
//! - every record carries rank, logical clock and a monotonic
//!   timestamp taken from an epoch shared across the whole deployment
//!   (via [`RecorderHub`]), so merged timelines order correctly;
//! - histogram summaries are all-integer ([`HistSummary`]) so they can
//!   ride in wire messages that derive `Eq`.

#![warn(missing_docs)]

mod causal;
mod diff;
mod dump;
mod event;
mod health;
mod hist;
mod jsonparse;
mod monitor;
mod prom;
mod recorder;
mod skew;
mod span;
mod telemetry;
mod timings;
mod window;

pub use causal::{write_flow_trace, CausalGraph, CriticalPath, CriticalStep, EdgeCat};
pub use diff::{compare, DiffReport, MetricDelta, RunProfile, NOISE_FLOOR_EVENTS, NOISE_FLOOR_NS};
pub use dump::{
    header_line, jsonl_line, merge_dump_files, segment_index_path, triage, validate_records,
    write_chrome_trace, write_jsonl, DumpHeader, DumpPaths, JsonlStreamSink, MergeSummary,
    RotateConfig, TeeSink, Triage,
};
pub use event::{FlightRecord, ProtoEvent, SendDisposition, DISPATCHER_RANK};
pub use health::HealthServer;
pub use hist::{HistSummary, LogHistogram};
pub use jsonparse::{parse, parse_dump, parse_header_line, parse_record_line, Json};
pub use monitor::{InvariantMonitor, RecordSink, Violation};
pub use prom::{timing_families, window_families, PromPage};
pub use recorder::{epoch_from_unix_ns, unix_now_ns, Recorder, RecorderConfig, RecorderHub};
pub use skew::{
    apply_offsets, apply_track, count_inversions, estimate_skew, estimate_skew_drift, OffsetTrack,
    RankOffset, RankTrack, SkewEstimate,
};
pub use span::{DeliveryLeg, Orphan, OrphanKind, Span, SpanKey, SpanSet};
pub use telemetry::{TelemetrySink, TelemetrySnapshot};
pub use timings::{ProtocolTimings, TimingSummary};
pub use window::{MetricsWindow, WindowRing, DEFAULT_WINDOW_NS, DEFAULT_WINDOW_RING};
