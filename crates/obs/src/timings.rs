//! Per-engine latency histograms for the four hot protocol intervals.

use crate::hist::{HistSummary, LogHistogram};
use serde::{Deserialize, Serialize};

/// The four hot-interval histograms the protocol maintains per engine:
/// gate-wait time, EL ack round-trip, checkpoint upload duration and
/// replay duration. Mergeable across ranks and incarnations.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolTimings {
    /// Time sends spent queued behind the closed pessimism gate.
    pub gate_wait: LogHistogram,
    /// Round-trip from shipping an event batch to the EL ack covering it.
    pub el_ack_rtt: LogHistogram,
    /// Checkpoint arm → checkpoint-server commit duration.
    pub ckpt_store: LogHistogram,
    /// Recovery-begin → replay-complete duration.
    pub replay: LogHistogram,
}

impl ProtocolTimings {
    /// Empty timings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold another set of timings into this one.
    pub fn merge(&mut self, other: &ProtocolTimings) {
        self.gate_wait.merge(&other.gate_wait);
        self.el_ack_rtt.merge(&other.el_ack_rtt);
        self.ckpt_store.merge(&other.ckpt_store);
        self.replay.merge(&other.replay);
    }

    /// The window of samples recorded since `earlier` was snapshotted:
    /// interval-wise [`LogHistogram::diff`]. The windowed-metrics ring
    /// is built on this.
    pub fn diff(&self, earlier: &ProtocolTimings) -> ProtocolTimings {
        ProtocolTimings {
            gate_wait: self.gate_wait.diff(&earlier.gate_wait),
            el_ack_rtt: self.el_ack_rtt.diff(&earlier.el_ack_rtt),
            ckpt_store: self.ckpt_store.diff(&earlier.ckpt_store),
            replay: self.replay.diff(&earlier.replay),
        }
    }

    /// Total samples across all four intervals.
    pub fn total_count(&self) -> u64 {
        self.gate_wait.count()
            + self.el_ack_rtt.count()
            + self.ckpt_store.count()
            + self.replay.count()
    }

    /// Compact all-integer summaries for status messages and JSON.
    pub fn summary(&self) -> TimingSummary {
        TimingSummary {
            gate_wait: self.gate_wait.summary(),
            el_ack_rtt: self.el_ack_rtt.summary(),
            ckpt_store: self.ckpt_store.summary(),
            replay: self.replay.summary(),
        }
    }
}

/// All-integer summaries of [`ProtocolTimings`] — rides in
/// `Eq`-deriving wire messages and `BENCH_*.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingSummary {
    /// Gate-wait distribution summary.
    pub gate_wait: HistSummary,
    /// EL ack RTT distribution summary.
    pub el_ack_rtt: HistSummary,
    /// Checkpoint upload duration summary.
    pub ckpt_store: HistSummary,
    /// Replay duration summary.
    pub replay: HistSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ProtocolTimings::new();
        let mut b = ProtocolTimings::new();
        a.gate_wait.record(100);
        b.gate_wait.record(300);
        b.replay.record(1_000_000);
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.gate_wait.count, 2);
        assert_eq!(s.gate_wait.sum, 400);
        assert_eq!(s.replay.count, 1);
        assert_eq!(s.el_ack_rtt.count, 0);
    }

    #[test]
    fn diff_isolates_the_window() {
        let mut t = ProtocolTimings::new();
        t.gate_wait.record(100);
        t.el_ack_rtt.record(5_000);
        let snap = t.clone();
        t.gate_wait.record(900);
        t.replay.record(77_000);
        let w = t.diff(&snap);
        assert_eq!(w.gate_wait.count(), 1);
        assert_eq!(w.gate_wait.sum(), 900);
        assert_eq!(w.el_ack_rtt.count(), 0);
        assert_eq!(w.replay.count(), 1);
        assert_eq!(w.total_count(), 2);
        // Merging the window back onto the snapshot restores cumulative.
        let mut rebuilt = snap.clone();
        rebuilt.merge(&w);
        assert_eq!(rebuilt.summary().gate_wait.count, 2);
        assert_eq!(rebuilt.summary().gate_wait.sum, 1000);
    }
}
