//! The child-side half of the live telemetry plane: a bounded,
//! drop-counted staging buffer that a multi-process child attaches as a
//! [`RecordSink`] next to its durable
//! [`JsonlStreamSink`](crate::JsonlStreamSink).
//!
//! The recorder fires sinks inline on the recording thread, so the
//! buffer does the absolute minimum there: one short mutex hold to
//! push the record (or bump the drop counter when full — the protocol
//! hot path is never blocked on telemetry, mirroring the ring buffer's
//! own overwrite discipline) and to fold any embedded duration into the
//! running [`ProtocolTimings`]. A shipper loop elsewhere in the child
//! periodically [`drain`](TelemetrySink::drain)s the buffer and sends
//! the batch to the supervising parent, together with a
//! [`TelemetrySnapshot`] of the histograms and progress counters.
//! Drops are *reported*, never hidden: the snapshot carries the
//! cumulative drop count so the parent can surface a truncated live
//! stream exactly like a wrapped ring.

use crate::event::{FlightRecord, ProtoEvent};
use crate::hist::LogHistogram;
use crate::monitor::RecordSink;
use crate::timings::ProtocolTimings;
use crate::window::{MetricsWindow, WindowRing};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Cumulative health snapshot shipped alongside each telemetry batch.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Records offered to the sink since process start (shipped plus
    /// dropped).
    pub records_total: u64,
    /// Records dropped because the staging buffer was full when they
    /// arrived. Non-zero means the parent's live stream has holes (the
    /// durable JSONL stream does not).
    pub dropped_total: u64,
    /// Protocol-interval histograms folded from the event stream
    /// (gate-wait, EL ack RTT, checkpoint store, replay).
    pub timings: ProtocolTimings,
    /// First-replica-ack → quorum-ack wait: how long quorum assembly
    /// trailed the fastest replica. Empty when the EL is unreplicated.
    pub quorum_wait: LogHistogram,
    /// Unique events held, for event-logger children shipping their
    /// ledger counter (zero on rank children — their progress lives in
    /// `records_total` and `timings`).
    pub el_events: u64,
}

struct Inner {
    buf: VecDeque<FlightRecord>,
    records_total: u64,
    dropped_total: u64,
    timings: ProtocolTimings,
    quorum_wait: LogHistogram,
    /// Timestamp of the first `ElReplicaAck` since the last quorum-level
    /// `ElAck` — the open edge of the current quorum-assembly window.
    quorum_open: Option<u64>,
    /// Optional windowed view over `timings` (see [`WindowRing`]),
    /// advanced by record timestamps as they stream through.
    windows: Option<WindowRing>,
}

/// Bounded staging buffer between a child's recorder and its telemetry
/// shipper. See the module docs for the discipline.
pub struct TelemetrySink {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl TelemetrySink {
    /// A sink staging at most `capacity` records between drains.
    pub fn new(capacity: usize) -> Self {
        TelemetrySink {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                buf: VecDeque::new(),
                records_total: 0,
                dropped_total: 0,
                timings: ProtocolTimings::new(),
                quorum_wait: LogHistogram::new(),
                quorum_open: None,
                windows: None,
            }),
        }
    }

    /// Like [`TelemetrySink::new`], additionally keeping a windowed
    /// view of the interval histograms: a ring of `ring` closed
    /// windows, each `window_ns` long, advanced by the record
    /// timestamps streaming through the sink. Costs one extra u64
    /// comparison per record on the recording thread.
    pub fn with_windows(capacity: usize, window_ns: u64, ring: usize) -> Self {
        let sink = TelemetrySink::new(capacity);
        sink.inner.lock().windows = Some(WindowRing::new(0, window_ns, ring));
        sink
    }

    /// Take up to `max` staged records, oldest first.
    pub fn drain(&self, max: usize) -> Vec<FlightRecord> {
        let mut inner = self.inner.lock();
        let n = inner.buf.len().min(max);
        inner.buf.drain(..n).collect()
    }

    /// Records currently staged.
    pub fn pending(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Cumulative records dropped to the bounded buffer.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped_total
    }

    /// The windowed view, if this sink was built with one: the retained
    /// closed windows (oldest first) and the in-progress window as of
    /// `now_ns`. `None` when windowing is off.
    pub fn windows(&self, now_ns: u64) -> Option<(Vec<MetricsWindow>, MetricsWindow)> {
        let mut inner = self.inner.lock();
        let ring = inner.windows.take()?;
        let closed: Vec<MetricsWindow> = ring.closed().cloned().collect();
        let current = ring.current(now_ns, &inner.timings);
        inner.windows = Some(ring);
        Some((closed, current))
    }

    /// Current cumulative snapshot (histograms and counters).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock();
        TelemetrySnapshot {
            records_total: inner.records_total,
            dropped_total: inner.dropped_total,
            timings: inner.timings.clone(),
            quorum_wait: inner.quorum_wait.clone(),
            el_events: 0,
        }
    }
}

impl RecordSink for TelemetrySink {
    fn observe(&self, rec: &FlightRecord) {
        let mut inner = self.inner.lock();
        inner.records_total += 1;
        // Advance the window ring (if any) BEFORE folding this record's
        // durations: boundaries crossed up to `ts_ns` close over the
        // pre-record totals, so the sample lands in the window that
        // contains its timestamp. Also keeps empty windows closing on
        // time when no duration samples arrive.
        if let Some(mut ring) = inner.windows.take() {
            ring.advance(rec.ts_ns, &inner.timings);
            inner.windows = Some(ring);
        }
        match &rec.event {
            ProtoEvent::GateOpen { waited_ns, .. } if *waited_ns > 0 => {
                inner.timings.gate_wait.record(*waited_ns);
            }
            ProtoEvent::ElAck { rtt_ns, .. } => {
                if *rtt_ns > 0 {
                    inner.timings.el_ack_rtt.record(*rtt_ns);
                }
                if let Some(open) = inner.quorum_open.take() {
                    inner.quorum_wait.record(rec.ts_ns.saturating_sub(open));
                }
            }
            ProtoEvent::ElReplicaAck { .. } if inner.quorum_open.is_none() => {
                inner.quorum_open = Some(rec.ts_ns);
            }
            ProtoEvent::CkptCommit { store_ns, .. } if *store_ns > 0 => {
                inner.timings.ckpt_store.record(*store_ns);
            }
            ProtoEvent::ReplayDone { replay_ns, .. } if *replay_ns > 0 => {
                inner.timings.replay.record(*replay_ns);
            }
            _ => {}
        }
        if inner.buf.len() >= self.capacity {
            inner.dropped_total += 1;
        } else {
            inner.buf.push_back(rec.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SendDisposition;

    fn rec(rank: u32, clock: u64, ts_ns: u64, event: ProtoEvent) -> FlightRecord {
        FlightRecord {
            rank,
            clock,
            ts_ns,
            event,
        }
    }

    #[test]
    fn drains_in_order_and_counts_drops_when_full() {
        let sink = TelemetrySink::new(2);
        for i in 0..5u64 {
            sink.observe(&rec(
                0,
                i,
                i * 10,
                ProtoEvent::Send {
                    to: 1,
                    clock: i,
                    bytes: 8,
                    disposition: SendDisposition::Wire,
                },
            ));
        }
        assert_eq!(sink.pending(), 2);
        assert_eq!(sink.dropped(), 3);
        let snap = sink.snapshot();
        assert_eq!(snap.records_total, 5);
        assert_eq!(snap.dropped_total, 3);
        let batch = sink.drain(10);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].clock, 0);
        assert_eq!(batch[1].clock, 1);
        assert_eq!(sink.pending(), 0);
        // Newly staged records flow again after the drain.
        sink.observe(&rec(0, 9, 90, ProtoEvent::Finish { clock: 9 }));
        assert_eq!(sink.drain(10).len(), 1);
    }

    #[test]
    fn folds_interval_histograms_and_quorum_wait() {
        let sink = TelemetrySink::new(64);
        sink.observe(&rec(
            0,
            1,
            100,
            ProtoEvent::GateOpen {
                released: 1,
                waited_ns: 4000,
            },
        ));
        sink.observe(&rec(
            0,
            1,
            200,
            ProtoEvent::ElReplicaAck {
                shard: 0,
                replica: 0,
                up_to: 1,
            },
        ));
        sink.observe(&rec(
            0,
            1,
            260,
            ProtoEvent::ElReplicaAck {
                shard: 0,
                replica: 1,
                up_to: 1,
            },
        ));
        sink.observe(&rec(
            0,
            1,
            300,
            ProtoEvent::ElAck {
                up_to: 1,
                batches_retired: 1,
                rtt_ns: 150,
            },
        ));
        sink.observe(&rec(
            0,
            2,
            400,
            ProtoEvent::CkptCommit {
                seq: 1,
                store_ns: 900,
            },
        ));
        sink.observe(&rec(
            0,
            3,
            500,
            ProtoEvent::ReplayDone {
                replayed: 2,
                replay_ns: 7_000,
            },
        ));
        let snap = sink.snapshot();
        let s = snap.timings.summary();
        assert_eq!(s.gate_wait.count, 1);
        assert_eq!(s.gate_wait.sum, 4000);
        assert_eq!(s.el_ack_rtt.count, 1);
        assert_eq!(s.ckpt_store.count, 1);
        assert_eq!(s.replay.count, 1);
        // Quorum window opened at the FIRST replica ack (ts 200) and
        // closed at the quorum ack (ts 300).
        assert_eq!(snap.quorum_wait.count(), 1);
        assert_eq!(snap.quorum_wait.sum(), 100);
    }

    #[test]
    fn windowed_sink_attributes_samples_to_their_windows() {
        let sink = TelemetrySink::with_windows(64, 1_000, 4);
        assert!(
            TelemetrySink::new(4).windows(0).is_none(),
            "windowing is opt-in"
        );
        for (ts, waited) in [(100u64, 10u64), (600, 20), (1_500, 30)] {
            sink.observe(&rec(
                0,
                1,
                ts,
                ProtoEvent::GateOpen {
                    released: 1,
                    waited_ns: waited,
                },
            ));
        }
        let (closed, current) = sink.windows(1_800).expect("windowing on");
        // The ts=1_500 record closed window [0,1000) first, then folded
        // into the new current window — no leakage across the boundary.
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].timings.gate_wait.summary().count, 2);
        assert_eq!(closed[0].timings.gate_wait.summary().sum, 30);
        assert_eq!(current.start_ns, 1_000);
        assert_eq!(current.end_ns, 1_800);
        assert_eq!(current.timings.gate_wait.summary().count, 1);
        assert_eq!(current.timings.gate_wait.summary().sum, 30);
        // Cumulative view is untouched by windowing.
        assert_eq!(sink.snapshot().timings.summary().gate_wait.count, 3);
    }

    #[test]
    fn snapshot_roundtrips_through_bincode() {
        let sink = TelemetrySink::new(8);
        sink.observe(&rec(
            2,
            1,
            50,
            ProtoEvent::GateOpen {
                released: 1,
                waited_ns: 77,
            },
        ));
        let snap = sink.snapshot();
        let enc = bincode::serialize(&snap).unwrap();
        let dec: TelemetrySnapshot = bincode::deserialize(&enc).unwrap();
        assert_eq!(snap, dec);
    }
}
