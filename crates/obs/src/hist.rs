//! HDR-style log-bucketed latency histograms.
//!
//! Values (nanoseconds, but the histogram is unit-agnostic) land in
//! buckets with 16 linear sub-buckets per power of two, bounding the
//! relative quantile error at 1/16 ≈ 6.25% while keeping the whole
//! `u64` range representable in under 1000 buckets. Histograms merge
//! by bucket-wise addition, so per-rank histograms aggregate into
//! cluster-wide distributions losslessly.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per octave (power of two). 16 sub-buckets bound
/// the relative error of any reported quantile at 1/16.
const SUBS: usize = 16;
/// Total buckets: values `< 16` get exact unit buckets, then 60
/// octaves of 16 sub-buckets cover the rest of the `u64` range.
const NUM_BUCKETS: usize = SUBS * 61;

fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (msb - 4)) & 0xF) as usize;
        SUBS * (msb - 3) + sub
    }
}

/// Lower bound of the value range covered by bucket `idx`.
fn bucket_floor(idx: usize) -> u64 {
    if idx < SUBS {
        idx as u64
    } else {
        let msb = idx / SUBS + 3;
        let sub = (idx % SUBS) as u64;
        (1u64 << msb) | (sub << (msb - 4))
    }
}

/// A mergeable log-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Bucket-floor estimate of quantile `q` in `[0, 1]`. Exact for
    /// values below 16; within 6.25% above.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_floor(idx);
            }
        }
        self.max
    }

    /// Fold another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clear all samples in place, keeping the bucket allocation. A
    /// `clone()` before a `reset()` is the cheap "snapshot" half of the
    /// windowed-metrics pair; [`diff`](Self::diff) is the other.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// The window of samples recorded since `earlier` was snapshotted
    /// off this histogram: bucket-wise subtraction, so that
    /// `earlier.merge(&now.diff(&earlier))` restores the cumulative
    /// bucket counts exactly. `earlier` must be a previous snapshot of
    /// this histogram; foreign baselines subtract saturating rather
    /// than panicking.
    ///
    /// Counts and (non-saturated) sums are exact. `min`/`max` of the
    /// window are bucket-floor estimates, except when the window
    /// provably contains the cumulative extreme (its bucket was empty
    /// at snapshot time), in which case they are exact. If the
    /// cumulative sum saturated at `u64::MAX`, the window sum is a
    /// saturating lower-bound estimate — the precision was already lost
    /// at recording time.
    pub fn diff(&self, earlier: &LogHistogram) -> LogHistogram {
        let mut counts = vec![0u64; NUM_BUCKETS];
        let mut count = 0u64;
        let mut min_idx = None;
        let mut max_idx = 0usize;
        for (idx, (now, then)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            let d = now.saturating_sub(*then);
            if d > 0 {
                counts[idx] = d;
                count += d;
                if min_idx.is_none() {
                    min_idx = Some(idx);
                }
                max_idx = idx;
            }
        }
        let min = match min_idx {
            Some(i) if earlier.counts[i] == 0 && self.count > 0 && bucket_index(self.min) == i => {
                self.min
            }
            Some(i) => bucket_floor(i),
            None => u64::MAX,
        };
        let max = if count == 0 {
            0
        } else if earlier.counts[max_idx] == 0 && bucket_index(self.max) == max_idx {
            self.max
        } else {
            bucket_floor(max_idx)
        };
        LogHistogram {
            counts,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
        }
    }

    /// All-integer summary suitable for `Eq`-deriving wire messages.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Compact all-integer histogram summary. Rides in status wire
/// messages (`SchedMsg::Status`, `NodeStatus`) and benchmark JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (bucket-floor estimate).
    pub p50: u64,
    /// 90th percentile (bucket-floor estimate).
    pub p90: u64,
    /// 99th percentile (bucket-floor estimate).
    pub p99: u64,
}

impl HistSummary {
    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for idx in 1..NUM_BUCKETS {
            let f = bucket_floor(idx);
            assert!(f > prev, "floor not monotone at {idx}");
            prev = f;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // Every value maps into the bucket whose floor is <= value.
        for v in [0u64, 1, 15, 16, 17, 31, 32, 1000, 123_456_789, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(bucket_floor(idx) <= v);
            if idx + 1 < NUM_BUCKETS {
                assert!(bucket_floor(idx + 1) > v);
            }
        }
    }

    #[test]
    fn small_values_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn quantile_within_relative_error() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 1000); // 1µs .. 10ms in ns
        }
        let p50 = h.quantile(0.5);
        let exact = 5_000_000u64;
        assert!(
            (p50 as f64 - exact as f64).abs() / exact as f64 <= 1.0 / 16.0 + 1e-9,
            "p50 {p50} too far from {exact}"
        );
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for i in 0..500u64 {
            let v = i * i % 10_007;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
        assert_eq!(a.summary(), c.summary());
    }

    #[test]
    fn value_zero_lands_in_exact_bucket() {
        let mut h = LogHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
        let s = h.summary();
        assert_eq!((s.min, s.p50, s.p99, s.max), (0, 0, 0, 0));
    }

    #[test]
    fn u64_max_saturates_without_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX); // sum would overflow without saturation
        h.record(1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX); // saturated, not wrapped
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 1);
        // The top bucket's floor is the best estimate the bucketing can
        // give; it must be huge and must not panic.
        let top = h.quantile(1.0);
        assert!(top >= bucket_floor(NUM_BUCKETS - 1));
    }

    #[test]
    fn merging_saturated_top_buckets_preserves_count() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for _ in 0..10 {
            a.record(u64::MAX);
            b.record(u64::MAX);
        }
        b.record(7);
        a.merge(&b);
        // Counts are exact even where sums saturate.
        assert_eq!(a.count(), 21);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.min(), 7);
        assert_eq!(a.max(), u64::MAX);
        let s = a.summary();
        assert_eq!(s.count, 21);
        assert_eq!(s.p99, bucket_floor(NUM_BUCKETS - 1));
    }

    /// Deterministic value stream for the window-identity tests:
    /// xorshift-style, seeded, spanning several octaves.
    fn seeded_values(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s % 50_000_000
            })
            .collect()
    }

    #[test]
    fn reset_clears_to_empty() {
        let mut h = LogHistogram::new();
        for v in seeded_values(7, 100) {
            h.record(v);
        }
        h.reset();
        assert_eq!(h, LogHistogram::new());
        assert_eq!(h.min(), 0);
        // Recording after a reset behaves like a fresh histogram.
        h.record(9);
        assert_eq!((h.count(), h.min(), h.max()), (1, 9, 9));
    }

    #[test]
    fn cumulative_equals_merge_of_diff_windows() {
        // Snapshot/diff identity: slicing a cumulative histogram into
        // windows at arbitrary boundaries and merging the windows back
        // restores the cumulative distribution exactly (counts, count,
        // sum, and therefore every quantile).
        let values = seeded_values(0x0B5E7EED, 900);
        let mut cumulative = LogHistogram::new();
        let mut snapshot = LogHistogram::new();
        let mut rebuilt = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            cumulative.record(v);
            if i % 113 == 0 || i + 1 == values.len() {
                let window = cumulative.diff(&snapshot);
                rebuilt.merge(&window);
                snapshot = cumulative.clone();
            }
        }
        assert_eq!(rebuilt.counts, cumulative.counts);
        assert_eq!(rebuilt.count(), cumulative.count());
        assert_eq!(rebuilt.sum(), cumulative.sum());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(rebuilt.quantile(q), cumulative.quantile(q));
        }
    }

    #[test]
    fn diff_window_min_max_are_exact_when_bucket_was_untouched() {
        let mut h = LogHistogram::new();
        h.record(1_000);
        let snap = h.clone();
        h.record(123_456); // new top bucket for the window
        h.record(3); // new bottom bucket for the window
        let w = h.diff(&snap);
        assert_eq!(w.count(), 2);
        assert_eq!(w.min(), 3);
        assert_eq!(w.max(), 123_456);
        // A value whose bucket already held samples at snapshot time
        // degrades gracefully to the bucket floor.
        let snap2 = h.clone();
        h.record(123_999); // same bucket as 123_456 at 1/16 granularity
        let w2 = h.diff(&snap2);
        assert_eq!(w2.count(), 1);
        assert!(w2.max() <= 123_999 && w2.max() >= bucket_floor(bucket_index(123_999)));
    }

    #[test]
    fn saturation_across_window_boundary() {
        // The cumulative sum saturates at u64::MAX inside the second
        // window. Counts stay exact across the boundary; the window sum
        // is the saturating remainder (a documented lower bound).
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        let snap = h.clone();
        h.record(u64::MAX); // cumulative sum pegged at u64::MAX
        h.record(5);
        let w = h.diff(&snap);
        assert_eq!(w.count(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX);
        // Window sum saturates to the remaining headroom (0 here), but
        // never wraps.
        assert_eq!(w.sum(), 0);
        assert_eq!(w.min(), 5);
        // Merging the windows back still restores cumulative counts.
        let mut rebuilt = snap.clone();
        rebuilt.merge(&w);
        assert_eq!(rebuilt.counts, h.counts);
        assert_eq!(rebuilt.count(), h.count());
    }

    #[test]
    fn merge_of_windows_equals_window_of_merges() {
        // Two ranks record concurrently; windows are cut at the same
        // boundary on both. Merging the per-rank windows must equal the
        // window of the merged cumulatives — the algebra the supervisor
        // relies on when it aggregates child snapshots before windowing.
        let a_vals = seeded_values(11, 400);
        let b_vals = seeded_values(23, 300);
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        // Phase one: both ranks record, snapshot at the boundary.
        for &v in &a_vals[..250] {
            a.record(v);
        }
        for &v in &b_vals[..150] {
            b.record(v);
        }
        let a_snap = a.clone();
        let b_snap = b.clone();
        let mut merged_snap = a_snap.clone();
        merged_snap.merge(&b_snap);
        // Phase two: more samples on both sides.
        for &v in &a_vals[250..] {
            a.record(v);
        }
        for &v in &b_vals[150..] {
            b.record(v);
        }
        // merge-of-windows ...
        let mut merged_windows = a.diff(&a_snap);
        merged_windows.merge(&b.diff(&b_snap));
        // ... vs window-of-merges.
        let mut merged_cumulative = a.clone();
        merged_cumulative.merge(&b);
        let window_of_merges = merged_cumulative.diff(&merged_snap);
        assert_eq!(merged_windows.counts, window_of_merges.counts);
        assert_eq!(merged_windows.count(), window_of_merges.count());
        assert_eq!(merged_windows.sum(), window_of_merges.sum());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(merged_windows.quantile(q), window_of_merges.quantile(q));
        }
    }

    #[test]
    fn summary_roundtrips() {
        let mut h = LogHistogram::new();
        h.record(42);
        h.record(4242);
        let s = h.summary();
        let enc = bincode::serialize(&s).unwrap();
        assert_eq!(s, bincode::deserialize::<HistSummary>(&enc).unwrap());
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 4284);
        assert_eq!(s.mean(), 2142);
    }
}
