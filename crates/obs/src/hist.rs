//! HDR-style log-bucketed latency histograms.
//!
//! Values (nanoseconds, but the histogram is unit-agnostic) land in
//! buckets with 16 linear sub-buckets per power of two, bounding the
//! relative quantile error at 1/16 ≈ 6.25% while keeping the whole
//! `u64` range representable in under 1000 buckets. Histograms merge
//! by bucket-wise addition, so per-rank histograms aggregate into
//! cluster-wide distributions losslessly.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per octave (power of two). 16 sub-buckets bound
/// the relative error of any reported quantile at 1/16.
const SUBS: usize = 16;
/// Total buckets: values `< 16` get exact unit buckets, then 60
/// octaves of 16 sub-buckets cover the rest of the `u64` range.
const NUM_BUCKETS: usize = SUBS * 61;

fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (msb - 4)) & 0xF) as usize;
        SUBS * (msb - 3) + sub
    }
}

/// Lower bound of the value range covered by bucket `idx`.
fn bucket_floor(idx: usize) -> u64 {
    if idx < SUBS {
        idx as u64
    } else {
        let msb = idx / SUBS + 3;
        let sub = (idx % SUBS) as u64;
        (1u64 << msb) | (sub << (msb - 4))
    }
}

/// A mergeable log-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Bucket-floor estimate of quantile `q` in `[0, 1]`. Exact for
    /// values below 16; within 6.25% above.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_floor(idx);
            }
        }
        self.max
    }

    /// Fold another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// All-integer summary suitable for `Eq`-deriving wire messages.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Compact all-integer histogram summary. Rides in status wire
/// messages (`SchedMsg::Status`, `NodeStatus`) and benchmark JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (bucket-floor estimate).
    pub p50: u64,
    /// 90th percentile (bucket-floor estimate).
    pub p90: u64,
    /// 99th percentile (bucket-floor estimate).
    pub p99: u64,
}

impl HistSummary {
    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for idx in 1..NUM_BUCKETS {
            let f = bucket_floor(idx);
            assert!(f > prev, "floor not monotone at {idx}");
            prev = f;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // Every value maps into the bucket whose floor is <= value.
        for v in [0u64, 1, 15, 16, 17, 31, 32, 1000, 123_456_789, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(bucket_floor(idx) <= v);
            if idx + 1 < NUM_BUCKETS {
                assert!(bucket_floor(idx + 1) > v);
            }
        }
    }

    #[test]
    fn small_values_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn quantile_within_relative_error() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 1000); // 1µs .. 10ms in ns
        }
        let p50 = h.quantile(0.5);
        let exact = 5_000_000u64;
        assert!(
            (p50 as f64 - exact as f64).abs() / exact as f64 <= 1.0 / 16.0 + 1e-9,
            "p50 {p50} too far from {exact}"
        );
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for i in 0..500u64 {
            let v = i * i % 10_007;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
        assert_eq!(a.summary(), c.summary());
    }

    #[test]
    fn value_zero_lands_in_exact_bucket() {
        let mut h = LogHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
        let s = h.summary();
        assert_eq!((s.min, s.p50, s.p99, s.max), (0, 0, 0, 0));
    }

    #[test]
    fn u64_max_saturates_without_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX); // sum would overflow without saturation
        h.record(1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX); // saturated, not wrapped
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 1);
        // The top bucket's floor is the best estimate the bucketing can
        // give; it must be huge and must not panic.
        let top = h.quantile(1.0);
        assert!(top >= bucket_floor(NUM_BUCKETS - 1));
    }

    #[test]
    fn merging_saturated_top_buckets_preserves_count() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for _ in 0..10 {
            a.record(u64::MAX);
            b.record(u64::MAX);
        }
        b.record(7);
        a.merge(&b);
        // Counts are exact even where sums saturate.
        assert_eq!(a.count(), 21);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.min(), 7);
        assert_eq!(a.max(), u64::MAX);
        let s = a.summary();
        assert_eq!(s.count, 21);
        assert_eq!(s.p99, bucket_floor(NUM_BUCKETS - 1));
    }

    #[test]
    fn summary_roundtrips() {
        let mut h = LogHistogram::new();
        h.record(42);
        h.record(4242);
        let s = h.summary();
        let enc = bincode::serialize(&s).unwrap();
        assert_eq!(s, bincode::deserialize::<HistSummary>(&enc).unwrap());
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 4284);
        assert_eq!(s.mean(), 2142);
    }
}
