//! Clock-skew estimation for merged cross-process timelines.
//!
//! Each child process of a socket-backend deployment stamps its flight
//! records against its own translation of the supervisor's wall-clock
//! epoch ([`epoch_from_unix_ns`](crate::epoch_from_unix_ns)), so real
//! clock skew between hosts leaks straight into the merged timeline: a
//! delivery can appear *before* its send, and critical-path attribution
//! over such a timeline lies. The fix is the classic NTP/trace-
//! correction move: the dump already contains causal edges — a `Send`
//! on rank *a* must precede the matching `Deliver`/`ReplayStep` on rank
//! *b* — and every such edge bounds the offset difference between the
//! two ranks' clocks. Solving those bounds yields per-rank offsets that
//! restore send ≤ deliver everywhere the skew (not the physics) was the
//! problem.
//!
//! The solver is deliberately minimal-correction: offsets start at zero
//! and are only ever *raised* to satisfy a violated bound (longest-path
//! relaxation, Bellman-Ford style), so a skew-free timeline solves to
//! all-zero offsets and byte-identical output. Bounds from ranks with
//! no inversions stay slack and cost nothing.

use crate::event::{FlightRecord, ProtoEvent, DISPATCHER_RANK};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// One rank's estimated clock offset, as published in the dump header.
/// `offset_ns` is *added* to every timestamp the rank recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankOffset {
    /// The rank the offset applies to.
    pub rank: u32,
    /// Nanoseconds added to the rank's timestamps in the corrected
    /// merge. Non-negative with the raise-only solver, but kept signed:
    /// the header format is honest about the quantity's nature.
    pub offset_ns: i64,
}

/// The result of a skew-estimation pass over a merged timeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SkewEstimate {
    /// Per-rank offsets (ranks absent from the map are uncorrected).
    pub offsets: BTreeMap<u32, i64>,
    /// Causal send→deliver edges matched in the timeline.
    pub edges: usize,
    /// Deliver-before-send timestamp inversions in the raw timeline.
    pub inversions_before: usize,
    /// Inversions remaining after applying the offsets (0 unless the
    /// bound system was infeasible, e.g. clocks drifted mid-run).
    pub inversions_after: usize,
}

impl SkewEstimate {
    /// `true` when at least one rank needs a non-zero correction.
    pub fn is_correction(&self) -> bool {
        self.offsets.values().any(|&o| o != 0)
    }

    /// The offsets in header form, non-zero entries only.
    pub fn header_offsets(&self) -> Vec<RankOffset> {
        self.offsets
            .iter()
            .filter(|(_, &o)| o != 0)
            .map(|(&rank, &offset_ns)| RankOffset { rank, offset_ns })
            .collect()
    }

    /// One-line human summary for supervisor and tooling output.
    pub fn summary(&self) -> String {
        if !self.is_correction() {
            return format!(
                "clock skew: none detected ({} causal edges, 0 inversions)",
                self.edges
            );
        }
        let offs: Vec<String> = self
            .offsets
            .iter()
            .filter(|(_, &o)| o != 0)
            .map(|(r, o)| format!("rank {r}: {:+.3}ms", *o as f64 / 1e6))
            .collect();
        format!(
            "clock skew: corrected {} -> {} inversion(s) over {} causal edges [{}]",
            self.inversions_before,
            self.inversions_after,
            self.edges,
            offs.join(", ")
        )
    }
}

/// A matched causal edge: the earliest `Send` of a `(sender, receiver,
/// sender_clock)` key and one `Deliver`/`ReplayStep` consuming it.
struct CausalPair {
    send_rank: u32,
    send_ts: u64,
    recv_rank: u32,
    recv_ts: u64,
}

/// Match sends to deliveries. Suppressed sends are excluded — a
/// re-executed send whose transmission the peer's watermark suppressed
/// *follows* the delivery it names, so pairing it would manufacture a
/// false constraint. For duplicate keys the earliest send wins (a
/// re-executed wire send is causally after the original), and every
/// delivery occurrence (fresh or replayed) is paired: each one is
/// causally after the earliest send.
fn causal_pairs(timeline: &[FlightRecord]) -> Vec<CausalPair> {
    let mut sends: HashMap<(u32, u32, u64), u64> = HashMap::new();
    for rec in timeline {
        if rec.rank == DISPATCHER_RANK {
            continue;
        }
        if let ProtoEvent::Send {
            to,
            clock,
            disposition,
            ..
        } = &rec.event
        {
            if *disposition == crate::event::SendDisposition::Suppressed {
                continue;
            }
            let slot = sends.entry((rec.rank, *to, *clock)).or_insert(rec.ts_ns);
            if rec.ts_ns < *slot {
                *slot = rec.ts_ns;
            }
        }
    }
    let mut pairs = Vec::new();
    for rec in timeline {
        if rec.rank == DISPATCHER_RANK {
            continue;
        }
        let (from, sender_clock) = match &rec.event {
            ProtoEvent::Deliver {
                from, sender_clock, ..
            }
            | ProtoEvent::ReplayStep {
                from, sender_clock, ..
            } => (*from, *sender_clock),
            _ => continue,
        };
        if let Some(&send_ts) = sends.get(&(from, rec.rank, sender_clock)) {
            pairs.push(CausalPair {
                send_rank: from,
                send_ts,
                recv_rank: rec.rank,
                recv_ts: rec.ts_ns,
            });
        }
    }
    pairs
}

fn inversions(pairs: &[CausalPair], offsets: &BTreeMap<u32, i64>) -> usize {
    pairs
        .iter()
        .filter(|p| {
            let s = p.send_ts as i64 + offsets.get(&p.send_rank).copied().unwrap_or(0);
            let r = p.recv_ts as i64 + offsets.get(&p.recv_rank).copied().unwrap_or(0);
            r < s
        })
        .count()
}

/// Count deliver-before-send timestamp inversions in a raw (or already
/// corrected) timeline — the skew-visibility metric the merge reports.
pub fn count_inversions(timeline: &[FlightRecord]) -> usize {
    inversions(&causal_pairs(timeline), &BTreeMap::new())
}

/// Estimate per-rank clock offsets from the causal edges in `timeline`.
///
/// Every matched pair demands `send_ts + off[s] <= recv_ts + off[r]`,
/// i.e. `off[r] - off[s] >= send_ts - recv_ts`; per ordered rank pair
/// the tightest such lower bound is kept. Offsets start at zero and a
/// longest-path relaxation raises them until every bound holds (at most
/// `ranks` sweeps — further sweeps only chase an infeasible system, so
/// the loop stops there and reports residual inversions instead).
pub fn estimate_skew(timeline: &[FlightRecord]) -> SkewEstimate {
    let pairs = causal_pairs(timeline);
    let mut bounds: BTreeMap<(u32, u32), i64> = BTreeMap::new();
    let mut offsets: BTreeMap<u32, i64> = BTreeMap::new();
    for p in &pairs {
        let lb = p.send_ts as i64 - p.recv_ts as i64;
        let slot = bounds.entry((p.send_rank, p.recv_rank)).or_insert(lb);
        if lb > *slot {
            *slot = lb;
        }
        offsets.entry(p.send_rank).or_insert(0);
        offsets.entry(p.recv_rank).or_insert(0);
    }
    let inversions_before = inversions(&pairs, &BTreeMap::new());
    let sweeps = offsets.len() + 1;
    for _ in 0..sweeps {
        let mut changed = false;
        for (&(a, b), &lb) in &bounds {
            let off_a = offsets[&a];
            let off_b = offsets[&b];
            if off_b - off_a < lb {
                offsets.insert(b, off_a + lb);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let inversions_after = inversions(&pairs, &offsets);
    SkewEstimate {
        offsets,
        edges: pairs.len(),
        inversions_before,
        inversions_after,
    }
}

/// Apply per-rank offsets to a timeline in place. Shifting every record
/// of a rank by one constant preserves per-rank timestamp monotonicity;
/// callers re-sort by the merge key afterwards.
pub fn apply_offsets(timeline: &mut [FlightRecord], offsets: &BTreeMap<u32, i64>) {
    if offsets.values().all(|&o| o == 0) {
        return;
    }
    for rec in timeline.iter_mut() {
        if let Some(&off) = offsets.get(&rec.rank) {
            rec.ts_ns = (rec.ts_ns as i64).saturating_add(off).max(0) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SendDisposition;

    fn rec(rank: u32, clock: u64, ts_ns: u64, event: ProtoEvent) -> FlightRecord {
        FlightRecord {
            rank,
            clock,
            ts_ns,
            event,
        }
    }

    fn send(to: u32, clock: u64) -> ProtoEvent {
        ProtoEvent::Send {
            to,
            clock,
            bytes: 8,
            disposition: SendDisposition::Wire,
        }
    }

    fn deliver(from: u32, sc: u64, rc: u64) -> ProtoEvent {
        ProtoEvent::Deliver {
            from,
            sender_clock: sc,
            receiver_clock: rc,
            replay: false,
        }
    }

    #[test]
    fn skew_free_timeline_solves_to_zero_offsets() {
        let tl = vec![
            rec(0, 1, 100, send(1, 1)),
            rec(1, 1, 250, deliver(0, 1, 1)),
            rec(1, 2, 300, send(0, 2)),
            rec(0, 2, 450, deliver(1, 2, 2)),
        ];
        let est = estimate_skew(&tl);
        assert_eq!(est.edges, 2);
        assert_eq!(est.inversions_before, 0);
        assert!(!est.is_correction(), "{est:?}");
        assert!(est.header_offsets().is_empty());
        assert_eq!(count_inversions(&tl), 0);
    }

    #[test]
    fn skewed_receiver_is_raised_until_causality_holds() {
        // Rank 1's clock runs 5ms behind: its deliveries appear before
        // rank 0's sends.
        let tl = vec![
            rec(0, 1, 5_000_000, send(1, 1)),
            rec(1, 1, 100_000, deliver(0, 1, 1)),
            rec(0, 2, 5_200_000, send(1, 2)),
            rec(1, 2, 300_000, deliver(0, 2, 2)),
        ];
        let mut est = estimate_skew(&tl);
        assert_eq!(est.inversions_before, 2);
        assert_eq!(est.inversions_after, 0);
        assert!(est.is_correction());
        // The minimal raise puts rank 1 exactly at the tightest bound.
        assert_eq!(est.offsets[&1], 5_000_000 - 100_000);
        assert_eq!(est.offsets[&0], 0);
        let mut corrected = tl.clone();
        apply_offsets(&mut corrected, &est.offsets);
        assert_eq!(count_inversions(&corrected), 0);
        assert!(est.summary().contains("corrected 2 -> 0"));
        // Header form carries only the non-zero entries.
        let hdr = est.header_offsets();
        assert_eq!(hdr.len(), 1);
        assert_eq!(hdr[0].rank, 1);
        est.offsets.clear();
        assert!(est.summary().contains("none") || est.edges > 0);
    }

    #[test]
    fn chained_skew_propagates_through_intermediate_ranks() {
        // 0 -> 1 -> 2 where both 1 and 2 lag; the relaxation must
        // propagate 1's raise into 2's bound.
        let tl = vec![
            rec(0, 1, 10_000_000, send(1, 1)),
            rec(1, 1, 1_000_000, deliver(0, 1, 1)),
            rec(1, 2, 1_100_000, send(2, 2)),
            rec(2, 1, 200_000, deliver(1, 2, 1)),
        ];
        let est = estimate_skew(&tl);
        assert_eq!(est.inversions_after, 0);
        assert_eq!(est.offsets[&1], 9_000_000);
        // Corrected send at 1: 1_100_000 + 9_000_000 = 10_100_000, so
        // rank 2 must be raised past it.
        assert_eq!(est.offsets[&2], 9_900_000);
    }

    #[test]
    fn suppressed_sends_do_not_create_false_edges() {
        // The delivery precedes the (re-executed, suppressed) send; the
        // pair must not be matched, or the solver would "correct" a
        // perfectly healthy timeline.
        let tl = vec![
            rec(1, 1, 100, deliver(0, 7, 1)),
            rec(
                0,
                7,
                900,
                ProtoEvent::Send {
                    to: 1,
                    clock: 7,
                    bytes: 8,
                    disposition: SendDisposition::Suppressed,
                },
            ),
        ];
        let est = estimate_skew(&tl);
        assert_eq!(est.edges, 0);
        assert!(!est.is_correction());
    }

    #[test]
    fn replay_steps_pair_with_the_original_send() {
        let tl = vec![
            rec(0, 3, 7_000_000, send(1, 3)),
            rec(
                1,
                1,
                500_000,
                ProtoEvent::ReplayStep {
                    from: 0,
                    sender_clock: 3,
                    receiver_clock: 1,
                },
            ),
        ];
        let est = estimate_skew(&tl);
        assert_eq!(est.edges, 1);
        assert_eq!(est.inversions_before, 1);
        assert_eq!(est.inversions_after, 0);
    }
}
